"""Trace-context propagation: one id from compile request to rank lanes.

The repo records four disconnected telemetry artifacts — compiler
wall-clock spans (:mod:`repro.util.spans`), supervised-worker forensics
(:mod:`repro.service.supervisor`), simulated rank traces/metrics
(:mod:`repro.machine`), and bench records.  A :class:`TraceContext` is
the thread that stitches them: minted when the compile service digests a
:class:`~repro.service.compiler.CompileRequest`, carried across the
pickled worker-task protocol, installed around
:meth:`~repro.service.compiler.CompileResult.run`, and stamped into
``Metrics.obs`` by both engines at the end of every run — so a single
``run_id`` links compile → cache → worker → simulated ranks → bench
record (docs/OBSERVABILITY.md).

This module is deliberately a leaf (stdlib only): the machine engines
import it, and everything else imports the machine.

Run ids are deterministic within a process — a per-process counter plus
the request digest prefix — never wall-clock or random, so repeated
runs of the same driver mint the same ids (exports stay comparable).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

_seq = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The correlation identity of one compile-and-run story.

    ``run_id`` is the primary key; ``request_digest`` names the
    content-addressed plan the id was minted for (empty for contexts
    minted outside the service); ``parent`` chains nested contexts
    (e.g. a batch id over its per-request children).
    """

    run_id: str
    request_digest: str = ""
    parent: str = ""

    def as_dict(self) -> dict:
        """JSON/pickle-ready form (the shape carried in worker tasks)."""
        out = {"run_id": self.run_id}
        if self.request_digest:
            out["request_digest"] = self.request_digest
        if self.parent:
            out["parent"] = self.parent
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            run_id=str(data["run_id"]),
            request_digest=str(data.get("request_digest", "")),
            parent=str(data.get("parent", "")),
        )

    def child(self, run_id: str) -> "TraceContext":
        """A nested context whose ``parent`` is this context's run id."""
        return replace(self, run_id=run_id, parent=self.run_id)

    def stamp(self, metrics) -> None:
        """Write the correlation keys into a ``Metrics.obs`` group."""
        metrics.obs["run_id"] = self.run_id
        if self.request_digest:
            metrics.obs["request_digest"] = self.request_digest
        if self.parent:
            metrics.obs["parent"] = self.parent


def mint_context(request_digest: str = "", parent: str = "") -> TraceContext:
    """Mint a fresh context with a deterministic per-process run id."""
    n = next(_seq)
    suffix = f"-{request_digest[:8]}" if request_digest else ""
    return TraceContext(
        run_id=f"run-{n:04d}{suffix}",
        request_digest=request_digest,
        parent=parent,
    )


_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> TraceContext | None:
    """The installed :class:`TraceContext`, or None outside any."""
    return _current.get()


@contextmanager
def tracing_context(ctx: TraceContext | None):
    """Install *ctx* for the enclosed block (no-op when *ctx* is None)."""
    if ctx is None:
        yield None
        return
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def stamp_current(metrics) -> None:
    """Stamp the installed context (if any) into ``metrics.obs``.

    Called by both engines at the end of every run; free (one
    context-variable read) when no context is installed.
    """
    ctx = _current.get()
    if ctx is not None:
        ctx.stamp(metrics)
