"""Automated performance diagnostics over a :class:`~repro.obs.store.TraceStore`.

Four passes turn recorded telemetry into *named* causes
(docs/OBSERVABILITY.md, "diagnostics gallery"):

* :func:`attribute_waits` — for every blocked-wait interval, decide who
  kept the message away: an injected channel fault (drop/delay/
  duplicate), a crashed or deadline-killed peer, or simply a straggling
  sender — and report the attributed share of total idle time;
* :func:`load_imbalance` — per-scope compute dispersion across ranks
  with the offending rank named;
* :func:`critical_path_diff` — which message edges moved between two
  runs' critical paths (blocking vs overlapped, clean vs chaos, ...);
* :func:`drift_terms` / :func:`explain_drift` — decompose a run into
  the cost model's terms (compute, per-message alpha, per-word
  transfer, blocked wait) and name the dominant drifting term when a
  :mod:`repro.costmodel.bands` band is checked, so a violation comes
  with a culprit instead of a bare ratio.

All inputs are simulated-time events, so every number here is
deterministic and test-assertable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.costmodel.bands import SlackBand, get_band
from repro.machine.critpath import critical_path
from repro.util.tables import Table

_EPS = 1e-9

#: Channel-fault details that explain a receiver's wait, in blame
#: priority order (a dropped message forces a full retry round-trip; a
#: delay only stretches delivery; a duplicate never delays anything but
#: is reported when it is all that happened on the channel).
_DATA_FAULTS = ("drop", "delay", "duplicate")


@dataclass(frozen=True)
class WaitAttribution:
    """One attributed idle interval on one rank."""

    rank: int
    peer: int | None
    tag: int
    start: float
    end: float
    cause: str      # "fault:drop", "fault:delay", "fault:duplicate",
    #                 "crash", "timeout", "straggler", "sender-blocked",
    #                 "unattributed"
    culprit: str    # "P<rank>" of the blamed sender, or "" when unknown

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "rank": self.rank, "peer": self.peer, "tag": self.tag,
            "start": self.start, "end": self.end, "seconds": self.seconds,
            "cause": self.cause, "culprit": self.culprit,
        }


@dataclass
class WaitAttributionReport:
    """Every wait interval of a run, with causes and coverage."""

    attributions: list[WaitAttribution]

    @property
    def total_seconds(self) -> float:
        return sum(a.seconds for a in self.attributions)

    @property
    def attributed_seconds(self) -> float:
        return sum(
            a.seconds for a in self.attributions if a.cause != "unattributed"
        )

    @property
    def coverage(self) -> float:
        """Attributed share of total idle time (1.0 when there is none)."""
        total = self.total_seconds
        return self.attributed_seconds / total if total > 0 else 1.0

    def by_cause(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for a in self.attributions:
            out[a.cause] = out.get(a.cause, 0.0) + a.seconds
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def by_culprit(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for a in self.attributions:
            if a.culprit:
                out[a.culprit] = out.get(a.culprit, 0.0) + a.seconds
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def describe(self) -> str:
        head = (
            f"wait attribution: {self.total_seconds:g}s idle, "
            f"{self.coverage:.1%} attributed to named causes"
        )
        table = Table(["cause", "seconds", "share"], title="Idle time by cause")
        total = self.total_seconds or 1.0
        for cause, seconds in self.by_cause().items():
            table.add_row([cause, f"{seconds:g}", f"{seconds / total:.1%}"])
        culprits = " ".join(
            f"{who}={sec:g}s" for who, sec in self.by_culprit().items()
        )
        return f"{head}\n{table.render()}\nblamed senders: {culprits or '(none)'}"

    def as_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "by_cause": self.by_cause(),
            "by_culprit": self.by_culprit(),
            "waits": [a.as_dict() for a in self.attributions],
        }


def attribute_waits(store, run: str | None = None) -> WaitAttributionReport:
    """Name the cause of every blocked-wait interval in *store*.

    For a wait on rank ``r`` for channel ``(s -> r, tag)`` the blame
    order is: an own-lane ``timeout`` marker ending the wait (deadline
    kill); a ``crash`` of the sender before the wait resolved; an
    injected channel fault (drop > delay > duplicate) since the
    channel's previous wait; otherwise the sender itself — ``straggler``
    when it was computing (or fault-slowed) during the idle interval,
    ``sender-blocked`` when it was stuck communicating or waiting on its
    own peers.  Faults are consumed per channel so one injected fault
    never explains two different idle intervals.
    """
    lanes = store.rank_lanes(run=run)
    channel_faults: dict[tuple[int, int, int], list] = {}
    crash_at: dict[int, float] = {}
    for lane in lanes:
        for e in lane:
            if e.kind != "fault":
                continue
            if e.detail in _DATA_FAULTS and e.peer is not None:
                channel_faults.setdefault(
                    (e.rank, e.peer, e.tag), []
                ).append(e)
            elif e.detail == "crash":
                crash_at[e.rank] = min(
                    crash_at.get(e.rank, float("inf")), e.start
                )
    for faults in channel_faults.values():
        faults.sort(key=lambda e: e.start)
    consumed: dict[tuple[int, int, int], int] = {}

    attributions: list[WaitAttribution] = []
    for lane in lanes:
        for i, w in enumerate(lane):
            if w.kind != "wait" or w.duration <= 0:
                continue
            nxt = lane[i + 1] if i + 1 < len(lane) else None
            cause, culprit = _classify_wait(
                w, nxt, lanes, channel_faults, consumed, crash_at
            )
            attributions.append(
                WaitAttribution(
                    rank=w.rank, peer=w.peer, tag=w.tag,
                    start=w.start, end=w.end, cause=cause, culprit=culprit,
                )
            )
    return WaitAttributionReport(attributions=attributions)


def _classify_wait(w, nxt, lanes, channel_faults, consumed, crash_at):
    culprit = f"P{w.peer}" if w.peer is not None else ""
    # 1. Deadline kill: the engine records the timeout marker right
    #    after the wait it ended, on the waiter's own lane.
    if (
        nxt is not None
        and nxt.kind == "fault"
        and nxt.detail == "timeout"
        and abs(nxt.start - w.end) <= _EPS
    ):
        return "timeout", culprit
    if w.peer is None:
        return "unattributed", ""
    # 2. Dead sender.
    if crash_at.get(w.peer, float("inf")) <= w.end + _EPS:
        return "crash", culprit
    # 3. Injected channel faults not yet blamed for an earlier wait.
    channel = (w.peer, w.rank, w.tag)
    faults = channel_faults.get(channel, ())
    start = consumed.get(channel, 0)
    hit: dict[str, int] = {}
    idx = start
    for idx in range(start, len(faults)):
        f = faults[idx]
        if f.start > w.end + _EPS:
            idx -= 1
            break
        hit.setdefault(f.detail, 0)
        hit[f.detail] += 1
    if hit:
        consumed[channel] = idx + 1
        for detail in _DATA_FAULTS:
            if detail in hit:
                return f"fault:{detail}", culprit
    # 4. The sender itself: what was it doing while we idled?
    busy = blocked = False
    for e in lanes[w.peer]:
        if e.end <= w.start + _EPS or e.start >= w.end - _EPS:
            continue
        if e.kind in ("compute", "delay"):
            busy = True
            break
        if e.kind in ("send", "isend", "recv", "wait"):
            blocked = True
    if busy:
        return "straggler", culprit
    if blocked:
        return "sender-blocked", culprit
    return "unattributed", ""


# -- load imbalance ------------------------------------------------------


@dataclass(frozen=True)
class ImbalanceEntry:
    """Compute dispersion across ranks for one scope (or the whole run)."""

    scope: str                      # "" = all compute
    per_rank: dict[int, float]
    offender: int                   # rank with the most compute time

    @property
    def mean(self) -> float:
        vals = list(self.per_rank.values())
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def peak(self) -> float:
        return max(self.per_rank.values(), default=0.0)

    @property
    def dispersion(self) -> float:
        """Peak over mean (1.0 = perfectly balanced)."""
        mean = self.mean
        return self.peak / mean if mean > 0 else 1.0

    def as_dict(self) -> dict:
        return {
            "scope": self.scope,
            "per_rank": {str(r): v for r, v in sorted(self.per_rank.items())},
            "mean": self.mean,
            "peak": self.peak,
            "dispersion": self.dispersion,
            "offender": self.offender,
        }


@dataclass
class ImbalanceReport:
    entries: list[ImbalanceEntry]

    @property
    def worst(self) -> ImbalanceEntry | None:
        return max(self.entries, key=lambda e: e.dispersion, default=None)

    def describe(self) -> str:
        table = Table(
            ["scope", "mean", "peak", "dispersion", "offender"],
            title="Compute load balance (simulated seconds)",
        )
        for e in self.entries:
            table.add_row([
                e.scope or "(all)", f"{e.mean:g}", f"{e.peak:g}",
                f"{e.dispersion:.3f}", f"P{e.offender}",
            ])
        return table.render()

    def as_dict(self) -> dict:
        return {"entries": [e.as_dict() for e in self.entries]}


def load_imbalance(store, run: str | None = None) -> ImbalanceReport:
    """Per-scope compute dispersion, with the slowest rank named.

    The first entry aggregates all compute/delay time; one entry follows
    per collective scope that recorded compute (sorted by scope name).
    ``delay`` counts as compute — a fault-slowed rank shows up as the
    offender, which is exactly the point.
    """
    nprocs = store.nprocs
    overall = {r: 0.0 for r in range(nprocs)}
    by_scope: dict[str, dict[int, float]] = {}
    for e in store.query(lane="rank", kind=("compute", "delay"), run=run):
        overall[e.rank] += e.duration
        if e.scope:
            per = by_scope.setdefault(e.scope, {r: 0.0 for r in range(nprocs)})
            per[e.rank] += e.duration

    def entry(scope: str, per: dict[int, float]) -> ImbalanceEntry:
        offender = max(per, key=lambda r: (per[r], -r), default=0)
        return ImbalanceEntry(scope=scope, per_rank=per, offender=offender)

    entries = [entry("", overall)]
    entries.extend(entry(s, by_scope[s]) for s in sorted(by_scope))
    return ImbalanceReport(entries=entries)


# -- critical-path diff --------------------------------------------------


def _path_edges(report) -> Counter:
    """Message edges on a critical path, as a labelled multiset."""
    edges: Counter = Counter()
    steps = report.steps
    for prev, step in zip(steps, steps[1:]):
        if (
            step.event.kind == "recv"
            and prev.event.kind in ("send", "isend")
            and prev.event.rank != step.event.rank
        ):
            e = step.event
            label = f"P{e.peer}->P{e.rank} tag={e.tag}"
            if e.scope:
                label += f" [{e.scope}]"
            edges[label] += 1
    return edges


@dataclass
class PathDiff:
    """Which time and which message edges moved between two runs."""

    label_a: str
    label_b: str
    makespan_a: float
    makespan_b: float
    by_kind_a: dict[str, float]
    by_kind_b: dict[str, float]
    edges_a: dict[str, int]
    edges_b: dict[str, int]

    def kind_delta(self) -> dict[str, float]:
        """Per-kind path time change (b - a), every kind either side saw."""
        keys = sorted(set(self.by_kind_a) | set(self.by_kind_b))
        return {
            k: self.by_kind_b.get(k, 0.0) - self.by_kind_a.get(k, 0.0)
            for k in keys
        }

    def edges_gained(self) -> dict[str, int]:
        """Edges on b's path but not (as often) on a's."""
        delta = Counter(self.edges_b)
        delta.subtract(self.edges_a)
        return {k: v for k, v in sorted(delta.items()) if v > 0}

    def edges_lost(self) -> dict[str, int]:
        delta = Counter(self.edges_a)
        delta.subtract(self.edges_b)
        return {k: v for k, v in sorted(delta.items()) if v > 0}

    def describe(self) -> str:
        head = (
            f"critical-path diff {self.label_a} -> {self.label_b}: makespan "
            f"{self.makespan_a:g} -> {self.makespan_b:g} "
            f"({self.makespan_b - self.makespan_a:+g})"
        )
        table = Table(
            ["kind", self.label_a, self.label_b, "delta"],
            title="Path time by kind",
        )
        for k, d in self.kind_delta().items():
            table.add_row([
                k, f"{self.by_kind_a.get(k, 0.0):g}",
                f"{self.by_kind_b.get(k, 0.0):g}", f"{d:+g}",
            ])
        lost = ", ".join(f"{k} x{v}" for k, v in self.edges_lost().items())
        gained = ", ".join(f"{k} x{v}" for k, v in self.edges_gained().items())
        return (
            f"{head}\n{table.render()}\n"
            f"edges lost: {lost or '(none)'}\n"
            f"edges gained: {gained or '(none)'}"
        )

    def as_dict(self) -> dict:
        return {
            "label_a": self.label_a, "label_b": self.label_b,
            "makespan_a": self.makespan_a, "makespan_b": self.makespan_b,
            "by_kind_a": dict(sorted(self.by_kind_a.items())),
            "by_kind_b": dict(sorted(self.by_kind_b.items())),
            "kind_delta": self.kind_delta(),
            "edges_a": dict(sorted(self.edges_a.items())),
            "edges_b": dict(sorted(self.edges_b.items())),
            "edges_gained": self.edges_gained(),
            "edges_lost": self.edges_lost(),
        }


def critical_path_diff(
    trace_a, trace_b, label_a: str = "a", label_b: str = "b"
) -> PathDiff:
    """Diff the critical paths of two traced runs (lane lists or stores)."""
    if hasattr(trace_a, "rank_lanes"):
        trace_a = trace_a.rank_lanes()
    if hasattr(trace_b, "rank_lanes"):
        trace_b = trace_b.rank_lanes()
    pa = critical_path(trace_a)
    pb = critical_path(trace_b)
    return PathDiff(
        label_a=label_a, label_b=label_b,
        makespan_a=pa.makespan, makespan_b=pb.makespan,
        by_kind_a=pa.time_by_kind(), by_kind_b=pb.time_by_kind(),
        edges_a=dict(_path_edges(pa)), edges_b=dict(_path_edges(pb)),
    )


# -- cost-model term decomposition and drift root-causing ----------------

#: The decomposition's term names, in reporting order.
TERMS = ("compute", "alpha", "transfer", "wait")


def drift_terms(metrics, model) -> dict[str, float]:
    """Split a run's rank-seconds into the cost model's terms.

    ``alpha`` is the per-message startup charge — ``model.alpha`` per
    occupancy-paying event (``send``/``isend`` injections and ``recv``
    drains, matching :meth:`MachineModel.send_occupancy` and friends);
    ``transfer`` is the remaining communication occupancy (the per-word
    ``tc`` charges); ``compute`` includes fault-injected ``delay`` time;
    ``wait`` is blocked idling.  Summed over ranks, not wall time.
    """
    paying = sum(
        metrics.by_kind[k].events
        for k in ("send", "isend", "recv")
        if k in metrics.by_kind
    )
    alpha_term = model.alpha * paying
    comm = metrics.comm_seconds
    return {
        "compute": metrics.compute_seconds
        + sum(r.delay_seconds for r in metrics.ranks),
        "alpha": min(alpha_term, comm),
        "transfer": max(comm - alpha_term, 0.0),
        "wait": metrics.wait_seconds,
    }


@dataclass
class DriftDiagnosis:
    """A band check with a named culprit term."""

    band: SlackBand
    measured: float
    analytic: float
    terms_measured: dict[str, float]
    terms_analytic: dict[str, float] | None = None
    label: str = ""

    @property
    def ratio(self) -> float:
        return self.measured / self.analytic if self.analytic else float("inf")

    @property
    def ok(self) -> bool:
        return self.band.check(self.ratio)

    def gaps(self) -> dict[str, float]:
        """Per-term slack: measured minus analytic (or measured shares
        when no analytic decomposition is available)."""
        if self.terms_analytic is None:
            return dict(self.terms_measured)
        keys = sorted(set(self.terms_measured) | set(self.terms_analytic))
        return {
            k: self.terms_measured.get(k, 0.0) - self.terms_analytic.get(k, 0.0)
            for k in keys
        }

    @property
    def dominant_term(self) -> str:
        """The term carrying the largest absolute gap (the culprit)."""
        gaps = self.gaps()
        return max(gaps, key=lambda k: (abs(gaps[k]), k)) if gaps else ""

    def describe(self) -> str:
        gaps = self.gaps()
        gap_total = sum(gaps.values())
        parts = ", ".join(f"{k}={v:+g}" for k, v in sorted(gaps.items()))
        verdict = "within" if self.ok else "OUTSIDE"
        what = f" ({self.label})" if self.label else ""
        return (
            f"band {self.band.describe()}{what}: measured {self.measured:g} "
            f"vs analytic {self.analytic:g} — ratio {self.ratio:.3f} "
            f"{verdict} band; dominant term: {self.dominant_term} "
            f"(term gaps: {parts}; total {gap_total:+g})"
        )

    def as_dict(self) -> dict:
        return {
            "band": self.band.name,
            "bounds": [self.band.lower, self.band.upper],
            "label": self.label,
            "measured": self.measured,
            "analytic": self.analytic,
            "ratio": self.ratio,
            "ok": self.ok,
            "terms_measured": dict(sorted(self.terms_measured.items())),
            "terms_analytic": (
                dict(sorted(self.terms_analytic.items()))
                if self.terms_analytic is not None
                else None
            ),
            "gaps": self.gaps(),
            "dominant_term": self.dominant_term,
        }


def explain_drift(
    band: str | SlackBand,
    measured: float,
    analytic: float,
    terms_measured: dict[str, float],
    terms_analytic: dict[str, float] | None = None,
    label: str = "",
) -> DriftDiagnosis:
    """Check a measured/analytic ratio against a registered band and
    name the dominant drifting cost-model term."""
    if isinstance(band, str):
        band = get_band(band)
    return DriftDiagnosis(
        band=band, measured=measured, analytic=analytic,
        terms_measured=terms_measured, terms_analytic=terms_analytic,
        label=label,
    )


# -- run-level diff ------------------------------------------------------


@dataclass
class RunDiff:
    """Everything that moved between two traced runs."""

    label_a: str
    label_b: str
    makespan_a: float
    makespan_b: float
    terms_a: dict[str, float]
    terms_b: dict[str, float]
    path: PathDiff
    drift: DriftDiagnosis | None = field(default=None)

    def term_delta(self) -> dict[str, float]:
        keys = sorted(set(self.terms_a) | set(self.terms_b))
        return {
            k: self.terms_b.get(k, 0.0) - self.terms_a.get(k, 0.0)
            for k in keys
        }

    def describe(self) -> str:
        table = Table(
            ["term", self.label_a, self.label_b, "delta"],
            title="Cost-model terms (rank-seconds)",
        )
        for k, d in self.term_delta().items():
            table.add_row([
                k, f"{self.terms_a.get(k, 0.0):g}",
                f"{self.terms_b.get(k, 0.0):g}", f"{d:+g}",
            ])
        parts = [
            f"run diff {self.label_a} -> {self.label_b}: makespan "
            f"{self.makespan_a:g} -> {self.makespan_b:g} "
            f"({self.makespan_b - self.makespan_a:+g})",
            table.render(),
            self.path.describe(),
        ]
        if self.drift is not None:
            parts.append(self.drift.describe())
        return "\n\n".join(parts)

    def as_dict(self) -> dict:
        return {
            "label_a": self.label_a, "label_b": self.label_b,
            "makespan_a": self.makespan_a, "makespan_b": self.makespan_b,
            "terms_a": dict(sorted(self.terms_a.items())),
            "terms_b": dict(sorted(self.terms_b.items())),
            "term_delta": self.term_delta(),
            "path": self.path.as_dict(),
            "drift": self.drift.as_dict() if self.drift is not None else None,
        }


def diff_runs(
    res_a,
    res_b,
    model_a,
    model_b=None,
    label_a: str = "a",
    label_b: str = "b",
    drift: DriftDiagnosis | None = None,
) -> RunDiff:
    """Diff two traced :class:`RunResult`\\ s end to end."""
    if res_a.trace is None or res_b.trace is None:
        raise ValueError("diff_runs needs traced runs (trace=True)")
    return RunDiff(
        label_a=label_a, label_b=label_b,
        makespan_a=res_a.makespan, makespan_b=res_b.makespan,
        terms_a=drift_terms(res_a.metrics, model_a),
        terms_b=drift_terms(res_b.metrics, model_b or model_a),
        path=critical_path_diff(res_a.trace, res_b.trace, label_a, label_b),
        drift=drift,
    )
