"""TraceStore — the unified, queryable JSONL event sink (docs/OBSERVABILITY.md).

Every telemetry source in the repo lands in one flat, schema-tagged
event list:

* simulated rank lanes (:class:`~repro.machine.trace.TraceEvent`) become
  ``lane="rank"`` events, preserving per-rank recording order (the FIFO
  discipline :func:`~repro.machine.export.match_messages` and the
  critical-path walker depend on);
* compiler wall-clock spans (:class:`~repro.util.spans.Span`) become
  ``lane="compiler"`` events (``kind`` ``span``/``instant``, ``rank``
  -1), so compile time and simulated time live in the same store;
* every event carries the ``run`` correlation id
  (:class:`~repro.obs.context.TraceContext`), so one store can hold many
  runs and still answer per-run questions.

The query API filters by lane/rank/kind/peer/tag/scope/collective/
time-window/run and aggregates wait time, message volume and per-rank
send/recv matrices — replacing the ad-hoc trace-list plumbing that
``tools/report.py`` used to do by hand.  The on-disk form is JSONL
(one header line, one event per line) and round-trips exactly.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.machine.trace import TraceEvent

#: Schema tag written on the JSONL header line.
SCHEMA = "repro-obs/1"

#: Field order of one serialized event line (stable across versions).
_FIELDS = (
    "lane", "rank", "kind", "start", "end", "peer", "words", "tag",
    "detail", "scope", "run",
)


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One correlated telemetry event (simulated or wall-clock).

    ``lane`` is ``"rank"`` for simulated events (``rank`` >= 0, times in
    simulated seconds) and ``"compiler"`` for wall-clock spans
    (``rank`` -1, times in seconds since the recorder epoch, ``detail``
    holds the span name).  ``run`` is the correlation id, empty when the
    source was not run under a :class:`~repro.obs.context.TraceContext`.
    """

    lane: str
    rank: int
    kind: str
    start: float
    end: float
    peer: int | None = None
    words: int = 0
    tag: int = 0
    detail: str = ""
    scope: str = ""
    run: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in _FIELDS}

    def overlaps(self, t0: float, t1: float) -> bool:
        """Half-open window test ``[t0, t1)``.

        Zero-duration events are points (included iff ``t0 <= start <
        t1``); extended events are included iff they overlap the window.
        """
        if self.end == self.start:
            return t0 <= self.start < t1
        return self.start < t1 and self.end > t0


def _scope_matches(scope: str, prefix: str) -> bool:
    """Exact-or-nested scope match, same rule as ``Metrics.scope_totals``."""
    return scope == prefix or scope.startswith(prefix + "/")


class TraceStore:
    """A flat store of :class:`ObsEvent` with filters and aggregations."""

    def __init__(self, nprocs: int = 0) -> None:
        self.events: list[ObsEvent] = []
        self.nprocs = nprocs

    # -- ingestion -------------------------------------------------------
    def add(self, event: ObsEvent) -> None:
        self.events.append(event)
        if event.lane == "rank" and event.rank >= self.nprocs:
            self.nprocs = event.rank + 1

    def add_trace(self, trace, run: str = "") -> None:
        """Ingest simulator lanes (``RunResult.trace``), preserving
        per-rank recording order."""
        for lane in trace:
            for e in lane:
                self.add(
                    ObsEvent(
                        lane="rank", rank=e.rank, kind=e.kind,
                        start=e.start, end=e.end, peer=e.peer,
                        words=e.words, tag=e.tag, detail=e.detail,
                        scope=e.scope, run=run,
                    )
                )

    def add_spans(self, spans, run: str = "") -> None:
        """Ingest compiler wall-clock spans (Span objects or dicts)."""
        for s in spans:
            if not isinstance(s, dict):
                s = s.as_dict()
            kind = "instant" if s["end"] == s["start"] else "span"
            self.add(
                ObsEvent(
                    lane="compiler", rank=-1, kind=kind,
                    start=float(s["start"]), end=float(s["end"]),
                    detail=str(s["name"]), run=run,
                )
            )

    @classmethod
    def from_run(cls, result, run: str = "", spans=None) -> "TraceStore":
        """Build a store from one traced :class:`RunResult`.

        *run* defaults to the ``run_id`` the engine stamped into
        ``result.metrics.obs`` (empty when the run carried no context).
        """
        metrics = getattr(result, "metrics", None)
        if not run and metrics is not None:
            run = str(metrics.obs.get("run_id", ""))
        store = cls()
        if result.trace is not None:
            store.add_trace(result.trace, run=run)
        if spans:
            store.add_spans(spans, run=run)
        return store

    # -- queries ---------------------------------------------------------
    def query(
        self,
        *,
        lane: str | None = None,
        rank: int | None = None,
        kind: str | tuple[str, ...] | None = None,
        peer: int | None = None,
        tag: int | None = None,
        scope: str | None = None,
        detail: str | None = None,
        run: str | None = None,
        between: tuple[float, float] | None = None,
    ) -> list[ObsEvent]:
        """Filter events; all given criteria must hold (AND semantics).

        ``kind`` accepts one kind or a tuple; ``scope`` matches the
        scope itself or anything nested under it (``"redist"`` matches
        ``"redist/bcast"``); ``between`` is a half-open time window
        ``[t0, t1)`` using :meth:`ObsEvent.overlaps`.  Events come back
        in insertion order (per-rank program order for rank lanes).
        """
        kinds = (kind,) if isinstance(kind, str) else kind
        out = []
        for e in self.events:
            if lane is not None and e.lane != lane:
                continue
            if rank is not None and e.rank != rank:
                continue
            if kinds is not None and e.kind not in kinds:
                continue
            if peer is not None and e.peer != peer:
                continue
            if tag is not None and e.tag != tag:
                continue
            if scope is not None and not _scope_matches(e.scope, scope):
                continue
            if detail is not None and e.detail != detail:
                continue
            if run is not None and e.run != run:
                continue
            if between is not None and not e.overlaps(*between):
                continue
            out.append(e)
        return out

    def rank_lanes(self, run: str | None = None) -> list[list[TraceEvent]]:
        """Rebuild per-rank :class:`TraceEvent` lanes (insertion order).

        The inverse of :meth:`add_trace` — diagnostics reuse the
        existing lane-shaped analyses (critical path, message matching)
        on stored events.
        """
        lanes: list[list[TraceEvent]] = [[] for _ in range(self.nprocs)]
        for e in self.query(lane="rank", run=run):
            lanes[e.rank].append(
                TraceEvent(
                    rank=e.rank, kind=e.kind, start=e.start, end=e.end,
                    peer=e.peer, words=e.words, tag=e.tag,
                    detail=e.detail, scope=e.scope,
                )
            )
        return lanes

    def runs(self) -> list[str]:
        """Distinct run ids present, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.run)
        return list(seen)

    # -- aggregations ----------------------------------------------------
    def wait_seconds(self, **filters) -> float:
        """Total blocked-wait time over the matching events."""
        return sum(e.duration for e in self.query(kind="wait", **filters))

    def busy_by_rank(
        self, kinds: tuple[str, ...] = ("compute", "delay"), **filters
    ) -> dict[int, float]:
        """Per-rank summed duration of the given kinds (ranks 0..N-1)."""
        out = {r: 0.0 for r in range(self.nprocs)}
        for e in self.query(lane="rank", kind=kinds, **filters):
            out[e.rank] += e.duration
        return out

    def message_words(self, **filters) -> int:
        """Total injected words over matching ``send``/``isend`` events."""
        return sum(
            e.words for e in self.query(kind=("send", "isend"), **filters)
        )

    def send_matrix(self, run: str | None = None) -> list[list[int]]:
        """``matrix[src][dst]`` = words injected src -> dst."""
        n = self.nprocs
        matrix = [[0] * n for _ in range(n)]
        for e in self.query(lane="rank", kind=("send", "isend"), run=run):
            if e.peer is not None and 0 <= e.peer < n:
                matrix[e.rank][e.peer] += e.words
        return matrix

    def recv_matrix(self, run: str | None = None) -> list[list[int]]:
        """``matrix[src][dst]`` = words drained at dst from src."""
        n = self.nprocs
        matrix = [[0] * n for _ in range(n)]
        for e in self.query(lane="rank", kind=("recv",), run=run):
            if e.peer is not None and 0 <= e.peer < n:
                matrix[e.peer][e.rank] += e.words
        return matrix

    # -- persistence -----------------------------------------------------
    def write_jsonl(self, path) -> pathlib.Path:
        """Write the store as JSONL: a header line, then one event/line."""
        path = pathlib.Path(path)
        lines = [json.dumps({"schema": SCHEMA, "nprocs": self.nprocs})]
        lines.extend(
            json.dumps(e.as_dict(), sort_keys=True) for e in self.events
        )
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path) -> "TraceStore":
        """Exact inverse of :meth:`write_jsonl`."""
        lines = pathlib.Path(path).read_text().splitlines()
        header = json.loads(lines[0]) if lines else {}
        if header.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} event file: {path} "
                f"(header {header.get('schema')!r})"
            )
        store = cls(nprocs=int(header.get("nprocs", 0)))
        for line in lines[1:]:
            if not line.strip():
                continue
            d = json.loads(line)
            store.events.append(
                ObsEvent(
                    lane=d["lane"], rank=int(d["rank"]), kind=d["kind"],
                    start=float(d["start"]), end=float(d["end"]),
                    peer=None if d["peer"] is None else int(d["peer"]),
                    words=int(d["words"]), tag=int(d["tag"]),
                    detail=d["detail"], scope=d["scope"], run=d["run"],
                )
            )
        return store

    def __len__(self) -> int:
        return len(self.events)
