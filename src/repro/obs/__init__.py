"""repro.obs — correlated telemetry and automated diagnostics.

One subsystem, three layers (docs/OBSERVABILITY.md):

* :mod:`repro.obs.context` — :class:`TraceContext` propagation: one run
  id minted at the compile request, carried across worker processes,
  stamped into every engine's :class:`~repro.machine.metrics.Metrics`;
* :mod:`repro.obs.store` — :class:`TraceStore`, the queryable JSONL
  event sink both engines and the compile service write through;
* :mod:`repro.obs.diagnose` — automated passes that turn stored events
  into named causes: wait attribution, load imbalance, critical-path
  diffs, and cost-model drift root-causing.

Only :mod:`~repro.obs.context` (a stdlib-only leaf, imported by the
engines themselves) loads eagerly; the store and diagnostics layers —
which import back into :mod:`repro.machine` and :mod:`repro.costmodel`
— resolve lazily on first attribute access, keeping the package safe to
import from anywhere in the dependency graph.
"""

from importlib import import_module

from repro.obs.context import (
    TraceContext,
    current_context,
    mint_context,
    stamp_current,
    tracing_context,
)

__all__ = [
    "TraceContext",
    "mint_context",
    "current_context",
    "tracing_context",
    "stamp_current",
    "ObsEvent",
    "TraceStore",
    "attribute_waits",
    "WaitAttributionReport",
    "load_imbalance",
    "ImbalanceReport",
    "critical_path_diff",
    "PathDiff",
    "drift_terms",
    "explain_drift",
    "DriftDiagnosis",
    "diff_runs",
    "RunDiff",
]

#: Lazily resolved exports: name -> defining submodule.
_LAZY = {
    "ObsEvent": "repro.obs.store",
    "TraceStore": "repro.obs.store",
    "attribute_waits": "repro.obs.diagnose",
    "WaitAttributionReport": "repro.obs.diagnose",
    "load_imbalance": "repro.obs.diagnose",
    "ImbalanceReport": "repro.obs.diagnose",
    "critical_path_diff": "repro.obs.diagnose",
    "PathDiff": "repro.obs.diagnose",
    "drift_terms": "repro.obs.diagnose",
    "explain_drift": "repro.obs.diagnose",
    "DriftDiagnosis": "repro.obs.diagnose",
    "diff_runs": "repro.obs.diagnose",
    "RunDiff": "repro.obs.diagnose",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.obs' has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
