"""Dependence distance/direction vectors.

A :class:`DistanceVector` has one entry per common enclosing loop
(outermost first).  Entries are integers when the distance is known and
``"*"`` when it is unknown (the conservative case).  Directions follow the
usual convention: positive distance means the dependence flows from an
earlier to a later iteration of that loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Entry = Union[int, str]  # int distance or "*"


@dataclass(frozen=True)
class DistanceVector:
    entries: tuple[Entry, ...]

    def __post_init__(self) -> None:
        for e in self.entries:
            if not (isinstance(e, int) or e == "*"):
                raise ValueError(f"invalid distance entry {e!r}")

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, idx: int) -> Entry:
        return self.entries[idx]

    @property
    def is_zero(self) -> bool:
        """Loop-independent dependence (all distances zero)."""
        return all(e == 0 for e in self.entries)

    def carried_level(self) -> int | None:
        """Outermost loop level (0-based) carrying the dependence.

        The carried level is the first entry that is nonzero or unknown;
        ``None`` for a loop-independent dependence.
        """
        for level, e in enumerate(self.entries):
            if e == "*" or e != 0:
                return level
        return None

    def directions(self) -> tuple[str, ...]:
        """Direction vector: ``<`` (positive), ``=``, ``>`` or ``*``."""
        out = []
        for e in self.entries:
            if e == "*":
                out.append("*")
            elif e > 0:
                out.append("<")
            elif e < 0:
                out.append(">")
            else:
                out.append("=")
        return tuple(out)

    def is_lexicographically_positive(self) -> bool:
        """Valid (plausible) dependences are lexicographically non-negative."""
        for e in self.entries:
            if e == "*":
                return True
            if e > 0:
                return True
            if e < 0:
                return False
        return True

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.entries) + ")"
