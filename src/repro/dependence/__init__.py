"""Data-dependence analysis: tests, distance vectors, and per-token info.

The §6 technique rests on knowing, for every communicated data *token*,
the iteration-space direction along which successive uses advance; this
package computes that (:mod:`~repro.dependence.tokens`) together with
classic pairwise dependence information (:mod:`~repro.dependence.analysis`)
and the underlying decision procedures (:mod:`~repro.dependence.tests`).
"""

from repro.dependence.analysis import (
    Dependence,
    find_dependences,
    live_loop_carried_arrays,
    loop_carried_arrays,
)
from repro.dependence.tests import banerjee_bounds_test, gcd_test, siv_test
from repro.dependence.tokens import TokenInfo, analyze_tokens, classify_token
from repro.dependence.vectors import DistanceVector

__all__ = [
    "DistanceVector",
    "gcd_test",
    "siv_test",
    "banerjee_bounds_test",
    "Dependence",
    "find_dependences",
    "loop_carried_arrays",
    "live_loop_carried_arrays",
    "TokenInfo",
    "analyze_tokens",
    "classify_token",
]
