"""Dependence decision procedures: GCD test, SIV test, Banerjee bounds.

These answer "can subscript expressions ``f(I)`` and ``g(I')`` be equal
for iteration points within the loop bounds?" — the building block for
:mod:`repro.dependence.analysis`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.lang.affine import Affine


def gcd_test(src: Affine, dst: Affine, shared: frozenset[str] | set[str] = frozenset()) -> bool:
    """GCD test: may ``src(I) == dst(I')`` have an integer solution?

    Variables in *shared* are treated as the *same* instance on both sides
    (loop-invariant symbols such as the problem size ``m``); all other
    variables are independent unknowns.  Returns False only when the
    dependence is definitely impossible.
    """
    coeffs: list[int] = []
    for var, c in src.coeffs.items():
        if var in shared:
            d = dst.coeff(var)
            if c != d:
                coeffs.append(c - d)
        else:
            coeffs.append(c)
    for var, c in dst.coeffs.items():
        if var in shared:
            continue
        coeffs.append(-c)
    const = dst.const - src.const
    if not coeffs:
        return const == 0
    g = 0
    for c in coeffs:
        g = math.gcd(g, abs(c))
    if g == 0:
        return const == 0
    return const % g == 0


def siv_test(a: int, c1: int, c2: int, lo: int, hi: int) -> int | None:
    """Strong SIV test for ``a*i + c1 == a*i' + c2`` with ``lo <= i <= hi``.

    Returns the dependence distance ``i' - i = (c1 - c2)/a`` when it is an
    integer whose magnitude fits within the loop range, else ``None``.
    """
    if a == 0:
        return 0 if c1 == c2 else None
    diff = c1 - c2
    if diff % a != 0:
        return None
    dist = diff // a
    if abs(dist) > max(hi - lo, 0):
        return None
    return dist


def affine_range(
    expr: Affine,
    ordered_bounds: list[tuple[str, Affine, Affine]],
) -> tuple[Affine, Affine]:
    """Symbolic (min, max) of *expr* under affine loop-variable bounds.

    *ordered_bounds* lists ``(var, low, high)`` innermost first; each
    variable is eliminated in turn (its bound expressions may reference
    outer variables, which are eliminated later).  The result is a pair
    of affine forms over the remaining symbols (program parameters).
    """
    lo = expr
    hi = expr
    for var, low, high in ordered_bounds:
        c_lo = lo.coeff(var)
        if c_lo:
            base = lo - Affine({var: c_lo})
            lo = base + (low * c_lo if c_lo > 0 else high * c_lo)
        c_hi = hi.coeff(var)
        if c_hi:
            base = hi - Affine({var: c_hi})
            hi = base + (high * c_hi if c_hi > 0 else low * c_hi)
    return lo, hi


def definitely_negative(expr: Affine) -> bool:
    """Is *expr* provably < 0, assuming every free symbol is >= 1?

    Sound but incomplete: with all coefficients nonpositive the maximum
    is attained at symbol value 1, so the form is negative exactly when
    ``const + sum(coeffs) < 0``.  Any positive coefficient makes the form
    unbounded above, so we answer False.
    """
    if any(c > 0 for c in expr.coeffs.values()):
        return False
    return expr.const + sum(expr.coeffs.values()) < 0


def ranges_disjoint(
    range_a: tuple[Affine, Affine],
    range_b: tuple[Affine, Affine],
) -> bool:
    """Are two symbolic integer ranges provably disjoint?

    True when ``max_a < min_b`` or ``max_b < min_a`` under the
    symbols-are-positive assumption of :func:`definitely_negative`.
    """
    lo_a, hi_a = range_a
    lo_b, hi_b = range_b
    return definitely_negative(hi_a - lo_b) or definitely_negative(hi_b - lo_a)


def banerjee_bounds_test(
    expr: Affine,
    bounds: Mapping[str, tuple[int, int]],
) -> tuple[int, int]:
    """Banerjee-style extreme values of an affine form under variable bounds.

    Returns ``(min, max)`` of ``expr`` with each variable confined to its
    inclusive ``(lo, hi)`` range.  A dependence equation ``expr == 0`` is
    impossible when ``0`` falls outside this interval.
    """
    lo_total = expr.const
    hi_total = expr.const
    for var, coeff in expr.coeffs.items():
        if var not in bounds:
            raise KeyError(f"no bounds for variable {var!r}")
        vlo, vhi = bounds[var]
        if vlo > vhi:
            raise ValueError(f"empty range for {var!r}: ({vlo}, {vhi})")
        if coeff >= 0:
            lo_total += coeff * vlo
            hi_total += coeff * vhi
        else:
            lo_total += coeff * vhi
            hi_total += coeff * vlo
    return (lo_total, hi_total)
