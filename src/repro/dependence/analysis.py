"""Pairwise data-dependence analysis over the IR.

For every (write, read/write) pair of references to the same array inside
a statement list, decide whether a dependence may exist and, for uniform
subscript pairs (same loop variable plus constant offsets), compute the
exact distance vector over the common enclosing loops.  Non-uniform pairs
fall back to the GCD test and an unknown (``*``) distance — conservative
but safe, which is all the paper's method needs (it treats such arrays as
loop-carried, e.g. ``X`` between Jacobi's two inner loops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.tests import affine_range, gcd_test, ranges_disjoint
from repro.dependence.vectors import DistanceVector, Entry
from repro.lang.analysis import RefSite, collect_ref_sites
from repro.lang.ast import DoLoop, Program, Stmt


@dataclass(frozen=True)
class Dependence:
    """A may-dependence between two reference sites of one array."""

    array: str
    source: RefSite  # the site that executes first (program order)
    sink: RefSite
    kind: str  # "flow", "anti", or "output"
    distance: DistanceVector  # over the common enclosing loops

    @property
    def loop_carried(self) -> bool:
        return not self.distance.is_zero

    def carried_level(self) -> int | None:
        return self.distance.carried_level()

    def __str__(self) -> str:
        return (
            f"{self.kind} dep on {self.array}: "
            f"line {self.source.line} -> line {self.sink.line}, d={self.distance}"
        )


def _common_loops(a: RefSite, b: RefSite) -> list[DoLoop]:
    common = []
    for la, lb in zip(a.loops, b.loops):
        if la is lb:
            common.append(la)
        else:
            break
    return common


def _site_order(stmts: list[Stmt]) -> dict[int, int]:
    """Map id(stmt) -> program order index (pre-order)."""
    order: dict[int, int] = {}

    def visit(body: list[Stmt]) -> None:
        for stmt in body:
            order[id(stmt)] = len(order)
            if isinstance(stmt, DoLoop):
                visit(stmt.body)

    visit(stmts)
    return order


def _distance_entry(site_a: RefSite, site_b: RefSite, loop: DoLoop) -> Entry:
    """Distance along *loop* between the two reference instances.

    Exact when every subscript pair that mentions ``loop.var`` is uniform
    (``c*var + const`` with equal coefficients on both sides and the same
    dimension); ``*`` otherwise.
    """
    var = loop.var
    entries: list[int] = []
    a_subs = site_a.ref.subscripts
    b_subs = site_b.ref.subscripts
    if len(a_subs) != len(b_subs):
        return "*"
    for sa, sb in zip(a_subs, b_subs):
        ca, cb = sa.coeff(var), sb.coeff(var)
        if ca == 0 and cb == 0:
            continue
        if ca != cb or ca == 0:
            return "*"
        # Equality c*i_sink + k_a == c*i_src + k_b gives the distance
        # d = i_sink - i_src = (k_b - k_a) / c.
        diff = sb - sa
        others = {v for v in diff.variables() if v != var}
        if others:
            return "*"
        if diff.const % ca != 0:
            return "*"  # can only align at fractional distance: unknown
        entries.append(diff.const // ca)
    if not entries:
        # var not used by either reference: dependence may be carried at any
        # distance of this loop (same element touched every iteration).
        same_elsewhere = all(
            (sa - sb).is_constant and (sa - sb).const == 0 for sa, sb in zip(a_subs, b_subs)
        )
        return "*" if same_elsewhere else "*"
    first = entries[0]
    if any(e != first for e in entries[1:]):
        return "*"
    return first


def _ordered_bounds(site: RefSite) -> list[tuple]:
    """(var, low, high) per enclosing loop of the site, innermost first."""
    out = []
    for loop in reversed(site.loops):
        if loop.step > 0:
            out.append((loop.var, loop.lb, loop.ub))
        else:
            out.append((loop.var, loop.ub, loop.lb))
    return out


def _may_alias(a: RefSite, b: RefSite) -> bool:
    """May the two references touch a common element?

    Per subscript dimension we apply (1) the GCD test and (2) a symbolic
    range-disjointness test: each side's loop variables are eliminated
    through their own affine bounds (independently — two dynamic
    instances never share loop-variable values a priori), leaving forms
    over program parameters that are compared with the symbols-positive
    sign rules.  The range test is what proves e.g. that ``A(k, j)`` with
    ``j >= k+1`` never collides with the pivot column ``A(i, k)`` when
    ``k`` is a fixed outer symbol (Gauss's elimination step).
    """
    if a.ref.name != b.ref.name or a.ref.rank != b.ref.rank:
        return False
    # Symbols that are identical instances on both sides: anything that is
    # not a loop variable of either site (program parameters).
    loop_vars = {loop.var for loop in a.loops} | {loop.var for loop in b.loops}
    bounds_a = _ordered_bounds(a)
    bounds_b = _ordered_bounds(b)
    for sa, sb in zip(a.ref.subscripts, b.ref.subscripts):
        shared = (sa.variables() | sb.variables()) - loop_vars
        if not gcd_test(sa, sb, shared=shared):
            return False
        if ranges_disjoint(affine_range(sa, bounds_a), affine_range(sb, bounds_b)):
            return False
    return True


def find_dependences(stmts: list[Stmt] | Program) -> list[Dependence]:
    """All may-dependences among array references in *stmts*.

    Pairs are reported in program order (source first).  Dependences whose
    computed distance vector is lexicographically negative are discarded
    (they are the mirror image of a valid dependence in the other
    direction).
    """
    if isinstance(stmts, Program):
        stmts = stmts.body
    sites = collect_ref_sites(stmts)
    order = _site_order(stmts)
    deps: list[Dependence] = []
    for ai, a in enumerate(sites):
        for b in sites[ai:]:
            if a.ref.name != b.ref.name:
                continue
            if not (a.is_write or b.is_write):
                continue
            if a is b:
                continue
            first, second = a, b
            if order[id(b.stmt)] < order[id(a.stmt)]:
                first, second = b, a
            elif a.stmt is b.stmt and a.is_write and not b.is_write:
                # Within one statement instance the RHS read executes
                # before the LHS write.
                first, second = b, a
            if not _may_alias(first, second):
                continue
            common = _common_loops(first, second)
            entries = tuple(_distance_entry(second, first, loop) for loop in common)
            dvec = DistanceVector(entries)
            if not dvec.is_lexicographically_positive():
                # The real dependence is the mirrored pair with the
                # negated distance (which is lexicographically positive).
                first, second = second, first
                entries = tuple(
                    (-e if isinstance(e, int) else e) for e in entries
                )
                dvec = DistanceVector(entries)
            if dvec.is_zero and first.stmt is second.stmt:
                # Same statement instance, zero distance: the pair is the
                # accumulation pattern; it only matters when a loop can
                # carry it, which the nonzero/unknown entries would show.
                continue
            if first.is_write and second.is_write:
                kind = "output"
            elif first.is_write:
                kind = "flow"
            else:
                kind = "anti"
            deps.append(Dependence(first.array, first, second, kind, dvec))
            # An unknown distance is a may-dependence in *both* directions:
            # e.g. X read in L1 and written in L2 is an anti dep within one
            # sweep and a flow dep into the next sweep (the paper's
            # loop-carried dependence of X).
            if "*" in dvec.entries and first.is_write != second.is_write:
                mirror_kind = "anti" if kind == "flow" else "flow"
                deps.append(Dependence(first.array, second, first, mirror_kind, dvec))
    return deps


def loop_carried_arrays(loop: DoLoop) -> frozenset[str]:
    """Arrays with a flow dependence carried by *loop* itself (level 0)."""
    carried: set[str] = set()
    for dep in find_dependences([loop]):
        if dep.carried_level() == 0 and dep.kind == "flow":
            carried.add(dep.array)
    return frozenset(carried)


def live_loop_carried_arrays(loop: DoLoop) -> frozenset[str]:
    """Loop-carried arrays whose value actually crosses the iteration.

    Refines :func:`loop_carried_arrays` with a kill heuristic: an array
    whose textually-first reference in the loop body is a non-accumulating
    write (e.g. ``V(i) = 0.0`` at the top of Jacobi's body) is re-defined
    before any cross-iteration read, so it carries no communication.  This
    matches the paper, which charges the §4 loop-carried cost for ``X``
    only, not ``V``.
    """
    carried = loop_carried_arrays(loop)
    if not carried:
        return carried
    sites = collect_ref_sites(loop.body)
    first_site: dict[str, RefSite] = {}
    for site in sites:
        if site.array not in first_site:
            first_site[site.array] = site
    live: set[str] = set()
    for array in carried:
        site = first_site.get(array)
        if site is None:
            continue
        if site.is_write:
            lhs = site.stmt.lhs
            rhs_repeats = any(
                r.name == array and r.subscripts == getattr(lhs, "subscripts", None)
                for r in _rhs_refs(site.stmt)
            )
            if not rhs_repeats:
                continue  # killed before any read: not live across iterations
        live.add(array)
    return frozenset(live)


def _rhs_refs(stmt) -> list:
    from repro.lang.ast import array_refs

    return array_refs(stmt.rhs)
