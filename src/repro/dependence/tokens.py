"""Per-token dependence information (paper §6, Table 5).

A *token* is one right-hand-side array reference whose value must reach
the processors executing the statement.  For a token inside an ``n``-deep
loop nest with index vector ``I = (v1, ..., vn)``:

* the **free variables** are the nest variables that do not appear in the
  token's subscripts — successive uses of one token instance advance
  along their unit directions (the paper's "used in indices
  ``base + i*(0,1)^t``");
* given an **index-processor mapping** row vector ``pi`` (iteration ``I``
  executes on virtual processor ``pi . I``), the token's communication
  pattern is decided by ``pi . e_v`` for each free direction ``e_v``:

  - all zero: every use is on the *same* processor as the producer
    (column "used in PEs: (i-1) mod N" in Table 5);
  - exactly ``+1`` (or ``-1``) on one direction: successive uses are on
    *neighboring* processors — the token can be **pipelined** with Shift
    instead of broadcast;
  - anything else: a multicast is required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.analysis import RefSite, collect_ref_sites
from repro.lang.ast import DoLoop


@dataclass(frozen=True)
class TokenInfo:
    """Dependence information for one RHS token in a nest."""

    site: RefSite
    nest_vars: tuple[str, ...]  # outermost first
    free_vars: tuple[str, ...]  # nest vars absent from the token's subscripts

    @property
    def array(self) -> str:
        return self.site.array

    @property
    def line(self) -> int:
        return self.site.line

    def directions(self) -> tuple[tuple[int, ...], ...]:
        """Unit iteration-space directions of successive uses."""
        out = []
        for v in self.free_vars:
            out.append(tuple(1 if u == v else 0 for u in self.nest_vars))
        return tuple(out)

    def use_family(self) -> str:
        """Human-readable use-index family, Table 5 style."""
        base = []
        for u in self.nest_vars:
            base.append("0" if u in self.free_vars else u)
        text = f"({', '.join(base)})^t"
        for v in self.free_vars:
            unit = ", ".join("1" if u == v else "0" for u in self.nest_vars)
            text += f" + {v}*({unit})^t"
        return text

    def __str__(self) -> str:
        return f"token {self.site.ref} at line {self.line}: uses {self.use_family()}"


def analyze_tokens(nest: DoLoop, arrays: frozenset[str] | None = None) -> list[TokenInfo]:
    """Tokens (RHS references) of *nest*, outermost-variable order.

    *arrays* optionally restricts to the given array names.  References on
    the left-hand side are producers, not tokens, and statements whose RHS
    repeats the LHS reference (accumulations) contribute only their other
    operands.
    """
    sites = collect_ref_sites([nest])
    nest_vars_cache: dict[tuple[int, ...], tuple[str, ...]] = {}
    tokens: list[TokenInfo] = []
    for site in sites:
        if site.is_write:
            continue
        if arrays is not None and site.array not in arrays:
            continue
        lhs = site.stmt.lhs
        if (
            hasattr(lhs, "name")
            and getattr(lhs, "name", None) == site.array
            and getattr(lhs, "subscripts", None) == site.ref.subscripts
        ):
            continue  # the accumulation operand itself
        key = tuple(id(loop) for loop in site.loops)
        nest_vars = nest_vars_cache.get(key)
        if nest_vars is None:
            nest_vars = tuple(loop.var for loop in site.loops)
            nest_vars_cache[key] = nest_vars
        sub_vars: set[str] = set()
        for sub in site.ref.subscripts:
            sub_vars |= set(sub.variables())
        free = tuple(v for v in nest_vars if v not in sub_vars)
        tokens.append(TokenInfo(site=site, nest_vars=nest_vars, free_vars=free))
    return tokens


@dataclass(frozen=True)
class TokenClass:
    """Communication classification of a token under a mapping."""

    token: TokenInfo
    mapping: tuple[int, ...]
    dots: tuple[int, ...]  # pi . e_v for each free direction
    pattern: str  # "local", "pipeline", or "broadcast"

    def used_in_pes(self) -> str:
        """Table 5's "used in PEs" column."""
        if self.pattern == "local":
            # The owner expression: pi . I restricted to bound variables.
            bound = [
                v
                for v, c in zip(self.token.nest_vars, self.mapping)
                if c != 0 and v not in self.token.free_vars
            ]
            if bound:
                return f"({' + '.join(bound)} - 1) mod N"
            return "single PE"
        return "all PEs"


def classify_token(token: TokenInfo, mapping: tuple[int, ...]) -> TokenClass:
    """Classify *token* under index-processor *mapping* (a row vector).

    The mapping vector has one entry per nest variable (outermost first)
    and may be shorter than the token's nest (extra inner variables get
    coefficient zero) — Table 5 mixes 2-deep and 3-deep statements.
    """
    pi = tuple(mapping) + (0,) * (len(token.nest_vars) - len(mapping))
    dots = tuple(
        sum(c * d for c, d in zip(pi, direction)) for direction in token.directions()
    )
    nonzero = [d for d in dots if d != 0]
    if not nonzero:
        pattern = "local"
    elif len(nonzero) == 1 and abs(nonzero[0]) == 1:
        pattern = "pipeline"
    else:
        pattern = "broadcast"
    return TokenClass(token=token, mapping=pi, dots=dots, pattern=pattern)
