"""The compile-service layer (compiler-as-a-service).

The paper's pipeline — align (§3), distribute (§4), DP over
redistribution chains — is a pure function of ``(program, machine,
alpha/tf/tc, N, env)``.  This package makes that purity pay:

* :mod:`repro.service.normalize` — canonicalization of the loop-nest IR
  (alpha-renaming, commutative sorting) into a stable text form, hashed
  together with the machine parameters into a content-addressed digest;
* :mod:`repro.service.cache` — :class:`PlanCache`, a two-tier
  (in-memory LRU + on-disk) store from digest to pickled compile
  artifacts, with hit/miss/eviction counters;
* :mod:`repro.service.guests` — the front-end registry: the Fortran
  style DSL is the ``dsl`` guest, decorated Python loop nests are the
  ``python-ast`` guest, and tool-facing JSON documents are the
  ``json-ir`` guest; all three lower into the same :class:`Program` IR
  and therefore share cache entries;
* :mod:`repro.service.compiler` — :class:`CompileService`: single
  requests, ``compile_batch`` (alignment/DP sub-results shared across
  programs hashing to common sub-keys) and a job-queue runner that
  services requests from worker threads, each request wrapped in a
  wall-clock span on the compiler Perfetto lane;
* :mod:`repro.service.supervisor` — :class:`WorkerSupervisor`, the
  supervised subprocess pool behind ``workers > 0``: crash detection,
  capped-backoff respawn, bounded retries, per-request deadlines, and
  deterministic chaos injection for the crash drills (see
  docs/RESILIENCE.md).

:mod:`repro.api` is a thin veneer over this package; see docs/API.md.
"""

from __future__ import annotations

from repro.service.cache import CacheStats, PlanCache, make_cache
from repro.service.compiler import (
    CompileRequest,
    CompileResult,
    CompileService,
)
from repro.service.supervisor import WorkerSupervisor
from repro.service.guests import (
    available_guests,
    get_guest,
    loop_nest,
    lower,
    program_from_json,
    program_to_json,
    register_guest,
)
from repro.service.normalize import (
    IR_SCHEMA,
    CanonicalForm,
    canonicalize,
    program_digest,
    solve_digest,
)

__all__ = [
    "IR_SCHEMA",
    "CanonicalForm",
    "canonicalize",
    "program_digest",
    "solve_digest",
    "CacheStats",
    "PlanCache",
    "make_cache",
    "available_guests",
    "get_guest",
    "register_guest",
    "loop_nest",
    "lower",
    "program_from_json",
    "program_to_json",
    "CompileRequest",
    "CompileResult",
    "CompileService",
    "WorkerSupervisor",
]
