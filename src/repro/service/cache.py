"""Two-tier content-addressed plan cache with a crash-safe disk tier.

:class:`PlanCache` maps a digest (:mod:`repro.service.normalize`) to a
pickled compile artifact.  Values are stored *as pickle bytes* in both
tiers — every ``get`` deserializes a fresh object, so cached plans are
bit-identical to (and isolated from) what was ``put``, and the warm
path pays exactly one ``pickle.loads``.

* **memory tier** — an ``OrderedDict`` LRU bounded by ``capacity``;
* **disk tier** — one ``<digest>.pkl`` file per entry under
  ``disk_dir`` (enabled by passing a directory); memory evictions spill
  to disk, disk hits are promoted back into memory.

The disk tier is hardened for concurrent multi-process sharing and for
crashes mid-write (ISSUE 8):

* **atomic writes** — every entry is written to a same-directory temp
  file, fsynced, then ``os.replace``d into place, so a crash mid-write
  can never leave a torn entry under the content address;
* **checksum trailers** — each file ends in a 32-byte sha256 of the
  pickle payload, verified on every disk read; a mismatched, truncated
  or unpicklable entry is **quarantined** (moved to
  ``disk_dir/quarantine/``) and served as a miss, never as garbage;
* **advisory file locking** — disk reads take a shared ``flock`` and
  writes an exclusive one on ``disk_dir/.lock``, so any number of
  services and supervised worker processes share one cache directory
  without corruption (no-op where ``fcntl`` is unavailable);
* **graceful degradation** — after ``disk_fault_limit`` *consecutive*
  ``OSError`` faults the disk tier is disabled and the cache continues
  memory-only (counted in ``CacheStats.disk_faults`` /
  ``disk_disabled``, logged, never silently wrong).

Counters live in :class:`CacheStats` — the compile-side twin of the
simulator's :class:`repro.machine.metrics.Metrics` registry — and are
surfaced by :attr:`repro.api.Session.stats` and the X11/X12 benchmark
records.

Keys embed :data:`repro.service.normalize.IR_SCHEMA`, so a schema bump
orphans (never corrupts) previously persisted entries; ``prune`` clears
them from disk.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pathlib
import pickle
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ReproError

try:  # advisory locking is POSIX-only; the tier degrades to lockless
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

logger = logging.getLogger("repro.service")

_MISS = object()

#: Bytes of the sha256 trailer appended to every disk entry.
_TRAILER = hashlib.sha256().digest_size


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0
    #: Disk entries that failed the checksum/unpickle check and were
    #: quarantined (each served as a miss — the drift oracle and the
    #: X12 bench watch this).
    corrupt: int = 0
    #: OSError faults in the disk tier (reads and writes).
    disk_faults: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "disk_faults": self.disk_faults,
            "hit_rate": self.hit_rate,
        }


def _seal(blob: bytes) -> bytes:
    """Append the sha256 trailer the disk tier verifies on every read."""
    return blob + hashlib.sha256(blob).digest()


def _unseal(data: bytes) -> bytes | None:
    """Strip and verify the trailer; ``None`` marks a corrupt entry."""
    if len(data) <= _TRAILER:
        return None
    blob, trailer = data[:-_TRAILER], data[-_TRAILER:]
    if hashlib.sha256(blob).digest() != trailer:
        return None
    return blob


def _write_atomic(path: pathlib.Path, data: bytes) -> None:
    """Same-directory temp file + fsync + ``os.replace``: readers see
    either the old entry or the complete new one, never a torn write."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class PlanCache:
    """LRU-over-disk store from content digest to pickled artifact."""

    capacity: int = 256
    disk_dir: pathlib.Path | None = None
    #: Consecutive disk OSErrors tolerated before the disk tier is
    #: disabled and the cache degrades to memory-only.
    disk_fault_limit: int = 3
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {self.capacity}")
        if self.disk_dir is not None:
            self.disk_dir = pathlib.Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._disk_disabled = False
        self._consecutive_faults = 0

    # -- disk plumbing --------------------------------------------------
    @property
    def disk_disabled(self) -> bool:
        """True once repeated disk faults degraded the cache to memory-only."""
        return self._disk_disabled

    @property
    def quarantine_dir(self) -> pathlib.Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / "quarantine"

    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.disk_dir is None or self._disk_disabled:
            return None
        return self.disk_dir / f"{key}.pkl"

    @contextmanager
    def _disk_lock(self, exclusive: bool):
        """Advisory flock on ``disk_dir/.lock`` (no-op without fcntl)."""
        if fcntl is None or self.disk_dir is None:
            yield
            return
        try:
            handle = open(self.disk_dir / ".lock", "a+b")
        except OSError:
            yield  # the op itself will hit (and count) the fault
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                handle.close()

    def _disk_fault(self, what: str, exc: OSError) -> None:
        self.stats.disk_faults += 1
        self._consecutive_faults += 1
        if self._consecutive_faults >= self.disk_fault_limit and not self._disk_disabled:
            self._disk_disabled = True
            logger.warning(
                "plan cache disk tier disabled after %d consecutive faults "
                "(last: %s during %s); continuing memory-only",
                self._consecutive_faults, exc, what,
            )
        else:
            logger.warning("plan cache disk %s fault: %s", what, exc)

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry aside so it is never served (or re-read)."""
        self.stats.corrupt += 1
        qdir = self.quarantine_dir
        try:
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / f"{path.name}.{os.getpid()}")
        except OSError:
            # Another process quarantined it first (or the dir is gone);
            # either way the entry is no longer addressable — that is all
            # quarantine has to guarantee.
            pass
        logger.warning("plan cache quarantined corrupt entry %s", path.name)

    def _disk_read(self, key: str) -> bytes | None:
        """Checksum-verified read; corrupt entries quarantine as misses."""
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with self._disk_lock(exclusive=False):
                if not path.exists():
                    return None
                data = path.read_bytes()
        except OSError as exc:
            self._disk_fault("read", exc)
            return None
        self._consecutive_faults = 0
        blob = _unseal(data)
        if blob is None:
            self._quarantine(path)
            return None
        return blob

    def _disk_write(self, key: str, blob: bytes) -> None:
        """Atomic, checksummed, write-once disk insert."""
        path = self._disk_path(key)
        if path is None:
            return
        try:
            with self._disk_lock(exclusive=True):
                if not path.exists():
                    _write_atomic(path, _seal(blob))
        except OSError as exc:
            self._disk_fault("write", exc)
            return
        self._consecutive_faults = 0

    # -- tiers ----------------------------------------------------------
    def lookup(self, key: str) -> object:
        """The raw two-tier probe; returns the module-level miss sentinel."""
        blob = self._mem.get(key)
        if blob is not None:
            self._mem.move_to_end(key)
            self.stats.hits += 1
            return pickle.loads(blob)
        blob = self._disk_read(key)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                # The checksum held but the payload predates the current
                # pickle layout (or was poisoned before sealing) — same
                # treatment: quarantine and recompile.
                path = self._disk_path(key)
                if path is not None:
                    self._quarantine(path)
                self.stats.misses += 1
                return _MISS
            self._insert(key, blob)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return value
        self.stats.misses += 1
        return _MISS

    def get(self, key: str, default: object | None = None) -> object | None:
        value = self.lookup(key)
        return default if value is _MISS else value

    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def put(self, key: str, value: object) -> None:
        self.stats.puts += 1
        self._insert(key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _insert(self, key: str, blob: bytes) -> None:
        mem = self._mem
        if key in mem:
            mem.move_to_end(key)
            mem[key] = blob
            return
        mem[key] = blob
        while len(mem) > self.capacity:
            old_key, old_blob = mem.popitem(last=False)
            self.stats.evictions += 1
            self._disk_write(old_key, old_blob)
        self._disk_write(key, blob)

    # -- maintenance ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        """Drop the memory tier (disk entries survive, counters reset)."""
        self._mem.clear()
        self.stats = CacheStats()

    def prune(self) -> int:
        """Delete every on-disk entry (quarantined ones included);
        returns the number of live entries removed."""
        if self.disk_dir is None:
            return 0
        removed = 0
        try:
            with self._disk_lock(exclusive=True):
                for path in self.disk_dir.glob("*.pkl"):
                    path.unlink(missing_ok=True)
                    removed += 1
                qdir = self.quarantine_dir
                if qdir.is_dir():
                    for path in qdir.iterdir():
                        path.unlink(missing_ok=True)
        except OSError as exc:
            self._disk_fault("prune", exc)
        return removed


def make_cache(
    mode: str = "memory",
    capacity: int = 256,
    disk_dir: str | pathlib.Path | None = None,
) -> PlanCache | None:
    """Build a cache from the public ``cache="off|memory|disk"`` knob.

    ``disk`` requires *disk_dir*; ``off`` returns ``None`` (the service
    then compiles every request from scratch).
    """
    if mode == "off":
        return None
    if mode == "memory":
        return PlanCache(capacity=capacity)
    if mode == "disk":
        if disk_dir is None:
            raise ReproError('cache="disk" needs cache_dir=')
        return PlanCache(capacity=capacity, disk_dir=pathlib.Path(disk_dir))
    raise ReproError(
        f"unknown cache mode {mode!r}; expected 'off', 'memory' or 'disk'"
    )
