"""Two-tier content-addressed plan cache.

:class:`PlanCache` maps a digest (:mod:`repro.service.normalize`) to a
pickled compile artifact.  Values are stored *as pickle bytes* in both
tiers — every ``get`` deserializes a fresh object, so cached plans are
bit-identical to (and isolated from) what was ``put``, and the warm
path pays exactly one ``pickle.loads``.

* **memory tier** — an ``OrderedDict`` LRU bounded by ``capacity``;
* **disk tier** — one ``<digest>.pkl`` file per entry under
  ``disk_dir`` (enabled by passing a directory); memory evictions spill
  to disk, disk hits are promoted back into memory.

Counters live in :class:`CacheStats` — the compile-side twin of the
simulator's :class:`repro.machine.metrics.Metrics` registry — and are
surfaced by :attr:`repro.api.Session.stats` and the X11 benchmark
records.

Keys embed :data:`repro.service.normalize.IR_SCHEMA`, so a schema bump
orphans (never corrupts) previously persisted entries; ``prune`` clears
them from disk.
"""

from __future__ import annotations

import pathlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ReproError

_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PlanCache:
    """LRU-over-disk store from content digest to pickled artifact."""

    capacity: int = 256
    disk_dir: pathlib.Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {self.capacity}")
        if self.disk_dir is not None:
            self.disk_dir = pathlib.Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._mem: OrderedDict[str, bytes] = OrderedDict()

    # -- tiers ----------------------------------------------------------
    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def lookup(self, key: str) -> object:
        """The raw two-tier probe; returns the module-level miss sentinel."""
        blob = self._mem.get(key)
        if blob is not None:
            self._mem.move_to_end(key)
            self.stats.hits += 1
            return pickle.loads(blob)
        path = self._disk_path(key)
        if path is not None and path.exists():
            blob = path.read_bytes()
            self._insert(key, blob)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return pickle.loads(blob)
        self.stats.misses += 1
        return _MISS

    def get(self, key: str, default: object | None = None) -> object | None:
        value = self.lookup(key)
        return default if value is _MISS else value

    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def put(self, key: str, value: object) -> None:
        self.stats.puts += 1
        self._insert(key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _insert(self, key: str, blob: bytes) -> None:
        mem = self._mem
        if key in mem:
            mem.move_to_end(key)
            mem[key] = blob
            return
        mem[key] = blob
        while len(mem) > self.capacity:
            old_key, old_blob = mem.popitem(last=False)
            self.stats.evictions += 1
            path = self._disk_path(old_key)
            if path is not None and not path.exists():
                path.write_bytes(old_blob)
        path = self._disk_path(key)
        if path is not None and not path.exists():
            path.write_bytes(blob)

    # -- maintenance ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        """Drop the memory tier (disk entries survive, counters reset)."""
        self._mem.clear()
        self.stats = CacheStats()

    def prune(self) -> int:
        """Delete every on-disk entry; returns the number removed."""
        if self.disk_dir is None:
            return 0
        removed = 0
        for path in self.disk_dir.glob("*.pkl"):
            path.unlink()
            removed += 1
        return removed


def make_cache(
    mode: str = "memory",
    capacity: int = 256,
    disk_dir: str | pathlib.Path | None = None,
) -> PlanCache | None:
    """Build a cache from the public ``cache="off|memory|disk"`` knob.

    ``disk`` requires *disk_dir*; ``off`` returns ``None`` (the service
    then compiles every request from scratch).
    """
    if mode == "off":
        return None
    if mode == "memory":
        return PlanCache(capacity=capacity)
    if mode == "disk":
        if disk_dir is None:
            raise ReproError('cache="disk" needs cache_dir=')
        return PlanCache(capacity=capacity, disk_dir=pathlib.Path(disk_dir))
    raise ReproError(
        f"unknown cache mode {mode!r}; expected 'off', 'memory' or 'disk'"
    )
