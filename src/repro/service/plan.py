"""Compiled-program artifacts: :class:`Plan` and its typed payloads.

A :class:`Plan` is the unit the content-addressed cache stores: the
source IR plus its generated SPMD code.  Its inspection surfaces return
typed dataclasses rather than ad-hoc dicts/tuples:

* :meth:`Plan.solve` → :class:`SolveOutcome` (iterable like the legacy
  ``(tables, result[, validation])`` tuple, so unpacking call sites
  keep working);
* :meth:`Plan.explain` → :class:`Explanation` (``str()`` renders the
  familiar report; the fields are machine-readable).

Machine parameters are keyword-only throughout: the positional surface
is just ``(nprocs, env)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.spmd import GeneratedProgram, generate_spmd, load_generated
from repro.errors import ReproError
from repro.lang.ast import Program
from repro.machine.engine import RunResult, run_spmd
from repro.machine.model import MachineModel
from repro.machine.threaded import run_spmd_threaded
from repro.machine.topology import Grid2D, Ring

_RUNNERS = {"engine": run_spmd, "threaded": run_spmd_threaded}


def _default_inputs(gen: GeneratedProgram, env: dict[str, int], seed: int) -> dict:
    """Fabricate inputs matching the recognized pattern (SPD system for
    solvers, random operands for matmul)."""
    import numpy as np

    from repro.codegen.patterns import (
        GaussPattern,
        IterativeSolvePattern,
        MatmulPattern,
    )
    from repro.kernels.linalg import make_spd_system

    pat = gen.pattern
    m = env.get("m", env.get("n", 16))
    if isinstance(pat, IterativeSolvePattern):
        A, b, _ = make_spd_system(m, seed=seed)
        inputs = {
            pat.A: A,
            pat.B: b,
            "X0": np.zeros(m),
            "iterations": env.get(pat.iterations, env.get("maxiter", 10)),
        }
        if pat.omega:
            inputs[pat.omega] = 1.1
        return inputs
    if isinstance(pat, GaussPattern):
        A, b, _ = make_spd_system(m, seed=seed)
        return {pat.A: A, pat.B: b}
    if isinstance(pat, MatmulPattern):
        rng = np.random.default_rng(seed)
        return {pat.left: rng.random((m, m)), pat.right: rng.random((m, m))}
    raise ReproError(
        f"cannot build default inputs for strategy {gen.strategy!r}; "
        f"pass inputs= explicitly"
    )


@dataclass(frozen=True)
class SegmentChoice:
    """One chosen segment of the DP chain: where it runs and how."""

    label: str  # "L1" or "L1..L2"
    start: int
    length: int
    grid: tuple[int, int]
    description: str  # Scheme.describe()


@dataclass(frozen=True)
class TransitionCost:
    """One redistribution along the chosen chain."""

    label: str  # "L1 -> L2" or "loop[X]"
    total: float
    analytic_words: float


@dataclass(frozen=True)
class Explanation:
    """What the compiler decided (and, with a solve, what Algorithm 1
    chose); ``str()`` renders the human-readable report."""

    strategy: str
    entry: str
    pattern: object
    nprocs: int | None = None
    env: dict | None = None
    total_cost: float | None = None
    loop_carried: float | None = None
    segments: tuple[SegmentChoice, ...] = ()
    transitions: tuple[TransitionCost, ...] = ()

    def __str__(self) -> str:
        lines = [
            f"strategy: {self.strategy}",
            f"entry:    {self.entry}",
            f"pattern:  {self.pattern!r}",
        ]
        if self.nprocs is not None and self.env is not None:
            lines.append(f"N = {self.nprocs}, env = {self.env}")
            lines.append(f"total cost {self.total_cost:g} "
                         f"(loop-carried {self.loop_carried:g})")
            for seg in self.segments:
                lines.append(
                    f"  {seg.label} on {seg.grid[0]}x{seg.grid[1]}: {seg.description}"
                )
            for tr in self.transitions:
                lines.append(f"  change {tr.label}: {tr.total:g} "
                             f"({tr.analytic_words:g} words)")
        return "\n".join(lines)

    def __contains__(self, item: str) -> bool:
        return item in str(self)


@dataclass(frozen=True)
class SolveOutcome:
    """Algorithm 1's answer for a plan under ``(nprocs, env, machine)``.

    Iterates like the legacy tuple — ``tables, result = plan.solve(...)``
    and the three-element ``execute=True`` unpacking both still work.
    """

    tables: object  # repro.dp.phases.PhaseTables
    result: object  # repro.dp.algorithm1.DPResult
    validation: object | None = None  # repro.dp.validate.RedistValidation

    @property
    def cost(self) -> float:
        return self.result.cost

    @property
    def loop_carried(self) -> float:
        return self.result.loop_carried

    def __iter__(self):
        yield self.tables
        yield self.result
        if self.validation is not None:
            yield self.validation


@dataclass(frozen=True)
class Plan:
    """A compiled program: the source IR plus its generated SPMD code."""

    program: Program
    generated: GeneratedProgram

    @property
    def strategy(self) -> str:
        return self.generated.strategy

    @property
    def source(self) -> str:
        """The generated SPMD source text."""
        return self.generated.source

    # -- execution -------------------------------------------------------
    def run(
        self,
        nprocs: int,
        env: dict[str, int],
        *,
        model: MachineModel | None = None,
        inputs: dict | None = None,
        seed: int = 0,
        backend: str = "engine",
        trace: bool = False,
    ) -> RunResult:
        """Execute the generated program on *nprocs* simulated processors.

        *backend* selects the deterministic event-driven ``"engine"`` or
        the real-thread ``"threaded"`` runtime; both produce the same
        values and traffic.
        """
        if backend not in _RUNNERS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {sorted(_RUNNERS)}"
            )
        model = model or MachineModel()
        fn = load_generated(self.generated)
        if inputs is None:
            inputs = _default_inputs(self.generated, env, seed)
        if self.generated.strategy == "cannon":
            q = int(round(nprocs**0.5))
            topology = Grid2D(q, q)
        else:
            topology = Ring(nprocs)
        return _RUNNERS[backend](fn, topology, model, args=(inputs,), trace=trace)

    # -- analysis --------------------------------------------------------
    def solve(
        self,
        nprocs: int,
        env: dict[str, int],
        *,
        model: MachineModel | None = None,
        execute: bool = False,
        backends: tuple[str, ...] = ("engine", "threaded"),
        segment_memo: dict | None = None,
    ) -> SolveOutcome:
        """Run Algorithm 1 on the program; with ``execute=True`` also
        lower and run every chosen redistribution
        (:mod:`repro.dp.validate`) and fill ``validation``."""
        from repro.dp.phases import solve_program_distribution

        out = solve_program_distribution(
            self.program, nprocs, env, model or MachineModel(),
            execute=execute, backends=backends, segment_memo=segment_memo,
        )
        if execute:
            tables, result, validation = out
            return SolveOutcome(tables=tables, result=result, validation=validation)
        tables, result = out
        return SolveOutcome(tables=tables, result=result)

    def explain(
        self,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        *,
        model: MachineModel | None = None,
    ) -> Explanation:
        """What the compiler decided, and — with *nprocs*/*env* — what
        Algorithm 1 chooses for it."""
        base = dict(
            strategy=self.strategy,
            entry=self.generated.entry,
            pattern=self.generated.pattern,
        )
        if nprocs is None or env is None:
            return Explanation(**base)
        outcome = self.solve(nprocs, env, model=model)
        tables, result = outcome.tables, outcome.result
        segments = []
        for (start, length), (scheme, grid) in zip(result.segments, result.schemes):
            label = f"L{start}" if length == 1 else f"L{start}..L{start + length - 1}"
            segments.append(
                SegmentChoice(
                    label=label, start=start, length=length,
                    grid=grid, description=scheme.describe(),
                )
            )
        transitions = [
            TransitionCost(
                label=label, total=plan.total, analytic_words=plan.analytic_words
            )
            for label, plan in tables.transition_plans(result)
        ]
        return Explanation(
            **base,
            nprocs=nprocs,
            env=dict(env),
            total_cost=result.cost,
            loop_carried=result.loop_carried,
            segments=tuple(segments),
            transitions=tuple(transitions),
        )


def compile_plan(program: Program, strategy: str | None = None) -> Plan:
    """Recognize *program* and generate its SPMD code (no cache)."""
    return Plan(program=program, generated=generate_spmd(program, strategy=strategy))
