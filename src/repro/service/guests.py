"""Front-end guest registry: many surfaces, one IR.

Modeled on the hub/guest architecture of agnostic decomposition hubs
(one hub, pluggable front ends): the compile service is the hub and
each *guest* is a lowering from some source surface into the shared
:class:`~repro.lang.ast.Program` IR.  Because every guest lands in the
same IR and the cache key is computed from the *canonicalized* IR, a
Jacobi written in the Fortran-style DSL, as a decorated Python loop
nest and as a JSON document all hit the same cache entry.

Built-in guests
---------------
``dsl``
    The Fortran-style Do-loop DSL (:func:`repro.lang.parse_program`).
    Accepts source text or an already-built :class:`Program`.
``python-ast``
    Decorated Python functions whose bodies are 1-based ``for ... in
    range(...)`` nests over subscripted arrays — see :func:`loop_nest`.
    Accepts the decorated function object.
``json-ir``
    A JSON document (dict or text) in the ``repro-json-ir/1`` schema —
    the tool-integration surface.  :func:`program_to_json` is its exact
    inverse, so foreign tools can round-trip programs loss-free.

Register additional guests with :func:`register_guest`; docs/API.md has
the authoring guide.
"""

from __future__ import annotations

import ast as python_ast
import inspect
import json
import textwrap
from typing import Callable

from repro.errors import ParseError, ReproError
from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)
from repro.lang.parser import INTRINSICS, expr_to_affine, parse_program

#: JSON-IR document version (independent of the cache's IR_SCHEMA).
JSON_SCHEMA = "repro-json-ir/1"

_GUESTS: dict[str, Callable[[object], Program]] = {}


def register_guest(name: str):
    """Decorator registering a lowering ``fn(source) -> Program``."""

    def decorate(fn: Callable[[object], Program]):
        if name in _GUESTS:
            raise ReproError(f"guest {name!r} is already registered")
        _GUESTS[name] = fn
        return fn

    return decorate


def available_guests() -> tuple[str, ...]:
    return tuple(sorted(_GUESTS))


def get_guest(name: str) -> Callable[[object], Program]:
    try:
        return _GUESTS[name]
    except KeyError:
        raise ReproError(
            f"unknown guest {name!r}; registered: {', '.join(available_guests())}"
        ) from None


def lower(source: object, guest: str = "dsl") -> Program:
    """Lower *source* through the named guest into the shared IR."""
    program = get_guest(guest)(source)
    if not isinstance(program, Program):
        raise ReproError(
            f"guest {guest!r} returned {type(program).__name__}, expected Program"
        )
    return program


# ---------------------------------------------------------------------------
# dsl guest
# ---------------------------------------------------------------------------


@register_guest("dsl")
def _dsl_guest(source: object) -> Program:
    if isinstance(source, Program):
        return source
    if isinstance(source, str):
        return parse_program(source)
    raise ReproError(
        f"dsl guest takes DSL text or a Program, got {type(source).__name__}"
    )


# ---------------------------------------------------------------------------
# python-ast guest
# ---------------------------------------------------------------------------


def loop_nest(
    *,
    params: str = "",
    arrays: str = "",
    scalars: str = "",
    name: str | None = None,
):
    """Mark a Python function as a loop nest for the ``python-ast`` guest.

    The declaration strings use the DSL's own syntax::

        @loop_nest(params="m, maxiter", arrays="A(m, m), V(m), B(m), X(m)")
        def jacobi(m, maxiter, A, V, B, X):
            for k in range(1, maxiter + 1):
                for i in range(1, m + 1):
                    V[i] = 0.0
                    for j in range(1, m + 1):
                        V[i] = V[i] + A[i, j] * X[j]
                for i in range(1, m + 1):
                    X[i] = X[i] + (B[i] - V[i]) / A[i, i]

    The body must be 1-based ``for ... in range(lb, ub + 1[, step])``
    nests of subscripted assignments with affine subscripts — exactly
    the DSL's program class, spelled in Python.  The decorated function
    is returned unchanged with the lowered :class:`Program` attached as
    ``__repro_program__`` (lowered lazily on first access).
    """

    def decorate(fn):
        fn.__repro_loop_nest__ = {
            "params": params,
            "arrays": arrays,
            "scalars": scalars,
            "name": name or fn.__name__,
        }
        return fn

    return decorate


def _parse_decls(meta: dict) -> tuple[tuple, dict, tuple]:
    """Harvest (params, arrays, scalars) by parsing a decl-only program."""
    lines = [f"PROGRAM {meta['name']}"]
    if meta["params"]:
        lines.append(f"PARAM {meta['params']}")
    if meta["scalars"]:
        lines.append(f"SCALAR {meta['scalars']}")
    if meta["arrays"]:
        lines.append(f"ARRAY {meta['arrays']}")
    lines.append("END")
    shell = parse_program("\n".join(lines))
    return shell.params, shell.arrays, shell.scalars


class _PyLowering:
    """Convert a restricted Python AST into the Do-loop IR."""

    def __init__(self, arrays: dict[str, ArrayDecl]) -> None:
        self.arrays = arrays
        self.loop_seq = 0

    def fail(self, node: python_ast.AST, why: str) -> ParseError:
        line = getattr(node, "lineno", 0)
        return ParseError(f"python-ast guest: {why}", line)

    def stmts(self, body: list[python_ast.stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for node in body:
            if isinstance(node, python_ast.Expr) and isinstance(
                node.value, python_ast.Constant
            ):
                continue  # docstring
            out.append(self.stmt(node))
        return out

    def stmt(self, node: python_ast.stmt) -> Stmt:
        if isinstance(node, python_ast.For):
            return self.for_loop(node)
        if isinstance(node, python_ast.Assign):
            if len(node.targets) != 1:
                raise self.fail(node, "chained assignment is not in the IR")
            lhs = self.expr(node.targets[0])
            if not isinstance(lhs, (ArrayRef, ScalarRef)):
                raise self.fail(node, "assignment target must be a scalar or subscript")
            return Assign(lhs=lhs, rhs=self.expr(node.value), line=node.lineno)
        raise self.fail(
            node, f"only for/assign statements lower; got {type(node).__name__}"
        )

    def for_loop(self, node: python_ast.For) -> DoLoop:
        if node.orelse:
            raise self.fail(node, "for/else has no IR equivalent")
        if not isinstance(node.target, python_ast.Name):
            raise self.fail(node, "loop target must be a plain name")
        it = node.iter
        if not (
            isinstance(it, python_ast.Call)
            and isinstance(it.func, python_ast.Name)
            and it.func.id == "range"
            and 1 <= len(it.args) <= 3
            and not it.keywords
        ):
            raise self.fail(node, "loop iterator must be range(lb, ub[, step])")
        if len(it.args) == 1:
            lb: Affine = Affine.constant(0)
            stop = self.affine(it.args[0])
        else:
            lb = self.affine(it.args[0])
            stop = self.affine(it.args[1])
        step = 1
        if len(it.args) == 3:
            step_aff = self.affine(it.args[2])
            if not step_aff.is_constant or step_aff.const == 0:
                raise self.fail(node, "range step must be a nonzero constant")
            step = step_aff.const
        # range() stops *before* its bound; DO is inclusive.
        ub = stop - 1 if step > 0 else stop + 1
        return DoLoop(
            var=node.target.id,
            lb=lb,
            ub=ub,
            step=step,
            body=self.stmts(node.body),
            line=node.lineno,
        )

    def affine(self, node: python_ast.expr) -> Affine:
        return expr_to_affine(self.expr(node))

    def expr(self, node: python_ast.expr) -> Expr:
        if isinstance(node, python_ast.Constant):
            if not isinstance(node.value, (int, float)):
                raise self.fail(node, f"literal {node.value!r} is not numeric")
            return Num(node.value)
        if isinstance(node, python_ast.Name):
            return ScalarRef(node.id)
        if isinstance(node, python_ast.UnaryOp):
            op = {"USub": "-", "UAdd": "+"}.get(type(node.op).__name__)
            if op is None:
                raise self.fail(node, f"unary {type(node.op).__name__} not in the IR")
            operand = self.expr(node.operand)
            return operand if op == "+" else UnaryOp("-", operand)
        if isinstance(node, python_ast.BinOp):
            op = {
                "Add": "+", "Sub": "-", "Mult": "*", "Div": "/",
            }.get(type(node.op).__name__)
            if op is None:
                raise self.fail(node, f"operator {type(node.op).__name__} not in the IR")
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, python_ast.Subscript):
            if not isinstance(node.value, python_ast.Name):
                raise self.fail(node, "subscripted value must be a plain array name")
            arr = node.value.id
            decl = self.arrays.get(arr)
            if decl is None:
                raise self.fail(node, f"subscript of undeclared array {arr!r}")
            sl = node.slice
            elems = list(sl.elts) if isinstance(sl, python_ast.Tuple) else [sl]
            if len(elems) != decl.rank:
                raise self.fail(
                    node, f"array {arr!r} has rank {decl.rank}, got {len(elems)}"
                )
            return ArrayRef(arr, tuple(self.affine(e) for e in elems))
        if isinstance(node, python_ast.Call):
            if not isinstance(node.func, python_ast.Name) or node.keywords:
                raise self.fail(node, "only plain intrinsic calls lower")
            fname = node.func.id.lower()
            if fname not in INTRINSICS:
                raise self.fail(node, f"{node.func.id!r} is not an intrinsic")
            return Call(fname, tuple(self.expr(a) for a in node.args))
        raise self.fail(node, f"{type(node).__name__} has no IR equivalent")


def _meta_from_decorator(fndef: python_ast.FunctionDef) -> dict | None:
    """Recover @loop_nest keyword strings from the decorator AST (used
    when lowering source *text*, where the decorator never ran)."""
    for dec in fndef.decorator_list:
        if not (
            isinstance(dec, python_ast.Call)
            and isinstance(dec.func, python_ast.Name)
            and dec.func.id == "loop_nest"
        ):
            continue
        meta = {"params": "", "arrays": "", "scalars": "", "name": fndef.name}
        for kw in dec.keywords:
            if kw.arg in meta and isinstance(kw.value, python_ast.Constant):
                meta[kw.arg] = kw.value.value or meta[kw.arg]
        meta["name"] = meta["name"] or fndef.name
        return meta
    return None


@register_guest("python-ast")
def _python_ast_guest(source: object) -> Program:
    """Lower a :func:`loop_nest`-decorated function, or Python source
    text containing one (for contexts where :func:`inspect.getsource`
    cannot see the body, e.g. a REPL)."""
    meta = None
    if callable(source):
        meta = getattr(source, "__repro_loop_nest__", None)
        if meta is None:
            raise ReproError(
                "python-ast guest needs a @loop_nest-decorated function"
            )
        cached = getattr(source, "__repro_program__", None)
        if cached is not None:
            return cached
        try:
            text = textwrap.dedent(inspect.getsource(source))
        except OSError:
            raise ReproError(
                "python-ast guest cannot recover the function body "
                f"of {meta['name']!r} (no source file); pass the "
                "function's source text instead"
            ) from None
    elif isinstance(source, str):
        text = textwrap.dedent(source)
    else:
        raise ReproError(
            "python-ast guest takes a decorated function or its source "
            f"text, got {type(source).__name__}"
        )

    module = python_ast.parse(text)
    fndefs = [n for n in module.body if isinstance(n, python_ast.FunctionDef)]
    if len(fndefs) != 1:
        raise ReproError("python-ast guest expects exactly one function definition")
    if meta is None:
        meta = _meta_from_decorator(fndefs[0])
        if meta is None:
            raise ReproError(
                "python-ast guest source text must carry a "
                "@loop_nest(...) decorator"
            )
    params, arrays, scalars = _parse_decls(meta)
    lowering = _PyLowering(arrays)
    program = Program(
        name=meta["name"],
        params=params,
        arrays=arrays,
        scalars=scalars,
        body=lowering.stmts(fndefs[0].body),
    )
    if callable(source):
        source.__repro_program__ = program
    return program


# ---------------------------------------------------------------------------
# json-ir guest
# ---------------------------------------------------------------------------


def _affine_to_json(aff: Affine) -> dict:
    return {"const": aff.const, "coeffs": dict(sorted(aff.coeffs.items()))}


def _affine_from_json(doc: dict) -> Affine:
    return Affine(dict(doc.get("coeffs", {})), doc.get("const", 0))


def _expr_to_json(expr: Expr) -> dict:
    if isinstance(expr, Num):
        return {"num": expr.value}
    if isinstance(expr, ScalarRef):
        return {"var": expr.name}
    if isinstance(expr, ArrayRef):
        return {
            "ref": expr.name,
            "subs": [_affine_to_json(s) for s in expr.subscripts],
        }
    if isinstance(expr, UnaryOp):
        return {"unary": expr.op, "operand": _expr_to_json(expr.operand)}
    if isinstance(expr, BinOp):
        return {
            "op": expr.op,
            "left": _expr_to_json(expr.left),
            "right": _expr_to_json(expr.right),
        }
    if isinstance(expr, Call):
        return {"call": expr.name, "args": [_expr_to_json(a) for a in expr.args]}
    raise TypeError(f"unknown expression node {expr!r}")


def _expr_from_json(doc: dict) -> Expr:
    if "num" in doc:
        return Num(doc["num"])
    if "var" in doc:
        return ScalarRef(doc["var"])
    if "ref" in doc:
        return ArrayRef(
            doc["ref"], tuple(_affine_from_json(s) for s in doc.get("subs", []))
        )
    if "unary" in doc:
        return UnaryOp(doc["unary"], _expr_from_json(doc["operand"]))
    if "op" in doc:
        return BinOp(
            doc["op"], _expr_from_json(doc["left"]), _expr_from_json(doc["right"])
        )
    if "call" in doc:
        return Call(doc["call"], tuple(_expr_from_json(a) for a in doc.get("args", [])))
    raise ReproError(f"json-ir: unrecognized expression {doc!r}")


def _stmt_to_json(stmt: Stmt) -> dict:
    if isinstance(stmt, Assign):
        return {
            "assign": {
                "lhs": _expr_to_json(stmt.lhs),
                "rhs": _expr_to_json(stmt.rhs),
            }
        }
    if isinstance(stmt, DoLoop):
        return {
            "do": {
                "var": stmt.var,
                "lb": _affine_to_json(stmt.lb),
                "ub": _affine_to_json(stmt.ub),
                "step": stmt.step,
                "body": [_stmt_to_json(s) for s in stmt.body],
            }
        }
    raise TypeError(f"unknown statement node {stmt!r}")


def _stmt_from_json(doc: dict) -> Stmt:
    if "assign" in doc:
        inner = doc["assign"]
        lhs = _expr_from_json(inner["lhs"])
        if not isinstance(lhs, (ArrayRef, ScalarRef)):
            raise ReproError("json-ir: assignment lhs must be a var or ref")
        return Assign(lhs=lhs, rhs=_expr_from_json(inner["rhs"]))
    if "do" in doc:
        inner = doc["do"]
        return DoLoop(
            var=inner["var"],
            lb=_affine_from_json(inner["lb"]),
            ub=_affine_from_json(inner["ub"]),
            step=inner.get("step", 1),
            body=[_stmt_from_json(s) for s in inner.get("body", [])],
        )
    raise ReproError(f"json-ir: unrecognized statement {doc!r}")


def program_to_json(program: Program) -> dict:
    """Serialize a program as a ``repro-json-ir/1`` document (exact
    inverse of :func:`program_from_json`)."""
    return {
        "schema": JSON_SCHEMA,
        "name": program.name,
        "params": list(program.params),
        "scalars": list(program.scalars),
        "arrays": {
            name: [_affine_to_json(e) for e in decl.extents]
            for name, decl in program.arrays.items()
        },
        "directives": {k: list(v) for k, v in program.directives.items()},
        "alignments": [
            [[sa, sd], [ta, td]] for (sa, sd), (ta, td) in program.alignments
        ],
        "body": [_stmt_to_json(s) for s in program.body],
    }


def program_from_json(doc: dict | str) -> Program:
    """Build a :class:`Program` from a ``repro-json-ir/1`` document."""
    if isinstance(doc, str):
        doc = json.loads(doc)
    if doc.get("schema") != JSON_SCHEMA:
        raise ReproError(
            f"json-ir document has schema {doc.get('schema')!r}, expected {JSON_SCHEMA!r}"
        )
    arrays = {
        name: ArrayDecl(name, tuple(_affine_from_json(e) for e in extents))
        for name, extents in doc.get("arrays", {}).items()
    }
    return Program(
        name=doc.get("name", "anonymous"),
        params=tuple(doc.get("params", ())),
        arrays=arrays,
        scalars=tuple(doc.get("scalars", ())),
        body=[_stmt_from_json(s) for s in doc.get("body", [])],
        directives={k: tuple(v) for k, v in doc.get("directives", {}).items()},
        alignments=tuple(
            ((sa, sd), (ta, td)) for (sa, sd), (ta, td) in doc.get("alignments", [])
        ),
    )


@register_guest("json-ir")
def _json_ir_guest(source: object) -> Program:
    if isinstance(source, (dict, str)):
        return program_from_json(source)
    raise ReproError(
        f"json-ir guest takes a dict or JSON text, got {type(source).__name__}"
    )
