"""Supervised worker processes for the compile service (ISSUE 8).

:class:`WorkerSupervisor` is the process-pool execution tier behind
:class:`repro.service.compiler.CompileService`: each worker is a
subprocess speaking a tiny pickled request/reply protocol over a pipe,
and the supervisor watches it the way
:func:`repro.machine.resilient.run_resilient` watches simulated ranks —
a crash (signal, OOM-kill, poison request) is *detected*, the worker is
respawned with capped exponential backoff, and the in-flight request is
retried up to a budget before a typed
:class:`~repro.errors.WorkerCrashedError` surfaces carrying the
forensic tail (spawn argv, last request digest, exit status).

Design points:

* **Determinism** — compile tasks are pure functions of their pickled
  payload, so a retried request returns a bit-identical result; a run
  with injected crashes and a crash-free run produce the same
  ``CompileResult``\\s (the X12 bench and the CI ``service-chaos`` leg
  pin this).
* **Deadlines** — ``call(task, deadline_s=...)`` bounds queue wait plus
  worker wall-clock; a straggling worker is killed (and respawned), so
  a stuck compile can never orphan a pool slot.  Misses raise
  :class:`~repro.errors.DeadlineExceededError`.
* **Isolation** — workers never share interpreter state with the hub;
  an unpicklable compile product or a crashing request takes down one
  subprocess, not the service.
* **Chaos injection** — ``chaos_kill_requests={n, ...}`` SIGKILLs the
  worker serving the *n*-th dispatched request (0-based, retries count
  as new dispatches), giving tests and CI a deterministic worker-kill
  drill with no sleeps or races.

Worker replies are ``("ok", payload_bytes)`` or ``("err",
pickled_exception)``; anything else — EOF, a half-written reply, a dead
process — is treated as a crash.  Remote compile errors re-raise in the
caller unchanged (pickled round-trip), so the job queue's error
delivery semantics are identical on the thread and process tiers.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import queue
import signal
import sys
import threading
import time

from repro.errors import DeadlineExceededError, ReproError, WorkerCrashedError
from repro.obs import context as obs_context
from repro.util import spans

logger = logging.getLogger("repro.service")

#: How often (seconds) the parent re-checks a busy worker's liveness
#: while waiting for a reply with no (or a distant) deadline.
_POLL_S = 0.05


def _task_digest(blob: bytes) -> str:
    """Content digest of one pickled task (the forensic request id)."""
    return hashlib.sha256(blob).hexdigest()


def _run_task(task: dict, machine) -> object:
    """Execute one task dict; shared by the worker loop and fallback.

    Kinds: ``compile`` (program+strategy -> generated code), ``solve``
    (Algorithm 1 under the supervisor's machine model), plus the
    diagnostic kinds ``ping``/``sleep``/``unpicklable`` used by health
    checks and the test suite.
    """
    from repro.service.plan import Plan, compile_plan

    kind = task["kind"]
    if kind == "compile":
        plan = compile_plan(task["program"], strategy=task["strategy"])
        return {"generated": plan.generated}
    if kind == "solve":
        plan = Plan(program=task["program"], generated=task["generated"])
        return plan.solve(
            task["nprocs"], task["env"], model=machine, execute=task["execute"],
        )
    if kind == "ping":
        return "pong"
    if kind == "sleep":  # deadline/straggler tests
        time.sleep(task["seconds"])
        return "slept"
    if kind == "unpicklable":  # unpicklable-result tests
        return lambda: None
    if kind == "trace-echo":
        # Observability probe: report the TraceContext installed in
        # *this* process, proving the id crossed the pickled protocol.
        ctx = obs_context.current_context()
        return ctx.as_dict() if ctx is not None else None
    raise ReproError(f"unknown worker task kind {task['kind']!r}")


def _worker_main(conn, machine_blob: bytes) -> None:
    """The subprocess loop: recv task, run, reply — until EOF/stop.

    Runs with SIGINT ignored (the hub owns shutdown) and replies with
    pre-pickled payloads so an unpicklable compile product turns into a
    typed remote error instead of a torn pipe.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    machine = pickle.loads(machine_blob)
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            return
        task = pickle.loads(blob)
        if task is None:  # orderly stop
            return
        if task.get("chaos") == "sigkill":
            # Injected crash: die exactly as an OOM-kill would, before
            # any reply bytes are written.
            os.kill(os.getpid(), signal.SIGKILL)
        trace = task.pop("trace", None)
        try:
            if trace is not None:
                # The hub's TraceContext rode along in the task dict:
                # reinstall it here and record this process's spans so
                # the hub can graft them onto its own compiler lane
                # (docs/OBSERVABILITY.md).
                ctx = obs_context.TraceContext.from_dict(trace)
                with obs_context.tracing_context(ctx), spans.recording() as rec:
                    payload = _run_task(task, machine)
                payload = {
                    "__obs__": {"spans": rec.as_dicts()},
                    "value": payload,
                }
            else:
                payload = _run_task(task, machine)
            try:
                ok_blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise ReproError(
                    f"worker produced an unpicklable result for task "
                    f"{task['kind']!r}: {exc}"
                ) from None
            reply = ("ok", ok_blob)
        except BaseException as exc:
            try:
                blob_exc = pickle.dumps(exc)
            except Exception:
                blob_exc = pickle.dumps(
                    ReproError(f"worker result/error not picklable: {exc!r}")
                )
            reply = ("err", blob_exc)
        try:
            conn.send_bytes(pickle.dumps(reply))
        except (BrokenPipeError, OSError):
            return


class _WorkerDied(Exception):
    """Internal: the subprocess serving a request is gone."""

    def __init__(self, exitcode: int | None) -> None:
        super().__init__(f"worker died (exit status {exitcode})")
        self.exitcode = exitcode


class _Worker:
    """One supervised subprocess plus its pipe endpoint."""

    def __init__(self, index: int, ctx, machine_blob: bytes) -> None:
        self.index = index
        parent, child = ctx.Pipe(duplex=True)
        self.conn = parent
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, machine_blob),
            name=f"repro-compile-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child.close()  # the parent keeps only its end
        #: Spawn argv recorded for crash forensics.  Fork workers share
        #: the parent's argv; spawn workers re-exec the interpreter.
        self.argv = [sys.executable, *sys.argv]

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def call(self, blob: bytes, deadline_at: float | None):
        """Send one task and wait for its reply.

        Raises :class:`_WorkerDied` when the subprocess vanishes and
        :class:`TimeoutError` when *deadline_at* (a ``monotonic`` stamp)
        passes first — the caller decides who to blame.
        """
        try:
            self.conn.send_bytes(blob)
        except (BrokenPipeError, OSError):
            raise _WorkerDied(self._reap()) from None
        while True:
            timeout = _POLL_S
            if deadline_at is not None:
                timeout = min(timeout, deadline_at - time.monotonic())
                if timeout <= 0:
                    raise TimeoutError
            try:
                if self.conn.poll(max(timeout, 0.0)):
                    reply = pickle.loads(self.conn.recv_bytes())
                    if (
                        not isinstance(reply, tuple)
                        or len(reply) != 2
                        or reply[0] not in ("ok", "err")
                    ):
                        raise _WorkerDied(self._reap())
                    return reply
            except (EOFError, OSError):
                raise _WorkerDied(self._reap()) from None
            if not self.process.is_alive() and not self.conn.poll(0):
                raise _WorkerDied(self._reap())

    def _reap(self) -> int | None:
        self.process.join(timeout=1.0)
        return self.process.exitcode

    def stop(self) -> None:
        """Orderly shutdown: send the stop sentinel, then escalate."""
        try:
            self.conn.send_bytes(pickle.dumps(None))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        self.conn.close()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerSupervisor:
    """A crash-supervised pool of compile worker subprocesses.

    Parameters:

    workers:
        Pool size (>= 1).
    machine:
        The :class:`~repro.machine.model.MachineModel` every worker
        solves under (pickled once at spawn).
    retry_budget:
        Crash retries per request beyond the first attempt before
        :class:`WorkerCrashedError` surfaces.
    max_respawns:
        Respawns per worker *slot* before the slot is abandoned; when
        every slot is gone the pool is ``broken`` and all calls raise.
    backoff_s / backoff_cap_s:
        Capped exponential respawn backoff (slot respawn count *k*
        sleeps ``min(backoff_s * 2**(k-1), backoff_cap_s)``).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap respawns), else ``spawn``.
    chaos_kill_requests:
        Dispatch sequence numbers whose worker SIGKILLs itself
        mid-request (deterministic crash injection for tests/CI).
    """

    def __init__(
        self,
        workers: int,
        machine,
        *,
        retry_budget: int = 2,
        max_respawns: int = 3,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        start_method: str | None = None,
        chaos_kill_requests=(),
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._machine_blob = pickle.dumps(machine, protocol=pickle.HIGHEST_PROTOCOL)
        self.workers = workers
        self.retry_budget = retry_budget
        self.max_respawns = max_respawns
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.chaos_kill_requests = set(chaos_kill_requests)
        self._lock = threading.Lock()
        self._idle: queue.Queue[_Worker] = queue.Queue()
        self._respawns: dict[int, int] = {}  # per-slot respawn counts
        self._live = 0
        self._dispatch_seq = 0
        self._closed = False
        self.counters = {
            "dispatched": 0,
            "crashes": 0,
            "respawns": 0,
            "retries": 0,
            "deadline_kills": 0,
        }
        for index in range(workers):
            self._idle.put(_Worker(index, self._ctx, self._machine_blob))
            self._respawns[index] = 0
            self._live += 1

    # -- introspection ---------------------------------------------------
    @property
    def broken(self) -> bool:
        """True once every worker slot exhausted its respawn budget."""
        with self._lock:
            return self._live == 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def pids(self) -> list[int]:
        """Live worker pids (for external-kill stress tests)."""
        with self._lock:
            drained = []
            while True:
                try:
                    drained.append(self._idle.get_nowait())
                except queue.Empty:
                    break
            for w in drained:
                self._idle.put(w)
            return [w.pid for w in drained if w.process.is_alive()]

    # -- supervision ------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.counters[key] += n

    def _next_seq(self) -> int:
        with self._lock:
            seq = self._dispatch_seq
            self._dispatch_seq += 1
            self.counters["dispatched"] += 1
            return seq

    def _respawn(self, slot: int) -> None:
        """Replace a dead worker in *slot*, honoring budget and backoff."""
        with self._lock:
            count = self._respawns[slot] + 1
            if count > self.max_respawns:
                self._live -= 1
                logger.warning(
                    "compile worker slot %d exhausted its %d respawns; "
                    "abandoning the slot (%d live workers remain)",
                    slot, self.max_respawns, self._live,
                )
                return
            self._respawns[slot] = count
            self.counters["respawns"] += 1
        delay = min(self.backoff_s * (2.0 ** (count - 1)), self.backoff_cap_s)
        if delay > 0:
            time.sleep(delay)
        spans.instant(f"service/worker-respawn#{slot}")
        self._idle.put(_Worker(slot, self._ctx, self._machine_blob))

    def call(self, task: dict, deadline_s: float | None = None) -> object:
        """Run *task* on a worker, supervising crashes and the deadline.

        The deadline covers queue wait plus execution; a worker still
        busy at the deadline is killed and respawned (cancelled, not
        orphaned).  Crashes retry up to ``retry_budget`` times; budget
        exhaustion (or a broken pool) raises
        :class:`WorkerCrashedError` with the forensic tail.
        """
        if self._closed:
            raise ReproError("worker pool is closed")
        ctx = obs_context.current_context()
        if ctx is not None and "trace" not in task:
            # Carry the hub's TraceContext across the process boundary
            # inside the task dict itself (the protocol's only channel).
            task = {**task, "trace": ctx.as_dict()}
        blob = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        digest = _task_digest(blob)
        deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        attempts = 0
        last_crash: tuple[int, int | None, int | None, list[str]] | None = None
        while attempts <= self.retry_budget:
            if self.broken:
                break
            seq = self._next_seq()
            send = blob
            if seq in self.chaos_kill_requests:
                send = pickle.dumps(
                    {**task, "chaos": "sigkill"},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            try:
                timeout = None
                if deadline_at is not None:
                    timeout = deadline_at - time.monotonic()
                    if timeout <= 0:
                        raise queue.Empty
                worker = self._idle.get(timeout=timeout)
            except queue.Empty:
                self._count("deadline_kills")
                raise DeadlineExceededError(
                    f"request {digest[:12]}", deadline_s or 0.0,
                    "no worker became idle in time",
                ) from None
            attempts += 1
            hub_rec = spans.current_recorder()
            dispatched_at = hub_rec.now() if hub_rec is not None else 0.0
            try:
                kind, payload = worker.call(send, deadline_at)
            except _WorkerDied as died:
                last_crash = (worker.index, worker.pid, died.exitcode, worker.argv)
                self._count("crashes")
                spans.instant(f"service/worker-crash#{worker.index}")
                logger.warning(
                    "compile worker %d (pid %s) died with exit status %s "
                    "serving request %s (attempt %d/%d)",
                    worker.index, worker.pid, died.exitcode,
                    digest[:12], attempts, self.retry_budget + 1,
                )
                worker.kill()
                self._respawn(worker.index)
                if attempts <= self.retry_budget:
                    self._count("retries")
                continue
            except TimeoutError:
                # Straggler: cancel it hard so the slot comes back clean.
                self._count("deadline_kills")
                spans.instant(f"service/deadline-kill#{worker.index}")
                logger.warning(
                    "compile worker %d (pid %s) missed the %.3gs deadline on "
                    "request %s; killing and respawning",
                    worker.index, worker.pid, deadline_s, digest[:12],
                )
                worker.kill()
                self._respawn(worker.index)
                raise DeadlineExceededError(
                    f"request {digest[:12]}", deadline_s or 0.0,
                    f"worker {worker.index} killed and respawned",
                ) from None
            self._idle.put(worker)
            if kind == "err":
                raise pickle.loads(payload)
            result = pickle.loads(payload)
            if isinstance(result, dict) and "__obs__" in result:
                rec = spans.current_recorder()
                if rec is not None:
                    # Re-anchor the worker's spans at this dispatch's
                    # point on the hub clock; the worker-side offsets
                    # within the task are preserved relative to it.
                    rec.graft(
                        result["__obs__"].get("spans", ()),
                        at=dispatched_at,
                        prefix=f"worker{worker.index}/",
                    )
                return result["value"]
            return result
        index, pid, exitcode, argv = last_crash or (
            -1, None, None, [sys.executable, *sys.argv],
        )
        raise WorkerCrashedError(
            worker=index,
            pid=pid,
            exitcode=exitcode,
            argv=argv,
            request_digest=digest,
            attempts=attempts,
            respawns=self.stats()["respawns"],
        )

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Stop every idle worker (idempotent).  Busy workers finish
        their in-flight request first — callers drain before closing."""
        if self._closed:
            return
        self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            worker.stop()
        with self._lock:
            self._live = 0

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
