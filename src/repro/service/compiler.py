"""The compile service: requests in, content-addressed results out.

:class:`CompileService` is the hub behind :class:`repro.api.Session`.
A request names a source (in any registered guest surface), an optional
forced strategy, and — when the caller wants Algorithm 1's answer — the
machine context ``(nprocs, env)``.  The service lowers, canonicalizes,
and serves from the :class:`~repro.service.cache.PlanCache` at two
granularities:

* the **plan key** (canonical IR + strategy) addresses the codegen
  artifact — recognized pattern and emitted SPMD source;
* the **solve key** (plan key + machine parameters + ``N`` + env)
  addresses the alignment/DP tables and Algorithm 1's chosen chain.

Because keys are computed from the *canonicalized* IR, a cached plan
compiled from one program serves every alpha-twin of it.  The cached
artifact still speaks the first writer's names, so each hit carries a
``rename`` map (requester name → stored name, composed from the two
canonical rename maps); :class:`CompileResult` translates env and input
keys through it transparently.

``compile_batch`` additionally threads one ``segment_memo`` dict through
every solve in the batch, sharing per-segment alignment/pricing entries
across *different* programs whose segments coincide (see
:func:`repro.dp.phases.build_phase_tables`).

The job-queue runner (``submit``/``start``/``close``) services requests
from worker threads; every request — queued or direct — is wrapped in a
``service/request`` span on the compiler Perfetto lane.

With ``workers > 0`` the expensive phases (codegen, the Algorithm 1
solve) additionally run on a **supervised process pool**
(:class:`repro.service.supervisor.WorkerSupervisor`): a worker crash is
detected, respawned with capped backoff and the request retried; when
the pool exhausts its budget the service *degrades* to in-process
compilation (logged and counted in ``service_stats["fallbacks"]``,
never silently wrong).  ``queue_limit`` bounds the admission queue
(:class:`~repro.errors.ServiceOverloadedError` sheds excess load) and
``deadline_s`` — per request or service-wide — cancels stragglers with
:class:`~repro.errors.DeadlineExceededError` instead of orphaning them.
See docs/API.md §"Operating the service".
"""

from __future__ import annotations

import contextvars
import logging
import queue
import threading
import time
from dataclasses import dataclass, field, replace

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
    WorkerCrashedError,
)
from repro.lang.ast import Program
from repro.machine.model import MachineModel
from repro.obs.context import current_context, mint_context, tracing_context
from repro.service.cache import _MISS, CacheStats, PlanCache, make_cache
from repro.service.guests import lower
from repro.service.normalize import canonicalize, program_digest, solve_digest
from repro.service.plan import Plan, SolveOutcome, compile_plan
from repro.util import spans
from repro.util.spans import span

logger = logging.getLogger("repro.service")

#: Internal sentinel: the pool crashed out and the caller should run
#: the task in-process (graceful degradation).
_FALLBACK = object()


@dataclass(frozen=True)
class CompileRequest:
    """One immutable unit of work for the service.

    ``source`` is whatever the named *guest* accepts (DSL text, a
    :class:`Program`, a decorated function, a JSON document).  With
    *nprocs* and *env* the request also asks for Algorithm 1's
    distribution (``wants_solve``); *execute* additionally validates the
    chosen redistributions on the simulator.  ``deadline_s`` bounds the
    request's time on the process-pool tier (straggling workers are
    killed, not orphaned); it overrides the service-wide default.
    """

    source: object
    guest: str = "dsl"
    strategy: str | None = None
    nprocs: int | None = None
    env: dict[str, int] | None = None
    execute: bool = False
    label: str | None = None
    deadline_s: float | None = None

    @property
    def wants_solve(self) -> bool:
        return self.nprocs is not None and self.env is not None


@dataclass(frozen=True)
class CompileResult:
    """A served request: the plan plus its cache provenance.

    ``plan`` is the *stored* artifact — when the request hit a cache
    entry written by an alpha-twin, the plan speaks the twin's names and
    ``rename`` maps the requester's names onto them.  The delegating
    surface (:meth:`run`, :meth:`solve`, :meth:`explain`) translates env
    and input keys through ``rename``, so callers never see the twin.
    """

    request: CompileRequest
    digest: str
    plan: Plan
    rename: dict[str, str]
    cached: bool
    outcome: SolveOutcome | None = None
    solve_key: str | None = None
    solve_cached: bool = False
    wall_seconds: float = 0.0
    #: Integer service counters snapshotted at serve time — cache
    #: counters (``cache_hits``, ``cache_misses``, ``cache_evictions``,
    #: ``cache_disk_hits``, ``cache_puts``, ``cache_corrupt``,
    #: ``cache_disk_faults``) plus, when a process pool is active, the
    #: supervisor's fault counters (``pool_dispatched``,
    #: ``pool_crashes``, ``pool_respawns``, ``pool_retries``,
    #: ``pool_deadline_kills``) and ``fallbacks`` (requests that
    #: degraded to in-process compilation).  Stamped into
    #: ``RunResult.metrics.service`` by :meth:`run`.
    service_stats: dict = field(default_factory=dict)
    #: The :class:`~repro.obs.context.TraceContext` the service minted
    #: (or adopted) for this request.  :meth:`run` reinstalls it around
    #: plan execution so the engine stamps the same ``run_id`` into
    #: ``RunResult.metrics.obs`` — one id from compile to rank lanes
    #: (docs/OBSERVABILITY.md).
    trace_context: object | None = None

    # -- convenience passthroughs ---------------------------------------
    @property
    def program(self) -> Program:
        return self.plan.program

    @property
    def generated(self):
        return self.plan.generated

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    @property
    def source(self) -> str:
        return self.plan.source

    def translate(self, mapping: dict | None) -> dict | None:
        """Rewrite requester-side keys (env entries, input arrays) into
        the stored plan's names; unknown keys pass through untouched."""
        if mapping is None:
            return None
        return {self.rename.get(k, k): v for k, v in mapping.items()}

    # -- delegating surface ---------------------------------------------
    def run(
        self,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        *,
        model: MachineModel | None = None,
        inputs: dict | None = None,
        seed: int = 0,
        backend: str = "engine",
        trace: bool = False,
    ):
        """Execute the plan; *nprocs*/*env* default to the request's."""
        nprocs = self.request.nprocs if nprocs is None else nprocs
        env = self.request.env if env is None else env
        if nprocs is None or env is None:
            raise ReproError("run() needs nprocs and env (none on the request)")
        with tracing_context(self.trace_context):
            result = self.plan.run(
                nprocs,
                self.translate(env),
                model=model,
                inputs=self.translate(inputs),
                seed=seed,
                backend=backend,
                trace=trace,
            )
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            metrics.service.update(
                {
                    "cache_hit": int(self.cached),
                    "solve_cache_hit": int(self.solve_cached),
                    **{k: int(v) for k, v in self.service_stats.items()},
                }
            )
        return result

    def solve(
        self,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        *,
        model: MachineModel | None = None,
        execute: bool = False,
        backends: tuple[str, ...] = ("engine", "threaded"),
    ) -> SolveOutcome:
        """Algorithm 1's answer; returns the request-time outcome when
        the arguments match what the service already solved."""
        nprocs = self.request.nprocs if nprocs is None else nprocs
        env = self.request.env if env is None else env
        if nprocs is None or env is None:
            raise ReproError("solve() needs nprocs and env (none on the request)")
        if (
            self.outcome is not None
            and model is None
            and nprocs == self.request.nprocs
            and env == self.request.env
            and execute == self.request.execute
        ):
            return self.outcome
        return self.plan.solve(
            nprocs, self.translate(env), model=model,
            execute=execute, backends=backends,
        )

    def explain(
        self,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        *,
        model: MachineModel | None = None,
    ):
        nprocs = self.request.nprocs if nprocs is None else nprocs
        env = self.request.env if env is None else env
        return self.plan.explain(
            nprocs, self.translate(env) if env is not None else None, model=model
        )


class CompileJob:
    """Handle for a queued request; ``wait()`` blocks for the result.

    A job is *pending* until a worker claims it, then *running*, then
    *done* (result or error).  A pending job can be :meth:`cancel`\\led
    — workers skip cancelled jobs, so a timed-out ``wait`` leaves
    nothing orphaned in the queue.
    """

    def __init__(self, request: CompileRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = "pending"
        self._result: CompileResult | None = None
        self._error: BaseException | None = None

    def _claim(self) -> bool:
        """Worker-side: move pending -> running; False if cancelled."""
        with self._lock:
            if self._state != "pending":
                return False
            self._state = "running"
            return True

    def _finish(self, result: CompileResult | None, error: BaseException | None) -> None:
        with self._lock:
            self._state = "done"
        self._result = result
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._state == "cancelled"

    def cancel(self) -> bool:
        """Cancel the job if no worker has claimed it yet.

        Returns True when the job was still pending (it will never run;
        waiters get a :class:`DeadlineExceededError`).  A running or
        finished job returns False — the thread tier cannot preempt.
        """
        with self._lock:
            if self._state != "pending":
                return False
            self._state = "cancelled"
        self._error = DeadlineExceededError(
            f"compile job {self.request.label or self.request.guest!r}",
            self.request.deadline_s or 0.0,
            "cancelled before a worker claimed it",
        )
        self._event.set()
        return True

    def wait(self, timeout: float | None = None) -> CompileResult:
        """Block for the result; on timeout the job is cancelled if
        still pending (cleanly — never orphaned in the queue)."""
        if not self._event.wait(timeout):
            cancelled = self.cancel()
            detail = (
                "cancelled before a worker claimed it"
                if cancelled
                else "already running; its result will be discarded"
            )
            raise DeadlineExceededError(
                f"compile job {self.request.label or self.request.guest!r}",
                timeout if timeout is not None else 0.0,
                detail,
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class CompileService:
    """Cache-backed compiler hub (see module docstring).

    *cache* is a mode string (``"off"``/``"memory"``/``"disk"``) or an
    already-built :class:`PlanCache` to share between services.

    *workers* > 0 adds the supervised process-pool tier (codegen and
    solves run in subprocesses; crashes are retried and respawned);
    *queue_limit* bounds the ``submit`` admission queue; *deadline_s*
    is the service-wide per-request deadline (overridable per request);
    *degrade* controls whether pool failure falls back to in-process
    compilation (the default) or surfaces
    :class:`~repro.errors.WorkerCrashedError`.  The ``worker_*`` knobs
    and *chaos_kill_requests* pass through to
    :class:`~repro.service.supervisor.WorkerSupervisor`.
    """

    machine: MachineModel = field(default_factory=MachineModel)
    cache: PlanCache | str | None = "memory"
    cache_capacity: int = 256
    cache_dir: object = None
    workers: int = 0
    queue_limit: int | None = None
    deadline_s: float | None = None
    degrade: bool = True
    worker_retry_budget: int = 2
    worker_max_respawns: int = 3
    worker_backoff_s: float = 0.05
    chaos_kill_requests: tuple = ()

    def __post_init__(self) -> None:
        if isinstance(self.cache, str):
            self.cache = make_cache(
                self.cache, capacity=self.cache_capacity, disk_dir=self.cache_dir
            )
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._pool_lock = threading.Lock()
        self._supervisor = None
        self._fallbacks = 0
        self._pending = 0

    # -- the process-pool tier -------------------------------------------
    def _pool(self):
        """The lazily-spawned :class:`WorkerSupervisor` (None when
        ``workers=0`` or the service is closed)."""
        if not self.workers or self._closed:
            return None
        with self._pool_lock:
            if self._supervisor is None:
                from repro.service.supervisor import WorkerSupervisor

                self._supervisor = WorkerSupervisor(
                    self.workers,
                    self.machine,
                    retry_budget=self.worker_retry_budget,
                    max_respawns=self.worker_max_respawns,
                    backoff_s=self.worker_backoff_s,
                    chaos_kill_requests=self.chaos_kill_requests,
                )
            return self._supervisor

    def _pool_call(self, pool, task: dict, deadline_s: float | None):
        """One supervised dispatch; crashes degrade to :data:`_FALLBACK`
        (unless ``degrade=False``), deadline misses always propagate."""
        try:
            return pool.call(task, deadline_s=deadline_s)
        except WorkerCrashedError as exc:
            if not self.degrade:
                raise
            with self._lock:
                self._fallbacks += 1
            spans.instant("service/fallback")
            logger.warning(
                "process pool unavailable (%s); compiling in-process", exc
            )
            return _FALLBACK

    def _compile_generated(self, program, strategy, deadline_s):
        """Codegen on the pool tier, in-process otherwise (or on fallback)."""
        pool = self._pool()
        if pool is not None:
            result = self._pool_call(
                pool,
                {"kind": "compile", "program": program, "strategy": strategy},
                deadline_s,
            )
            if result is not _FALLBACK:
                return result["generated"]
        return compile_plan(program, strategy=strategy).generated

    def _solve_plan(self, plan, req, env_stored, segment_memo, deadline_s):
        """Algorithm 1 on the pool tier (segment memos stay per-worker
        there), in-process otherwise (or on fallback)."""
        pool = self._pool()
        if pool is not None:
            result = self._pool_call(
                pool,
                {
                    "kind": "solve",
                    "program": plan.program,
                    "generated": plan.generated,
                    "nprocs": req.nprocs,
                    "env": env_stored,
                    "execute": req.execute,
                },
                deadline_s,
            )
            if result is not _FALLBACK:
                return result
        return plan.solve(
            req.nprocs, env_stored, model=self.machine,
            execute=req.execute, segment_memo=segment_memo,
        )

    # -- cache plumbing --------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Counters of the backing cache (all-zero when ``cache="off"``)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def _cache_lookup(self, cache: PlanCache | None, key: str) -> object:
        if cache is None:
            return _MISS
        with self._lock:
            return cache.lookup(key)

    def _cache_put(self, cache: PlanCache | None, key: str, value: object) -> None:
        if cache is None:
            return
        with self._lock:
            cache.put(key, value)

    # -- the request path ------------------------------------------------
    @staticmethod
    def request(source: object, **kwargs) -> CompileRequest:
        """Coerce *source* (or pass a :class:`CompileRequest` through)."""
        if isinstance(source, CompileRequest):
            return replace(source, **kwargs) if kwargs else source
        return CompileRequest(source=source, **kwargs)

    def compile(
        self,
        source: object,
        *,
        guest: str = "dsl",
        strategy: str | None = None,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        execute: bool = False,
        label: str | None = None,
        deadline_s: float | None = None,
    ) -> CompileResult:
        """Serve one request (coalescing keyword args into one if
        *source* is not already a :class:`CompileRequest`)."""
        if isinstance(source, CompileRequest):
            req = source
        else:
            req = CompileRequest(
                source=source, guest=guest, strategy=strategy,
                nprocs=nprocs, env=env, execute=execute, label=label,
                deadline_s=deadline_s,
            )
        return self._serve(req, self.cache, None)

    def compile_batch(
        self,
        sources,
        *,
        guest: str = "dsl",
        strategy: str | None = None,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        execute: bool = False,
    ) -> list[CompileResult]:
        """Serve many requests, sharing sub-results across the batch.

        All solves share one segment memo (identical segments of
        *different* programs are aligned and priced once), and with
        ``cache="off"`` an ephemeral batch-local cache still coalesces
        duplicate programs within the batch.
        """
        requests = [
            s if isinstance(s, CompileRequest) else CompileRequest(
                source=s, guest=guest, strategy=strategy,
                nprocs=nprocs, env=env, execute=execute,
            )
            for s in sources
        ]
        cache = self.cache
        if cache is None and len(requests) > 1:
            cache = PlanCache(capacity=max(len(requests) * 2, 8))
        segment_memo: dict = {}
        with span("service/batch"):
            return [self._serve(req, cache, segment_memo) for req in requests]

    def _remaining(self, deadline_at: float | None, req: CompileRequest) -> float | None:
        """Seconds left on the request's deadline (None = unbounded);
        raises once the budget is already spent."""
        if deadline_at is None:
            return None
        left = deadline_at - time.monotonic()
        if left <= 0:
            raise DeadlineExceededError(
                f"compile request {req.label or req.guest!r}",
                req.deadline_s if req.deadline_s is not None else (self.deadline_s or 0.0),
                "deadline expired between service stages",
            )
        return left

    def _serve(
        self,
        req: CompileRequest,
        cache: PlanCache | None,
        segment_memo: dict | None,
    ) -> CompileResult:
        t0 = time.perf_counter()
        deadline_s = req.deadline_s if req.deadline_s is not None else self.deadline_s
        deadline_at = None if deadline_s is None else time.monotonic() + deadline_s
        with span("service/request"):
            program = lower(req.source, req.guest)
            form = canonicalize(program)
            plan_key = program_digest(program, req.strategy, form=form)

            # Mint (or adopt the caller's) trace context keyed by the
            # request digest: everything below — cache traffic, pool
            # dispatches, the eventual plan.run — correlates to one id
            # (docs/OBSERVABILITY.md).
            ctx = current_context()
            if ctx is None:
                ctx = mint_context(request_digest=plan_key)
            elif not ctx.request_digest:
                ctx = replace(ctx, request_digest=plan_key)

            with tracing_context(ctx):
                entry = self._cache_lookup(cache, plan_key)
                if entry is _MISS:
                    generated = self._compile_generated(
                        program, req.strategy, self._remaining(deadline_at, req)
                    )
                    plan = Plan(program=program, generated=generated)
                    rename = {name: name for name in form.rename}
                    self._cache_put(
                        cache, plan_key,
                        {"program": program, "generated": plan.generated,
                         "rename": dict(form.rename)},
                    )
                    cached = False
                else:
                    plan = Plan(program=entry["program"], generated=entry["generated"])
                    # requester orig -> canon -> stored orig
                    from_canon = {c: o for o, c in entry["rename"].items()}
                    rename = {
                        orig: from_canon[canon]
                        for orig, canon in form.rename.items()
                        if canon in from_canon
                    }
                    cached = True

                outcome: SolveOutcome | None = None
                solve_key: str | None = None
                solve_cached = False
                if req.wants_solve:
                    solve_key = solve_digest(
                        program, req.nprocs, req.env, self.machine,
                        req.strategy, execute=req.execute, form=form,
                    )
                    hit = self._cache_lookup(cache, solve_key)
                    if hit is _MISS:
                        env_stored = {rename.get(k, k): v for k, v in req.env.items()}
                        outcome = self._solve_plan(
                            plan, req, env_stored, segment_memo,
                            self._remaining(deadline_at, req),
                        )
                        self._cache_put(cache, solve_key, outcome)
                    else:
                        outcome = hit
                        solve_cached = True

        stats = cache.stats if cache is not None else None
        service_stats: dict = (
            {f"cache_{k}": v for k, v in stats.as_dict().items() if k != "hit_rate"}
            if stats is not None
            else {}
        )
        with self._pool_lock:
            supervisor = self._supervisor
        if supervisor is not None:
            service_stats.update(
                {f"pool_{k}": v for k, v in supervisor.stats().items()}
            )
        if self.workers:
            service_stats["fallbacks"] = self._fallbacks
        return CompileResult(
            request=req,
            digest=plan_key,
            plan=plan,
            rename=rename,
            cached=cached,
            outcome=outcome,
            solve_key=solve_key,
            solve_cached=solve_cached,
            wall_seconds=time.perf_counter() - t0,
            service_stats=service_stats,
            trace_context=ctx,
        )

    # -- job queue -------------------------------------------------------
    def submit(self, source: object, **kwargs) -> CompileJob:
        """Enqueue a request for the worker pool; returns its handle.

        Call :meth:`start` (or enter the service as a context manager)
        to spin up workers; jobs submitted earlier are picked up then.
        """
        if self._closed:
            raise ReproError("service is closed")
        job = CompileJob(self.request(source, **kwargs))
        with self._lock:
            if self.queue_limit is not None and self._pending >= self.queue_limit:
                raise ServiceOverloadedError(self._pending, self.queue_limit)
            self._pending += 1
        self._queue.put(job)
        return job

    def start(self, workers: int = 1) -> "CompileService":
        """Start *workers* daemon threads draining the job queue."""
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        for n in range(workers):
            # Give each worker a copy of the caller's context so spans
            # recorded inside jobs land on the caller's recorder.
            ctx = contextvars.copy_context()
            thread = threading.Thread(
                target=ctx.run,
                args=(self._worker_loop,),
                name=f"compile-service-{len(self._workers) + n}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        return self

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                if not job._claim():  # cancelled while queued
                    continue
                try:
                    job._finish(self._serve(job.request, self.cache, None), None)
                except BaseException as exc:  # delivered via job.wait()
                    job._finish(None, exc)
            finally:
                with self._lock:
                    self._pending -= 1
                self._queue.task_done()

    def close(self) -> None:
        """Stop the workers (and the process pool) after the queue
        drains (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join()
        self._workers.clear()
        with self._pool_lock:
            supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.close()

    def __enter__(self) -> "CompileService":
        if not self._workers:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
