"""Canonical form + content addressing for the loop-nest IR.

Two programs that the compiler cannot tell apart must hash identically;
two programs the compiler could treat differently must not.  The
canonicalization pass realizes the first half:

* **alpha-renaming** — arrays, parameters, scalars and loop indices are
  renamed to positional names (``a0``, ``p0``, ``w0``, ``i0``) in order
  of first use during a pre-order walk of the body, so the digest is
  independent of user spelling;
* **declaration order** — declarations are serialized sorted by their
  canonical names, so permuting ``PARAM``/``ARRAY`` lines does not
  change the digest;
* **commutative sorting** — chains of ``+`` and ``*`` are flattened and
  their operands sorted by canonical serialization, so ``a + b`` and
  ``b + a`` coincide (``-`` and ``/`` keep their order);
* **whitespace/comments** — already erased by parsing: the digest is
  computed from the IR, never the source text.

The machine parameters that the alignment/DP results depend on
(``tf``/``tc``/``alpha``/``hop_cost``/``overlap``, the processor count
``P`` and the parameter environment) are folded into the *solve* digest;
the *program* digest covers codegen only (which depends on the program
and the forced strategy alone).

Every digest is prefixed by :data:`IR_SCHEMA`; bumping it invalidates
all previously persisted cache entries at once (see docs/API.md,
"cache semantics").

Known limit: commutative operands are ordered by a *name-blind* key
before first-use naming, so swaps like ``A(i,j)*X(j)`` vs
``X(j)*A(i,j)`` coincide even when both symbols are first used inside
the swapped chain.  When two operands are blind-identical (same shape,
both unseen — e.g. ``V(i) + W(i)``), ties resolve in syntactic order,
and an exotic twin that also swaps the rest of the uses may still hash
apart.  Splits never hash together wrongly, which is the side
correctness needs: a digest collision would serve the wrong plan, a
digest split merely misses the cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)
from repro.machine.model import MachineModel

#: Version tag folded into every digest.  Bump on any change to the
#: canonical serialization, the Plan pickle layout or the compiler
#: semantics: all persisted cache entries become unreachable (a schema
#: bump is the invalidation story — stale entries are never *read*).
IR_SCHEMA = "repro-ir/1"

_ROLE_PREFIX = {"array": "a", "param": "p", "scalar": "w", "loop": "i"}


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical serialization of a program plus its rename map.

    ``rename`` maps every *declared* name (arrays, params, scalars) of
    the original program to its canonical name — the bridge that lets a
    cached plan compiled from one alpha-twin serve another (env and
    input keys are translated through the composition of two of these
    maps, see :meth:`repro.service.compiler.CompileResult.translate`).
    """

    text: str
    rename: dict[str, str]

    def digest(self, *extra: str) -> str:
        h = hashlib.sha256()
        h.update(IR_SCHEMA.encode())
        h.update(self.text.encode())
        for part in extra:
            h.update(b"\x00")
            h.update(part.encode())
        return h.hexdigest()


class _Namer:
    """First-use positional renaming, one counter per role."""

    def __init__(self, program: Program) -> None:
        self.role: dict[str, str] = {}
        for name in program.arrays:
            self.role[name] = "array"
        for name in program.params:
            self.role[name] = "param"
        for name in program.scalars:
            self.role[name] = "scalar"
        self.assigned: dict[str, str] = {}
        self.counters: dict[str, int] = {p: 0 for p in _ROLE_PREFIX}

    def canon(self, name: str, role: str | None = None) -> str:
        got = self.assigned.get(name)
        if got is not None:
            return got
        role = role or self.role.get(name, "scalar")
        prefix = _ROLE_PREFIX[role]
        idx = self.counters[role]
        self.counters[role] = idx + 1
        fresh = f"{prefix}{idx}"
        self.assigned[name] = fresh
        return fresh


def _affine(aff: Affine, namer: _Namer) -> str:
    # Name unseen variables in a deterministic order (coefficient, then
    # original spelling — the documented tie-break) before sorting the
    # serialized terms by canonical name.
    for var, _coeff in sorted(aff.coeffs.items(), key=lambda kv: (kv[1], kv[0])):
        namer.canon(var)
    terms = sorted((namer.canon(v), c) for v, c in aff.coeffs.items())
    inner = " ".join(f"({v} {c})" for v, c in terms)
    return f"(aff {aff.const}{' ' + inner if inner else ''})"


_COMMUTATIVE = {"+", "*"}


def _blind_affine(aff: Affine, namer: _Namer) -> str:
    """Affine serialization with unassigned names erased to role marks."""
    terms = sorted(
        (namer.assigned.get(v) or _ROLE_PREFIX[namer.role.get(v, "scalar")] + "?", c)
        for v, c in aff.coeffs.items()
    )
    inner = " ".join(f"({v} {c})" for v, c in terms)
    return f"(aff {aff.const}{' ' + inner if inner else ''})"


def _blind(expr: Expr, namer: _Namer) -> str:
    """Name-blind serialization: already-canonicalized names appear (they
    are rename-invariant), not-yet-named symbols collapse to their role
    mark.  Used to order commutative operands *before* first-use naming
    touches them, so ``a + b`` and ``b + a`` name their operands in the
    same order even when both are first used inside the swapped chain."""
    if isinstance(expr, Num):
        return f"(num {expr.value!r})"
    if isinstance(expr, ScalarRef):
        got = namer.assigned.get(expr.name)
        return got or _ROLE_PREFIX[namer.role.get(expr.name, "scalar")] + "?"
    if isinstance(expr, ArrayRef):
        name = namer.assigned.get(expr.name) or "a?"
        subs = " ".join(_blind_affine(s, namer) for s in expr.subscripts)
        return f"(ref {name} {subs})"
    if isinstance(expr, UnaryOp):
        return f"(u{expr.op} {_blind(expr.operand, namer)})"
    if isinstance(expr, Call):
        args = " ".join(_blind(a, namer) for a in expr.args)
        return f"(call {expr.name} {args})"
    if isinstance(expr, BinOp):
        if expr.op in _COMMUTATIVE:
            keys = sorted(_blind(e, namer) for e in _flatten(expr, expr.op))
            return f"({expr.op} {' '.join(keys)})"
        return f"({expr.op} {_blind(expr.left, namer)} {_blind(expr.right, namer)})"
    raise TypeError(f"unknown expression node {expr!r}")


def _expr(expr: Expr, namer: _Namer) -> str:
    if isinstance(expr, Num):
        return f"(num {expr.value!r})"
    if isinstance(expr, ScalarRef):
        return namer.canon(expr.name)
    if isinstance(expr, ArrayRef):
        subs = " ".join(_affine(s, namer) for s in expr.subscripts)
        return f"(ref {namer.canon(expr.name, 'array')} {subs})"
    if isinstance(expr, UnaryOp):
        return f"(u{expr.op} {_expr(expr.operand, namer)})"
    if isinstance(expr, Call):
        args = " ".join(_expr(a, namer) for a in expr.args)
        return f"(call {expr.name} {args})"
    if isinstance(expr, BinOp):
        if expr.op in _COMMUTATIVE:
            # Blind keys first (computed before any naming below mutates
            # the namer), then name + serialize in blind order; ties
            # keep syntactic order (sorted() is stable).
            operands = sorted(
                _flatten(expr, expr.op), key=lambda e: _blind(e, namer)
            )
            texts = [_expr(e, namer) for e in operands]
            return f"({expr.op} {' '.join(sorted(texts))})"
        return f"({expr.op} {_expr(expr.left, namer)} {_expr(expr.right, namer)})"
    raise TypeError(f"unknown expression node {expr!r}")


def _flatten(expr: Expr, op: str) -> list[Expr]:
    if isinstance(expr, BinOp) and expr.op == op:
        return _flatten(expr.left, op) + _flatten(expr.right, op)
    return [expr]


def _stmt(stmt: Stmt, namer: _Namer) -> str:
    if isinstance(stmt, Assign):
        return f"(= {_expr(stmt.lhs, namer)} {_expr(stmt.rhs, namer)})"
    if isinstance(stmt, DoLoop):
        var = namer.canon(stmt.var, "loop")
        lb = _affine(stmt.lb, namer)
        ub = _affine(stmt.ub, namer)
        body = " ".join(_stmt(s, namer) for s in stmt.body)
        return f"(do {var} {lb} {ub} {stmt.step} ({body}))"
    raise TypeError(f"unknown statement node {stmt!r}")


def canonicalize(program: Program) -> CanonicalForm:
    """Serialize *program* into its canonical text (see module doc)."""
    namer = _Namer(program)
    body = " ".join(_stmt(s, namer) for s in program.body)

    # Declarations after the body: names are now fixed by use order, so
    # permuting declaration lines cannot perturb them.  Arrays never
    # referenced in the body are named here, ordered structurally.
    unused = sorted(
        (name for name in program.arrays if name not in namer.assigned),
        key=lambda n: (program.arrays[n].rank, n),
    )
    for name in unused:
        namer.canon(name, "array")
    arrays = []
    for name in sorted(program.arrays, key=lambda n: namer.canon(n, "array")):
        extents = " ".join(_affine(e, namer) for e in program.arrays[name].extents)
        arrays.append(f"({namer.canon(name, 'array')} {extents})")
    params = sorted(namer.canon(p, "param") for p in program.params)
    scalars = sorted(namer.canon(s, "scalar") for s in program.scalars)
    directives = sorted(
        f"({namer.canon(name, 'array')} {' '.join(spec)})"
        for name, spec in program.directives.items()
    )
    alignments = sorted(
        f"(({namer.canon(sa, 'array')} {sd}) ({namer.canon(ta, 'array')} {td}))"
        for (sa, sd), (ta, td) in program.alignments
    )

    text = (
        f"(program (params {' '.join(params)})"
        f" (scalars {' '.join(scalars)})"
        f" (arrays {' '.join(arrays)})"
        f" (distribute {' '.join(directives)})"
        f" (align {' '.join(alignments)})"
        f" (body {body}))"
    )
    rename = {
        name: canon
        for name, canon in namer.assigned.items()
        if namer.role.get(name) in ("array", "param", "scalar")
    }
    # Declared-but-unused params/scalars still need stable entries so
    # env translation on a cache hit never drops a key.
    for name in program.params:
        if name not in rename:
            rename[name] = namer.canon(name, "param")
    for name in program.scalars:
        if name not in rename:
            rename[name] = namer.canon(name, "scalar")
    if any(name not in rename for name in program.arrays):  # pragma: no cover
        raise AssertionError("canonicalize left an array unnamed")
    return CanonicalForm(text=text, rename=rename)


def _machine_part(model: MachineModel) -> str:
    return (
        f"(machine {model.tf!r} {model.tc!r} {model.alpha!r} "
        f"{model.hop_cost!r} {int(model.overlap)})"
    )


def _strategy_part(strategy: str | None) -> str:
    return f"(strategy {strategy or '-'})"


def program_digest(
    program: Program,
    strategy: str | None = None,
    *,
    form: CanonicalForm | None = None,
) -> str:
    """Content address of the codegen problem: canonical IR + strategy.

    Pass *form* to reuse an already-computed :func:`canonicalize` result.
    """
    form = form or canonicalize(program)
    return form.digest(_strategy_part(strategy))


def solve_digest(
    program: Program,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel,
    strategy: str | None = None,
    *,
    execute: bool = False,
    form: CanonicalForm | None = None,
) -> str:
    """Content address of the full compile: IR, strategy, machine, P, env.

    Environment keys are translated to canonical names, so alpha-twins
    solved under equivalent environments share the DP entry.  *execute*
    is folded in because an executed solve carries the extra validation
    payload.
    """
    form = form or canonicalize(program)
    items = sorted((form.rename.get(k, k), v) for k, v in env.items())
    env_part = " ".join(f"({k} {v!r})" for k, v in items)
    return form.digest(
        _strategy_part(strategy),
        _machine_part(model),
        f"(nprocs {nprocs})",
        f"(env {env_part})",
        f"(execute {int(execute)})",
    )
