"""Dynamic programming for data distribution (paper §4, Algorithm 1)."""

from repro.dp.algorithm1 import DPResult, algorithm1, brute_force_min_cost
from repro.dp.phases import PhaseTables, build_phase_tables, solve_program_distribution

__all__ = [
    "algorithm1",
    "brute_force_min_cost",
    "DPResult",
    "PhaseTables",
    "build_phase_tables",
    "solve_program_distribution",
]
