"""Dynamic programming for data distribution (paper §4, Algorithm 1)."""

from repro.dp.algorithm1 import DPResult, algorithm1, brute_force_min_cost
from repro.dp.phases import PhaseTables, build_phase_tables, solve_program_distribution
from repro.dp.validate import (
    ArrayCheck,
    RedistValidation,
    TransitionReport,
    execute_plan,
    validate_transitions,
)

__all__ = [
    "algorithm1",
    "brute_force_min_cost",
    "ArrayCheck",
    "DPResult",
    "PhaseTables",
    "RedistValidation",
    "TransitionReport",
    "build_phase_tables",
    "execute_plan",
    "solve_program_distribution",
    "validate_transitions",
]
