"""Algorithm 1 — minimum-cost order of data distribution schemes.

Given ``s`` Do-loops ``L1 .. Ls`` in sequence, ``M[i][j]`` the cost of
computing the segment ``L_i .. L_{i+j-1}`` under its (alignment-derived)
scheme ``P[i][j]``, a redistribution oracle ``cost(P, P')`` and a
loop-carried oracle, compute::

    T[i][j] = min_{1 <= k <= i-1} ( T[i-k][k] + M[i][j] + cost(P[i-k][k], P[i][j]) )
    T[1][j] = M[1][j]
    Minimum_Cost = min_{1 <= k <= s} ( T[s-k+1][k] + loop_carried(T[s-k+1][k]) )

The paper's statement has a subtle gap: the loop-carried term couples the
*last* scheme of a sequence with the *first*, but ``T`` as written does
not remember which first segment a chain started with, so applying
``loop_carried`` after the fact can miss the optimum (a chain with
slightly larger ``T`` but a cheaper iteration boundary).  We therefore
index the table by the first segment as well —
``T[first][(i, j)]`` — which restores exact optimality at negligible cost
(the first segment is always ``(1, j0)``, so there are only ``s`` choices).
A brute-force enumerator over all ``2^(s-1)`` segmentations is provided
and tested against the DP.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import CostModelError

Scheme = Hashable  # opaque to the DP
CostFn = Callable[[Any, Any], float]


@dataclass(frozen=True)
class DPResult:
    """Outcome of Algorithm 1.

    ``segments`` is the chosen partition as (start, length) pairs,
    1-based, in execution order; ``schemes`` the corresponding ``P``
    entries; ``cost`` the minimum total including the loop-carried term
    (``loop_carried`` reported separately for Fig 3-style breakdowns).
    """

    cost: float
    segments: tuple[tuple[int, int], ...]
    schemes: tuple[Any, ...]
    segment_costs: tuple[float, ...]
    change_costs: tuple[float, ...]
    loop_carried: float

    def describe(self) -> str:
        parts = []
        for (start, length), m, scheme in zip(self.segments, self.segment_costs, self.schemes):
            rng = f"L{start}" if length == 1 else f"L{start}..L{start + length - 1}"
            parts.append(f"{rng}: M={m:g}")
        changes = " + ".join(f"{c:g}" for c in self.change_costs) or "0"
        return (
            f"segments [{'; '.join(parts)}], layout changes {changes}, "
            f"loop-carried {self.loop_carried:g}, total {self.cost:g}"
        )


def algorithm1(
    s: int,
    M: Callable[[int, int], float],
    P: Callable[[int, int], Any],
    change_cost: CostFn,
    loop_carried_cost: CostFn,
) -> DPResult:
    """Run Algorithm 1.

    Parameters
    ----------
    s:
        Number of loops in the sequence.
    M, P:
        Oracles over 1-based ``(i, j)`` with ``1 <= i <= s`` and
        ``1 <= j <= s - i + 1``: segment cost and segment scheme.
    change_cost:
        ``cost(P_prev, P_next)`` — communication to change layouts.
    loop_carried_cost:
        ``loop_carried(P_first, P_last)`` — communication at the iteration
        boundary of the enclosing loop when the sequence starts with
        ``P_first`` and ends with ``P_last``.
    """
    if s < 1:
        raise CostModelError(f"need at least one loop, got {s}")

    Key = tuple[int, int]
    m_cache: dict[Key, float] = {}
    p_cache: dict[Key, Any] = {}

    def get_m(i: int, j: int) -> float:
        key = (i, j)
        if key not in m_cache:
            m_cache[key] = float(M(i, j))
        return m_cache[key]

    def get_p(i: int, j: int) -> Any:
        key = (i, j)
        if key not in p_cache:
            p_cache[key] = P(i, j)
        return p_cache[key]

    # T[first][(i, j)] = best cost of computing L1..L_{i+j-1} starting with
    # segment `first` and ending with segment (i, j).
    T: dict[Key, dict[Key, float]] = {}
    parent: dict[Key, dict[Key, Key | None]] = {}
    for j0 in range(1, s + 1):
        first = (1, j0)
        T[first] = {first: get_m(1, j0)}
        parent[first] = {first: None}
        for i in range(j0 + 1, s + 1):
            for j in range(1, s - i + 2):
                best = float("inf")
                best_prev: Key | None = None
                for k in range(1, i):
                    prev = (i - k, k)
                    if prev not in T[first]:
                        continue
                    cand = (
                        T[first][prev]
                        + get_m(i, j)
                        + change_cost(get_p(i - k, k), get_p(i, j))
                    )
                    if cand < best:
                        best = cand
                        best_prev = prev
                if best_prev is not None:
                    T[first][(i, j)] = best
                    parent[first][(i, j)] = best_prev

    best_total = float("inf")
    best_first: Key | None = None
    best_final: Key | None = None
    best_lc = 0.0
    for j0 in range(1, s + 1):
        first = (1, j0)
        for k in range(1, s + 1):
            final = (s - k + 1, k)
            if final not in T[first]:
                continue
            lc = float(loop_carried_cost(get_p(*first), get_p(*final)))
            total = T[first][final] + lc
            if total < best_total:
                best_total = total
                best_first = first
                best_final = final
                best_lc = lc
    assert best_first is not None and best_final is not None

    # Traceback.
    chain: list[Key] = []
    cursor: Key | None = best_final
    while cursor is not None:
        chain.append(cursor)
        cursor = parent[best_first][cursor]
    chain.reverse()

    segment_costs = tuple(get_m(i, j) for (i, j) in chain)
    schemes = tuple(get_p(i, j) for (i, j) in chain)
    change_costs = tuple(
        change_cost(get_p(*chain[idx]), get_p(*chain[idx + 1]))
        for idx in range(len(chain) - 1)
    )
    return DPResult(
        cost=best_total,
        segments=tuple(chain),
        schemes=schemes,
        segment_costs=segment_costs,
        change_costs=change_costs,
        loop_carried=best_lc,
    )


def brute_force_min_cost(
    s: int,
    M: Callable[[int, int], float],
    P: Callable[[int, int], Any],
    change_cost: CostFn,
    loop_carried_cost: CostFn,
) -> tuple[float, tuple[tuple[int, int], ...]]:
    """Enumerate all 2^(s-1) segmentations (testing oracle for the DP)."""
    if s < 1:
        raise CostModelError(f"need at least one loop, got {s}")
    best = (float("inf"), ())

    def compositions(total: int) -> list[list[int]]:
        if total == 0:
            return [[]]
        out = []
        for first in range(1, total + 1):
            for rest in compositions(total - first):
                out.append([first] + rest)
        return out

    for lengths in compositions(s):
        segments: list[tuple[int, int]] = []
        start = 1
        for length in lengths:
            segments.append((start, length))
            start += length
        total = 0.0
        for idx, (i, j) in enumerate(segments):
            total += M(i, j)
            if idx > 0:
                pi, pj = segments[idx - 1]
                total += change_cost(P(pi, pj), P(i, j))
        first_i, first_j = segments[0]
        last_i, last_j = segments[-1]
        total += loop_carried_cost(P(first_i, first_j), P(last_i, last_j))
        if total < best[0]:
            best = (total, tuple(segments))
    return best
