"""Build Algorithm 1's tables from a program (the compiler front half).

For every segment ``L_i .. L_{i+j-1}`` of the loop sequence:

1. build the segment's component affinity graph and align it (§3);
2. materialize the alignment into a scheme, replicating read-only arrays
   along their unused grid dimensions (so e.g. ``X`` is readable anywhere
   during Jacobi's L1);
3. price the segment under every candidate grid shape ``N1 x N2 = N``
   with the rule-based loop-cost estimator, keeping the best.

``M[i][j]`` is that best cost, ``P[i][j]`` the (scheme, grid) pair.  The
redistribution oracle prices layout changes between consecutive segments;
the loop-carried oracle prices the iteration boundary of the enclosing
iterative loop: every live loop-carried array must travel from its
placement in the *last* scheme to its placement in the *first* scheme
**with replication along unused grid dimensions** (its readers there span
them).  On Jacobi this reproduces the paper exactly:
``CTime1 = 0`` and ``CTime2 = ManyToManyMulticast(m/N1, N1) +
OneToManyMulticast(m, N2) = m tc`` at grid ``(N, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alignment.graph import CAG, build_cag
from repro.alignment.solver import (
    Alignment,
    alignment_to_scheme,
    exact_alignment,
    greedy_alignment,
)
from repro.costmodel.gridsearch import grid_candidates
from repro.costmodel.loopcost import estimate_loop_cost
from repro.costmodel.primitives import CommCosts
from repro.dependence.analysis import live_loop_carried_arrays
from repro.distribution.redistribution import (
    RedistPlan,
    placement_change_plan,
    redistribution_cost,
)
from repro.distribution.schemes import ArrayPlacement, Scheme
from repro.dp.algorithm1 import DPResult, algorithm1
from repro.errors import AlignmentError, CostModelError
from repro.lang.analysis import collect_ref_sites
from repro.lang.ast import DoLoop, Program, Stmt
from repro.machine.model import MachineModel
from repro.util.spans import span


@dataclass(frozen=True)
class PhaseEntry:
    """One (i, j) table entry: segment scheme, grid shape and cost."""

    scheme: Scheme
    grid: tuple[int, int]
    cost: float
    alignment: Alignment
    cag: CAG


@dataclass
class PhaseTables:
    """All Algorithm 1 inputs derived from a program."""

    program: Program
    loops: list[DoLoop]
    nprocs: int
    env: dict[str, int]
    model: MachineModel
    entries: dict[tuple[int, int], PhaseEntry] = field(default_factory=dict)
    outer: DoLoop | None = None

    @property
    def s(self) -> int:
        return len(self.loops)

    def entry(self, i: int, j: int) -> PhaseEntry:
        key = (i, j)
        if key not in self.entries:
            raise CostModelError(f"no phase entry for segment ({i}, {j})")
        return self.entries[key]

    def M(self, i: int, j: int) -> float:
        return self.entry(i, j).cost

    def P(self, i: int, j: int) -> tuple[Scheme, tuple[int, int]]:
        e = self.entry(i, j)
        return (e.scheme, e.grid)

    # -- oracles ---------------------------------------------------------
    def array_sizes(self) -> dict[str, int]:
        sizes = {}
        for name, decl in self.program.arrays.items():
            total = 1
            for extent in decl.extents:
                total *= extent.evaluate(self.env)
            sizes[name] = total
        return sizes

    def change_plan(self, p_prev, p_next) -> RedistPlan:
        """The redistribution plan between two adjacent chosen segments.

        Adjacent segments legitimately reference different array sets
        (an array may be dead in one of them), so the comparison is
        explicitly scoped to the intersection — the bare oracle would
        reject source-only arrays as silently-vanishing.
        """
        scheme_prev, _grid_prev = p_prev
        scheme_next, grid_next = p_next
        costs = CommCosts(self.model)
        shared = tuple(a for a in scheme_prev.arrays() if a in scheme_next.arrays())
        return redistribution_cost(
            scheme_prev, scheme_next, self.array_sizes(), grid_next, costs,
            arrays=shared,
        )

    def change_cost(self, p_prev, p_next) -> float:
        return self.change_plan(p_prev, p_next).total

    def loop_carried_plans(self, p_first, p_last) -> list[RedistPlan]:
        """Per-array plans for the iteration boundary of the outer loop."""
        if self.outer is None:
            return []
        scheme_first, grid_first = p_first
        scheme_last, _ = p_last
        carried = live_loop_carried_arrays(self.outer)
        costs = CommCosts(self.model)
        sizes = self.array_sizes()
        plans: list[RedistPlan] = []
        for array in sorted(carried):
            if array not in scheme_first.arrays() or array not in scheme_last.arrays():
                continue
            src = scheme_last.placement(array)
            dst = scheme_first.placement(array)
            dst = ArrayPlacement(
                array=dst.array, dim_map=dst.dim_map, kinds=dst.kinds, rest="replicated"
            )
            plans.append(
                placement_change_plan(src, dst, sizes[array], grid_first, costs)
            )
        return plans

    def loop_carried_cost(self, p_first, p_last) -> float:
        return sum(p.total for p in self.loop_carried_plans(p_first, p_last))

    def transition_plans(self, result: DPResult) -> list[tuple[str, RedistPlan]]:
        """Every redistribution along the DP's chosen chain, labeled.

        One plan per adjacent segment boundary, then one per loop-carried
        array at the iteration boundary (labels ``loop[X]``).
        """
        def seg_label(start: int, length: int) -> str:
            return f"L{start}" if length == 1 else f"L{start}..L{start + length - 1}"

        out: list[tuple[str, RedistPlan]] = []
        with span("redist/plan"):
            chain = result.schemes
            bounds = result.segments
            for k in range(len(chain) - 1):
                label = f"{seg_label(*bounds[k])} -> {seg_label(*bounds[k + 1])}"
                out.append((label, self.change_plan(chain[k], chain[k + 1])))
            if chain:
                for plan in self.loop_carried_plans(chain[0], chain[-1]):
                    out.append((f"loop[{plan.src.array}]", plan))
        return out

    def solve(self) -> DPResult:
        with span("dp/solve"):
            return algorithm1(
                self.s, self.M, self.P, self.change_cost, self.loop_carried_cost
            )


def _segment_scheme(
    stmts: list[Stmt],
    program: Program,
    env: dict[str, int],
    model: MachineModel,
    nprocs: int,
    name: str,
) -> tuple[Scheme, Alignment, CAG]:
    cag = build_cag(stmts, program, env, model, nprocs)
    try:
        alignment = exact_alignment(cag, q=2)
    except AlignmentError:
        alignment = greedy_alignment(cag, q=2)
    written = {
        s.array for s in collect_ref_sites(stmts) if s.is_write
    }
    read_only = frozenset(set(cag.arrays) - written)
    scheme = alignment_to_scheme(
        alignment, cag, replicated_reads=read_only, name=name
    )
    return scheme, alignment, cag


def build_phase_tables(
    program: Program,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel,
    outer: DoLoop | None = None,
    loops: list[DoLoop] | None = None,
    segment_memo: dict | None = None,
) -> PhaseTables:
    """Construct all (i, j) entries for Algorithm 1.

    By default the loop sequence is the body of the program's first
    top-level loop (the iterative ``k`` loop of Jacobi/SOR); pass *loops*
    to override, and *outer* for the loop whose carried dependences price
    the iteration boundary.

    *segment_memo* is a caller-owned dict shared across programs of one
    ``compile_batch``: (i, j) entries are reused between programs whose
    segments print identically under the same ``(N, env, machine)``.
    Keys embed array *names* (a :class:`Scheme` does too), so only
    textually identical segments share — alpha-twins are handled one
    level up by the whole-plan cache.
    """
    if loops is None:
        if outer is None:
            top = program.loops()
            if len(top) == 1:
                outer = top[0]
                loops = [s for s in outer.body if isinstance(s, DoLoop)]
            else:
                loops = top
        else:
            loops = [s for s in outer.body if isinstance(s, DoLoop)]
    if not loops:
        raise CostModelError("no loops to distribute")

    with span("dp/tables"):
        return _build_entries(
            program, nprocs, env, model, outer, loops, segment_memo
        )


def _print_deep(stmt: Stmt) -> str:
    # DoLoop.__str__ prints only the header; segment identity needs the
    # whole subtree.
    if isinstance(stmt, DoLoop):
        body = "; ".join(_print_deep(s) for s in stmt.body)
        return f"{stmt} [{body}]"
    return str(stmt)


def _segment_key(
    stmts: list[Stmt],
    nprocs: int,
    env: dict[str, int],
    model: MachineModel,
) -> tuple:
    return (
        tuple(_print_deep(s) for s in stmts),
        nprocs,
        tuple(sorted(env.items())),
        (model.tf, model.tc, model.alpha, model.hop_cost, model.overlap),
    )


def _build_entries(
    program: Program,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel,
    outer: DoLoop | None,
    loops: list[DoLoop],
    segment_memo: dict | None = None,
) -> PhaseTables:
    tables = PhaseTables(
        program=program,
        loops=list(loops),
        nprocs=nprocs,
        env=dict(env),
        model=model,
        outer=outer,
    )
    s = len(loops)
    for i in range(1, s + 1):
        for j in range(1, s - i + 2):
            stmts: list[Stmt] = list(loops[i - 1 : i - 1 + j])
            memo_key = None
            if segment_memo is not None:
                memo_key = _segment_key(stmts, nprocs, env, model)
                hit = segment_memo.get(memo_key)
                if hit is not None:
                    tables.entries[(i, j)] = hit
                    continue
            with span("alignment/segment"):
                scheme, alignment, cag = _segment_scheme(
                    stmts, program, env, model, nprocs, name=f"P[{i},{j}]"
                )
            best_cost = float("inf")
            best_grid = (nprocs, 1)
            for grid in grid_candidates(nprocs):
                total = 0.0
                for loop in stmts:
                    if isinstance(loop, DoLoop):
                        total += estimate_loop_cost(
                            loop, scheme, grid, env, model
                        ).total
                if total < best_cost:
                    best_cost = total
                    best_grid = grid
            entry = PhaseEntry(
                scheme=scheme,
                grid=best_grid,
                cost=best_cost,
                alignment=alignment,
                cag=cag,
            )
            tables.entries[(i, j)] = entry
            if memo_key is not None:
                segment_memo[memo_key] = entry
    return tables


def solve_program_distribution(
    program: Program,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel,
    execute: bool = False,
    backends: tuple[str, ...] = ("engine", "threaded"),
    segment_memo: dict | None = None,
):
    """End-to-end §4 pipeline: tables + Algorithm 1 solution.

    With ``execute=True`` the chosen chain's redistributions are also
    lowered and run on the simulator (:mod:`repro.dp.validate`) and a
    third element — the :class:`~repro.dp.validate.RedistValidation` —
    is returned, so Algorithm 1's analytic cost model is checked against
    measured message traffic, not just trusted.
    """
    tables = build_phase_tables(program, nprocs, env, model, segment_memo=segment_memo)
    result = tables.solve()
    if not execute:
        return tables, result
    from repro.dp.validate import validate_transitions

    with span("redist/execute"):
        validation = validate_transitions(tables, result, backends=backends)
    return tables, result, validation
