"""Execute Algorithm 1's chosen redistribution chain and reconcile costs.

The DP picks its scheme sequence by summing *analytic* redistribution
costs; this module closes the loop (ISSUE 2): every transition of the
chosen chain is lowered to a generated SPMD program
(:mod:`repro.codegen.redist`), executed on the simulator — on both the
deterministic :class:`~repro.machine.engine.Engine` and the
:class:`~repro.machine.threaded.ThreadedEngine` — and checked two ways:

* **element-level correctness** — after the run, every rank holds exactly
  the destination placement's local section of every moved array;
* **word-count calibration** — the traffic measured by the metrics
  registry must sit inside the documented slack band around the analytic
  :attr:`~repro.distribution.redistribution.RedistPlan.analytic_words`
  (``docs/REDISTRIBUTION.md``): for exact literal lowerings,
  ``lower * analytic <= measured <= upper * analytic``; generic-exchange
  fallbacks are correctness-checked only.

Simulated *time* is deliberately compared loosely (ratio recorded, never
gated): the machine model charges ``tc`` per word at both endpoints, so
measured makespans sit near twice the one-sided Table 1 forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

from repro.codegen.redist import RedistMove, emit_redistribution_program
from repro.codegen.spmd import load_generated
from repro.distribution.redistribution import RedistPlan
from repro.distribution.runtime import lower_placement_delta
from repro.distribution.schemes import ArrayPlacement, Scheme
from repro.distribution.sections import pack_section
from repro.dp.algorithm1 import DPResult
from repro.dp.phases import PhaseTables
from repro.errors import DistributionError
from repro.machine.engine import run_spmd
from repro.machine.threaded import run_spmd_threaded
from repro.machine.topology import Grid2D

from repro.costmodel.bands import REDIST_WORDS

#: Documented word-count slack band for exact literal lowerings; the
#: canonical definition lives in the central registry
#: (:data:`repro.costmodel.bands.REDIST_WORDS`) — these aliases keep the
#: historical names importable.
WORD_SLACK_LOWER = REDIST_WORDS.lower
WORD_SLACK_UPPER = REDIST_WORDS.upper

_BACKENDS = {
    "engine": run_spmd,
    "threaded": run_spmd_threaded,
}


@dataclass(frozen=True)
class ArrayCheck:
    """Reconciliation of one array's move within a transition."""

    array: str
    exact: bool
    kinds: tuple[str, ...]
    analytic_words: float
    measured_words: dict[str, int]  # backend -> words
    sections_ok: dict[str, bool]  # backend -> exactness of final sections

    def words_ok(self, lower: float, upper: float) -> bool:
        if not self.exact:
            return True  # fallback lowerings are correctness-checked only
        for measured in self.measured_words.values():
            if self.analytic_words == 0:
                if measured != 0:
                    return False
            elif not (
                lower * self.analytic_words <= measured <= upper * self.analytic_words
            ):
                return False
        return True

    def ok(self, lower: float = WORD_SLACK_LOWER, upper: float = WORD_SLACK_UPPER) -> bool:
        return all(self.sections_ok.values()) and self.words_ok(lower, upper)


@dataclass(frozen=True)
class TransitionReport:
    """One executed transition of the chosen chain."""

    label: str
    grid: tuple[int, int]
    plan: RedistPlan
    checks: tuple[ArrayCheck, ...]
    makespan: dict[str, float]  # backend -> simulated finish time

    @property
    def analytic_words(self) -> float:
        return self.plan.analytic_words

    def measured_words(self, backend: str) -> int:
        return sum(c.measured_words.get(backend, 0) for c in self.checks)

    @property
    def exact(self) -> bool:
        return all(c.exact for c in self.checks)

    def ok(self, lower: float = WORD_SLACK_LOWER, upper: float = WORD_SLACK_UPPER) -> bool:
        return all(c.ok(lower, upper) for c in self.checks)


@dataclass(frozen=True)
class RedistValidation:
    """All transitions of one DP solution, executed and reconciled."""

    transitions: tuple[TransitionReport, ...]
    backends: tuple[str, ...]
    lower: float = WORD_SLACK_LOWER
    upper: float = WORD_SLACK_UPPER

    @property
    def ok(self) -> bool:
        return all(t.ok(self.lower, self.upper) for t in self.transitions)

    def describe(self) -> str:
        lines = []
        for t in self.transitions:
            state = "ok" if t.ok(self.lower, self.upper) else "FAIL"
            measured = ", ".join(
                f"{b}={t.measured_words(b)}" for b in self.backends
            )
            lines.append(
                f"{t.label} @ {t.grid[0]}x{t.grid[1]}: analytic {t.analytic_words:g} "
                f"words, measured {measured} "
                f"[{'literal' if t.exact else 'fallback'}] {state}"
            )
            if not t.plan.terms:
                lines.append("  (free: no data movement)")
            for term in t.plan.terms:
                lines.append(f"  {term.describe()}")
        return "\n".join(lines)


def _array_extents(tables: PhaseTables) -> dict[str, tuple[int, ...]]:
    out = {}
    for name, decl in tables.program.arrays.items():
        out[name] = tuple(int(e.evaluate(tables.env)) for e in decl.extents)
    return out


def _plan_moves(
    plan: RedistPlan, extents: dict[str, tuple[int, ...]]
) -> list[RedistMove]:
    """The per-array moves a plan implies (arrays whose placement changed)."""
    if isinstance(plan.src, Scheme) and isinstance(plan.dst, Scheme):
        shared = [a for a in plan.src.arrays() if a in plan.dst.arrays()]
        pairs = [
            (plan.src.placement(a), plan.dst.placement(a))
            for a in shared
        ]
    elif isinstance(plan.src, ArrayPlacement) and isinstance(plan.dst, ArrayPlacement):
        pairs = [(plan.src, plan.dst)]
    else:  # pragma: no cover - planner only builds the two shapes above
        raise DistributionError(f"cannot execute plan between {plan.src!r} and {plan.dst!r}")
    moves = []
    for sp, dp in pairs:
        if sp == dp:
            continue
        if sp.array not in extents:
            raise DistributionError(f"no extents known for array {sp.array!r}")
        moves.append(RedistMove(sp.array, sp, dp, extents[sp.array]))
    return moves


def execute_plan(
    plan: RedistPlan,
    extents: dict[str, tuple[int, ...]],
    label: str,
    backends: tuple[str, ...] = ("engine", "threaded"),
    model=None,
    data: dict[str, np.ndarray] | None = None,
) -> TransitionReport:
    """Run one redistribution plan on the listed backends and reconcile it."""
    for b in backends:
        if b not in _BACKENDS:
            raise DistributionError(
                f"unknown backend {b!r}; expected one of {sorted(_BACKENDS)}"
            )
    moves = _plan_moves(plan, extents)
    grid = tuple(plan.grid)
    if not moves:
        return TransitionReport(
            label=label, grid=grid, plan=plan, checks=(), makespan={b: 0.0 for b in backends}
        )
    if data is None:
        data = {}
        for mv in moves:
            total = prod(mv.extents)
            data[mv.array] = np.arange(1, total + 1, dtype=np.float64)

    gen = emit_redistribution_program(moves, grid, name=label)
    fn = load_generated(gen)
    per_array_words: dict[str, dict[str, int]] = {mv.array: {} for mv in moves}
    sections_ok: dict[str, dict[str, bool]] = {mv.array: {} for mv in moves}
    makespan: dict[str, float] = {}
    for backend in backends:
        res = _BACKENDS[backend](fn, Grid2D(*grid), model, args=(data,))
        makespan[backend] = max(res.finish_times)
        for mv in moves:
            stats = res.metrics.scope_totals(mv.scope())
            per_array_words[mv.array][backend] = stats.words
            ok = True
            for rank in range(grid[0] * grid[1]):
                want = pack_section(data[mv.array], mv.dst, mv.extents, grid, rank)
                got = res.values[rank][mv.array]
                if not np.array_equal(want, np.asarray(got)):
                    ok = False
                    break
            sections_ok[mv.array][backend] = ok

    checks = []
    for mv in moves:
        lowering = lower_placement_delta(mv.src, mv.dst, mv.extents, grid)
        analytic = sum(
            t.volume for t in plan.terms if t.array == mv.array
        )
        checks.append(
            ArrayCheck(
                array=mv.array,
                exact=lowering.exact,
                kinds=tuple(sorted(lowering.kinds)),
                analytic_words=analytic,
                measured_words=per_array_words[mv.array],
                sections_ok=sections_ok[mv.array],
            )
        )
    return TransitionReport(
        label=label, grid=grid, plan=plan, checks=tuple(checks), makespan=makespan
    )


def validate_transitions(
    tables: PhaseTables,
    result: DPResult,
    backends: tuple[str, ...] = ("engine", "threaded"),
    lower: float = WORD_SLACK_LOWER,
    upper: float = WORD_SLACK_UPPER,
) -> RedistValidation:
    """Execute every transition of the DP's chosen chain (the ``execute=True``
    mode of :func:`repro.dp.phases.solve_program_distribution`)."""
    extents = _array_extents(tables)
    reports = []
    for label, plan in tables.transition_plans(result):
        reports.append(
            execute_plan(plan, extents, label, backends=backends, model=tables.model)
        )
    return RedistValidation(
        transitions=tuple(reports), backends=tuple(backends), lower=lower, upper=upper
    )
