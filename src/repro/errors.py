"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-hierarchies mirror
the subsystems described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LanguageError(ReproError):
    """Base class for errors in the Do-loop DSL front end."""


class LexError(LanguageError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, line: int = -1, column: int = -1) -> None:
        loc = f" (line {line}, column {column})" if line >= 0 else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class AffineError(LanguageError):
    """Raised when an expression is required to be affine but is not."""


class MachineError(ReproError):
    """Base class for errors in the machine simulator."""


class TopologyError(MachineError):
    """Raised for invalid topology configurations or rank arithmetic."""


class DeadlockError(MachineError):
    """Raised when the engine detects that no processor can make progress.

    Carries the set of blocked ranks and what each was waiting for so that
    tests and users can diagnose communication mismatches.  When the
    engine could reconstruct the full picture, ``report`` holds a
    :class:`repro.machine.forensics.DeadlockReport` with the per-rank
    wait-for graph, blocked channels and the last trace events per rank
    (``report.py --deadlock`` renders it).
    """

    def __init__(self, blocked: dict[int, str], report=None) -> None:
        detail = ", ".join(f"P{r}: {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"deadlock: all live processors blocked ({detail})")
        self.blocked = dict(blocked)
        self.report = report


class CommunicationError(MachineError):
    """Raised for invalid point-to-point or collective usage."""


class FaultError(MachineError):
    """Base class for errors produced by the fault-injection layer."""


class RankCrashedError(FaultError):
    """Raised when an injected crash kills a rank mid-run.

    The resilient supervisor (:func:`repro.machine.resilient.run_resilient`)
    catches this, disables the fired crash and restarts the program from
    its last consistent checkpoint.
    """

    def __init__(self, rank: int, at_time: float) -> None:
        super().__init__(f"P{rank} crashed at simulated time {at_time:g}")
        self.rank = rank
        self.at_time = at_time


class PeerCrashedError(FaultError):
    """Raised when a nonblocking request waits on a crashed rank.

    Unlike a deadlock, this carries the :class:`CrashFault
    <repro.machine.faults.CrashFault>` that killed the peer, so the
    waiter knows *why* no message will ever come.  The resilient
    supervisor treats it, like :class:`RankCrashedError`, as a crash
    symptom and restarts the run.
    """

    def __init__(self, rank: int, crash) -> None:
        super().__init__(
            f"P{rank} waits on P{crash.rank}, which crashed at simulated "
            f"time {crash.at_time:g}"
        )
        self.rank = rank
        self.crash = crash


class RetryExhaustedError(FaultError):
    """Raised when a reliable transfer gives up after its last retry."""

    def __init__(self, source: int, dest: int, tag: int, attempts: int) -> None:
        super().__init__(
            f"reliable send P{source}->P{dest} (tag {tag}) unacknowledged "
            f"after {attempts} attempts"
        )
        self.source = source
        self.dest = dest
        self.tag = tag
        self.attempts = attempts


class ServiceError(ReproError):
    """Base class for errors raised by the compile-service layer."""


class WorkerCrashedError(ServiceError):
    """Raised when a supervised compile worker dies and the retry budget
    is exhausted.

    Carries the forensic tail the supervisor collected: the worker's
    spawn ``argv``, the content digest of the last in-flight request,
    the process exit status (negative = killed by that signal), and how
    many attempts/respawns were burned before giving up.  With
    ``degrade=True`` (the default) :class:`repro.service.CompileService`
    catches this and falls back to in-process compilation — the error
    only surfaces when degradation is disabled or the pool is driven
    directly.
    """

    def __init__(
        self,
        worker: int,
        pid: int | None,
        exitcode: int | None,
        argv: list[str],
        request_digest: str,
        attempts: int,
        respawns: int,
    ) -> None:
        status = "unknown" if exitcode is None else str(exitcode)
        super().__init__(
            f"compile worker {worker} (pid {pid}) died with exit status "
            f"{status} serving request {request_digest[:12]} "
            f"({attempts} attempt(s), {respawns} respawn(s)); argv: {argv}"
        )
        self.worker = worker
        self.pid = pid
        self.exitcode = exitcode
        self.argv = list(argv)
        self.request_digest = request_digest
        self.attempts = attempts
        self.respawns = respawns


class ServiceOverloadedError(ServiceError):
    """Raised when the bounded admission queue sheds a new request.

    The service refuses work instead of queueing without bound; callers
    should back off and resubmit.  ``depth`` is the number of admitted,
    unfinished jobs at rejection time and ``limit`` the configured bound.
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"service overloaded: {depth} queued jobs >= admission limit "
            f"{limit}; retry later or raise queue_limit"
        )
        self.depth = depth
        self.limit = limit


class DeadlineExceededError(ServiceError):
    """Raised when a compile request misses its deadline.

    On the process-pool tier the straggling worker is killed and
    respawned (the request is *cancelled*, not orphaned); on
    :meth:`repro.service.compiler.CompileJob.wait` a still-pending job
    is cancelled so no worker ever picks it up.
    """

    def __init__(self, what: str, deadline_s: float, detail: str = "") -> None:
        tail = f" ({detail})" if detail else ""
        super().__init__(f"{what} exceeded deadline of {deadline_s:g}s{tail}")
        self.deadline_s = deadline_s


class DistributionError(ReproError):
    """Raised for invalid distribution-function configurations."""


class AlignmentError(ReproError):
    """Raised when component alignment fails or constraints are violated."""


class DependenceError(ReproError):
    """Raised when dependence analysis is asked an unsupported question."""


class CodegenError(ReproError):
    """Raised when SPMD code generation cannot lower a program."""


class CostModelError(ReproError):
    """Raised for invalid cost-model queries."""
