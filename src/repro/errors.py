"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-hierarchies mirror
the subsystems described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LanguageError(ReproError):
    """Base class for errors in the Do-loop DSL front end."""


class LexError(LanguageError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, line: int = -1, column: int = -1) -> None:
        loc = f" (line {line}, column {column})" if line >= 0 else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class AffineError(LanguageError):
    """Raised when an expression is required to be affine but is not."""


class MachineError(ReproError):
    """Base class for errors in the machine simulator."""


class TopologyError(MachineError):
    """Raised for invalid topology configurations or rank arithmetic."""


class DeadlockError(MachineError):
    """Raised when the engine detects that no processor can make progress.

    Carries the set of blocked ranks and what each was waiting for so that
    tests and users can diagnose communication mismatches.  When the
    engine could reconstruct the full picture, ``report`` holds a
    :class:`repro.machine.forensics.DeadlockReport` with the per-rank
    wait-for graph, blocked channels and the last trace events per rank
    (``report.py --deadlock`` renders it).
    """

    def __init__(self, blocked: dict[int, str], report=None) -> None:
        detail = ", ".join(f"P{r}: {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"deadlock: all live processors blocked ({detail})")
        self.blocked = dict(blocked)
        self.report = report


class CommunicationError(MachineError):
    """Raised for invalid point-to-point or collective usage."""


class FaultError(MachineError):
    """Base class for errors produced by the fault-injection layer."""


class RankCrashedError(FaultError):
    """Raised when an injected crash kills a rank mid-run.

    The resilient supervisor (:func:`repro.machine.resilient.run_resilient`)
    catches this, disables the fired crash and restarts the program from
    its last consistent checkpoint.
    """

    def __init__(self, rank: int, at_time: float) -> None:
        super().__init__(f"P{rank} crashed at simulated time {at_time:g}")
        self.rank = rank
        self.at_time = at_time


class PeerCrashedError(FaultError):
    """Raised when a nonblocking request waits on a crashed rank.

    Unlike a deadlock, this carries the :class:`CrashFault
    <repro.machine.faults.CrashFault>` that killed the peer, so the
    waiter knows *why* no message will ever come.  The resilient
    supervisor treats it, like :class:`RankCrashedError`, as a crash
    symptom and restarts the run.
    """

    def __init__(self, rank: int, crash) -> None:
        super().__init__(
            f"P{rank} waits on P{crash.rank}, which crashed at simulated "
            f"time {crash.at_time:g}"
        )
        self.rank = rank
        self.crash = crash


class RetryExhaustedError(FaultError):
    """Raised when a reliable transfer gives up after its last retry."""

    def __init__(self, source: int, dest: int, tag: int, attempts: int) -> None:
        super().__init__(
            f"reliable send P{source}->P{dest} (tag {tag}) unacknowledged "
            f"after {attempts} attempts"
        )
        self.source = source
        self.dest = dest
        self.tag = tag
        self.attempts = attempts


class DistributionError(ReproError):
    """Raised for invalid distribution-function configurations."""


class AlignmentError(ReproError):
    """Raised when component alignment fails or constraints are violated."""


class DependenceError(ReproError):
    """Raised when dependence analysis is asked an unsupported question."""


class CodegenError(ReproError):
    """Raised when SPMD code generation cannot lower a program."""


class CostModelError(ReproError):
    """Raised for invalid cost-model queries."""
