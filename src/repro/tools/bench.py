"""Unified benchmark runner: flight recorder, drift oracle, gate.

Usage::

    python -m repro.tools.bench [--only PAT] [--baseline PATH] [--check]
    python -m repro.tools.bench --update-baseline
    python -m repro.tools.bench --records PATH --check   # re-gate old run

Discovers every ``benchmarks/bench_*.py``, runs them under pytest with
the ``record`` fixture collecting one :class:`~repro.tools.benchlib.
BenchResult` per kernel, and emits a single schema-versioned
``BENCH_<git-sha>.json`` with per-kernel makespans, message/word
totals, analytic predictions and measured/analytic ratios, plus a
wall-clock profile of the compiler itself (alignment, DP,
redistribution planning, codegen spans).

Three enforcement layers, each failing loudly and by name:

* **coverage** — every selected benchmark file must produce at least
  one record; a silently skipped benchmark is an error;
* **model-drift oracle** — every record carrying a registered slack
  band (:mod:`repro.costmodel.bands`) must land inside it;
* **regression gate** (``--check``) — makespans and message/word
  counts must not exceed the committed ``benchmarks/baseline.json``
  by more than ``--tolerance`` (default 5%); re-bless a deliberate
  change with ``--update-baseline``.

``--only`` takes ``|``-separated fnmatch globs against benchmark ids
(the file stem minus ``bench_``), e.g. ``--only 'fig*|table1*'``.
``--records`` skips the pytest run and re-checks an existing records
file — handy for CI forensics and for testing the gate itself.
``--bench-dir`` points the runner at an alternative benchmark tree
(defaults to the repo's ``benchmarks/``); ``--baseline`` and ``--out``
default relative to it.

Run as a module (``python -m repro.tools.bench``) with ``src/`` on
``PYTHONPATH`` — the runner itself re-exports that path to the pytest
subprocess it spawns.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import pathlib
import subprocess
import sys
import tempfile

from repro.tools import benchlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
BENCH_DIR = REPO_ROOT / "benchmarks"
SRC_DIR = REPO_ROOT / "src"

#: Single fast round per benchmark: the numbers of record are simulated
#: makespans (deterministic), not wall-clock, so repetition buys nothing.
PYTEST_ARGS = [
    "-q",
    "-p",
    "no:cacheprovider",
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0",
    "--benchmark-warmup=off",
]


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip() or "nogit"
    except (OSError, subprocess.CalledProcessError):
        return "nogit"


def bench_id(path: pathlib.Path) -> str:
    stem = path.stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def discover(only: str | None, bench_dir: pathlib.Path = BENCH_DIR) -> list[pathlib.Path]:
    files = sorted(bench_dir.glob("bench_*.py"))
    if only is None:
        return files
    patterns = [p for p in only.split("|") if p]
    return [f for f in files if any(fnmatch.fnmatch(bench_id(f), p) for p in patterns)]


def run_benchmarks(files: list[pathlib.Path], records_path: pathlib.Path) -> int:
    env = dict(os.environ)
    env["REPRO_BENCH_RECORDS"] = str(records_path)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "pytest", *PYTEST_ARGS, *[str(f) for f in files]]
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


def check_coverage(
    files: list[pathlib.Path], results: list[benchlib.BenchResult]
) -> list[str]:
    produced = {r.bench for r in results}
    return [
        f"{f.name}: produced no BenchResult records"
        for f in files
        if bench_id(f) not in produced
    ]


def profile_compiler() -> tuple[dict, list]:
    """Wall-clock span profile of the compiler on the paper programs.

    Returns ``(profile dict, spans)`` where *spans* (the full Jacobi
    pipeline) feed the Chrome-trace compiler lane.
    """
    from repro.alignment import build_cag, exact_alignment
    from repro.codegen import generate_spmd
    from repro.dp import solve_program_distribution
    from repro.lang import gauss_program, jacobi_program, sor_program
    from repro.machine.model import MachineModel
    from repro.util.spans import recording

    model = MachineModel(tf=1.0, tc=10.0)
    profile: dict = {}

    with recording() as rec:
        solve_program_distribution(
            jacobi_program(), 16, {"m": 256, "maxiter": 1}, model, execute=True
        )
    profile["jacobi-dp"] = {
        "wall_seconds": rec.wall_seconds,
        "phase_totals": rec.totals(),
        "spans": rec.as_dicts(),
    }
    trace_spans = rec.sorted_spans()

    for name, maker, fragment_of in (
        ("sor", sor_program, lambda p: p.loops()[0].body),
        ("gauss", gauss_program, lambda p: p.body),
    ):
        with recording() as rec:
            program = maker()
            cag = build_cag(
                fragment_of(program), program, {"m": 64, "maxiter": 1}, model, nprocs=16
            )
            exact_alignment(cag, q=2)
            generate_spmd(program)
        profile[f"{name}-codegen"] = {
            "wall_seconds": rec.wall_seconds,
            "phase_totals": rec.totals(),
            "spans": rec.as_dicts(),
        }
    return profile, trace_spans


def write_compiler_trace(path: pathlib.Path, spans) -> pathlib.Path:
    """A Perfetto-loadable trace: a tiny reference run + compiler lane."""
    import numpy as np

    from repro.kernels import make_spd_system, sor_pipelined
    from repro.machine import MachineModel, Ring, run_spmd
    from repro.machine.export import write_chrome_trace

    m, n = 16, 4
    A, b, _ = make_spd_system(m, seed=2)
    res = run_spmd(
        sor_pipelined,
        Ring(n),
        MachineModel(tf=1, tc=1),
        args=(A, b, np.zeros(m), 1.0, 1),
        trace=True,
    )
    return write_chrome_trace(
        path,
        res.trace,
        process_name="bench",
        metadata={"source": "repro.tools.bench"},
        spans=spans,
    )


def summary_lines(results: list[benchlib.BenchResult]) -> list[str]:
    lines = []
    for r in sorted(results, key=lambda r: r.key):
        bits = [f"{r.key}"]
        if r.makespan is not None:
            bits.append(f"makespan={r.makespan:g}")
        if r.message_words is not None:
            bits.append(f"words={r.message_words}")
        if r.ratio is not None:
            bits.append(f"ratio={r.ratio:.3f}")
        if r.band is not None:
            bits.append(f"band={r.band}")
        lines.append("  " + " ".join(bits))
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench",
        description="Run the benchmark suite, check model drift, gate regressions.",
    )
    parser.add_argument(
        "--only", metavar="PAT",
        help="'|'-separated fnmatch globs on benchmark ids (e.g. 'fig*|table1*')",
    )
    parser.add_argument(
        "--bench-dir", type=pathlib.Path, default=BENCH_DIR,
        help="directory holding bench_*.py files (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="baseline file for --check / --update-baseline "
             "(default: <bench-dir>/baseline.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on regressions against the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-bless the baseline from this run's records",
    )
    parser.add_argument(
        "--tolerance", type=float, default=benchlib.DEFAULT_TOLERANCE,
        help="relative regression tolerance for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory for BENCH_<sha>.json (default: <bench-dir>/artifacts)",
    )
    parser.add_argument(
        "--records", type=pathlib.Path,
        help="re-check an existing records file instead of running pytest",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the compiler wall-clock profile and trace artifact",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = args.bench_dir / "baseline.json"
    if args.out is None:
        args.out = args.bench_dir / "artifacts"

    files = discover(args.only, bench_dir=args.bench_dir)
    if not files:
        what = f"--only {args.only!r}" if args.only else f"--bench-dir {args.bench_dir}"
        print(f"error: {what} matched no benchmarks", file=sys.stderr)
        return 2

    failures: list[str] = []
    if args.records is not None:
        try:
            results = benchlib.read_records(args.records)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read records {args.records}: {exc}", file=sys.stderr)
            return 2
        results = [r for r in results if r.bench in {bench_id(f) for f in files}]
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            records_path = pathlib.Path(tmp) / "records.json"
            rc = run_benchmarks(files, records_path)
            if rc != 0:
                print(f"error: pytest exited {rc}", file=sys.stderr)
                return rc
            if not records_path.exists():
                print("error: benchmark run produced no records file", file=sys.stderr)
                return 1
            results = benchlib.read_records(records_path)

    print(f"collected {len(results)} records from {len(files)} benchmarks")
    for line in summary_lines(results):
        print(line)

    failures += check_coverage(files, results)

    checked, drift = benchlib.check_drift(results)
    print(f"drift oracle: {checked} banded records checked, {len(drift)} out of band")
    failures += drift

    doc = {
        "schema": benchlib.SCHEMA,
        "git_sha": git_sha(),
        "selection": args.only or "*",
        "tolerance": args.tolerance,
        "records": [r.as_dict() for r in sorted(results, key=lambda r: r.key)],
        "drift": {"checked": checked, "failures": drift},
    }

    if not args.no_profile:
        profile, trace_spans = profile_compiler()
        doc["compiler_profile"] = profile
        for name, prof in profile.items():
            phases = ", ".join(
                f"{k}={v * 1e3:.1f}ms" for k, v in prof["phase_totals"].items()
            )
            print(f"compiler {name}: {prof['wall_seconds'] * 1e3:.1f}ms ({phases})")

    gate_failures: list[str] = []
    if args.check:
        if not args.baseline.exists():
            print(f"error: baseline {args.baseline} not found "
                  "(run --update-baseline to create it)", file=sys.stderr)
            return 2
        baseline = json.loads(args.baseline.read_text())
        gate_failures = benchlib.compare_to_baseline(
            results, baseline, tolerance=args.tolerance, require_all=args.only is None
        )
        print(f"regression gate: {len(gate_failures)} failures "
              f"(tolerance +{args.tolerance * 100:g}%)")
        failures += gate_failures
        doc["gate"] = {
            "baseline": str(args.baseline),
            "failures": gate_failures,
        }

    if args.update_baseline:
        previous = (
            json.loads(args.baseline.read_text()) if args.baseline.exists() else None
        )
        blessed = benchlib.baseline_from_results(results, previous)
        args.baseline.write_text(json.dumps(blessed, indent=2) + "\n")
        print(f"baseline re-blessed: {args.baseline} ({len(blessed['entries'])} entries)")

    args.out.mkdir(parents=True, exist_ok=True)
    doc_path = args.out / f"BENCH_{doc['git_sha']}.json"
    doc_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {doc_path}")
    if not args.no_profile:
        trace_path = args.out / f"BENCH_{doc['git_sha']}.trace.json"
        write_compiler_trace(trace_path, trace_spans)
        print(f"wrote {trace_path}")

    if failures:
        print(f"\nFAIL ({len(failures)}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
