"""Command-line utilities (artifact regeneration)."""
