"""``python -m repro.tools`` — list the command-line tools.

The package ships two executables::

    python -m repro.tools.report   # regenerate paper artifacts / smokes
    python -m repro.tools.bench    # benchmark runner + regression gate

Running the bare package prints this usage and exits 0, so discovery
never requires reading the source.
"""

from __future__ import annotations

import sys


def main() -> int:
    print(__doc__.strip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
