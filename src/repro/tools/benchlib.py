"""Shared benchmark-record protocol for the bench harness (ISSUE 5).

Every benchmark in ``benchmarks/`` reports its headline numbers as
:class:`BenchResult` records through the ``record`` fixture
(``benchmarks/conftest.py``); :mod:`repro.tools.bench` aggregates them
into one schema-versioned ``BENCH_<git-sha>.json``, asserts every
record with a named slack band against the central drift oracle
(:mod:`repro.costmodel.bands`), and gates makespan/word-count
regressions against a committed baseline.

The schema (``repro-bench/1``) is deliberately small and flat:

* ``bench`` — the benchmark id (file stem minus ``bench_``);
* ``kernel`` — the sub-case within the benchmark (one record each);
* ``makespan`` — the headline simulated time (lower is better);
* ``measured``/``analytic`` — the reconciled pair for the drift oracle
  (``measured`` defaults to ``makespan``; X8 reconciles *words*);
* ``band`` — the registered slack-band name the ratio must satisfy;
* ``message_count``/``message_words`` — traffic totals (gated);
* ``metrics`` — optionally the full deterministic
  :meth:`repro.machine.metrics.Metrics.as_dict` snapshot;
* ``compile_seconds`` — wall-clock compile time where the benchmark
  measures the compiler itself;
* ``extra`` — free-form numbers kept for the record, never gated.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.costmodel.bands import get_band

#: Version tag stamped into every records file, artifact and BENCH doc.
SCHEMA = "repro-bench/1"

#: Default relative regression tolerance for the baseline gate.
DEFAULT_TOLERANCE = 0.05

#: Metrics the baseline gate compares (all "lower or equal is fine").
GATED_METRICS = ("makespan", "message_count", "message_words")


@dataclass
class BenchResult:
    """One structured benchmark datum (see module docstring)."""

    bench: str
    kernel: str
    makespan: float | None = None
    measured: float | None = None
    analytic: float | None = None
    band: str | None = None
    message_count: int | None = None
    message_words: int | None = None
    metrics: dict | None = None
    compile_seconds: float | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.band is not None:
            get_band(self.band)  # fail fast on unregistered names
        if self.metrics is not None and not isinstance(self.metrics, dict):
            # Accept a live Metrics registry for convenience.
            as_dict = getattr(self.metrics, "as_dict", None)
            if as_dict is None:
                raise TypeError(
                    "metrics must be a dict or expose as_dict(); got "
                    f"{type(self.metrics).__name__}"
                )
            self.metrics = as_dict()
        if self.metrics is not None:
            if self.message_count is None:
                self.message_count = self.metrics.get("message_count")
            if self.message_words is None:
                self.message_words = self.metrics.get("message_words")

    @property
    def key(self) -> str:
        return f"{self.bench}/{self.kernel}"

    @property
    def ratio(self) -> float | None:
        """measured/analytic, the drift-oracle input (None when unpaired)."""
        measured = self.measured if self.measured is not None else self.makespan
        if measured is None or self.analytic in (None, 0):
            return None
        return measured / self.analytic

    def check_band(self) -> str | None:
        """None if in band (or unbanded); else a named failure message."""
        if self.band is None:
            return None
        band = get_band(self.band)
        ratio = self.ratio
        if ratio is None:
            return (
                f"{self.key}: band {band.name!r} declared but no "
                "measured/analytic pair to check"
            )
        if not band.check(ratio):
            return (
                f"{self.key}: measured/analytic {ratio:.3f} outside band "
                f"{band.describe()} — {band.rationale}"
            )
        return None

    def as_dict(self) -> dict:
        out: dict = {"bench": self.bench, "kernel": self.kernel}
        for name in (
            "makespan",
            "measured",
            "analytic",
            "band",
            "message_count",
            "message_words",
            "compile_seconds",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.ratio is not None:
            out["ratio"] = self.ratio
        if self.extra:
            out["extra"] = {k: self.extra[k] for k in sorted(self.extra)}
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        return cls(
            bench=data["bench"],
            kernel=data["kernel"],
            makespan=data.get("makespan"),
            measured=data.get("measured"),
            analytic=data.get("analytic"),
            band=data.get("band"),
            message_count=data.get("message_count"),
            message_words=data.get("message_words"),
            metrics=data.get("metrics"),
            compile_seconds=data.get("compile_seconds"),
            extra=dict(data.get("extra", {})),
        )


# -- records files (conftest -> runner handoff) -------------------------
def write_records(path: str | pathlib.Path, results: list[BenchResult]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SCHEMA,
        "records": [r.as_dict() for r in sorted(results, key=lambda r: r.key)],
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def read_records(path: str | pathlib.Path) -> list[BenchResult]:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"records file {path} has schema {doc.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    return [BenchResult.from_dict(d) for d in doc["records"]]


def write_json_artifact(
    directory: str | pathlib.Path, name: str, payload: dict
) -> pathlib.Path:
    """Write one structured ``artifacts/<name>.json`` next to the .txt."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    doc = {"schema": SCHEMA, "artifact": name, **payload}
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


# -- the model-drift oracle --------------------------------------------
def check_drift(results: list[BenchResult]) -> tuple[int, list[str]]:
    """Assert every banded record; return (checked count, failures)."""
    checked = 0
    failures: list[str] = []
    for r in sorted(results, key=lambda r: r.key):
        if r.band is None:
            continue
        checked += 1
        failure = r.check_band()
        if failure is not None:
            failures.append(failure)
    return checked, failures


# -- the regression gate -----------------------------------------------
def baseline_entry(result: BenchResult) -> dict:
    out = {}
    for name in GATED_METRICS:
        value = getattr(result, name)
        if value is not None:
            out[name] = value
    return out


def baseline_from_results(
    results: list[BenchResult], previous: dict | None = None
) -> dict:
    """A baseline doc; *previous* entries survive for unselected benches."""
    entries = dict(previous.get("entries", {})) if previous else {}
    for r in results:
        entries[r.key] = baseline_entry(r)
    return {
        "schema": SCHEMA,
        "entries": {k: entries[k] for k in sorted(entries)},
    }


def compare_to_baseline(
    results: list[BenchResult],
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    require_all: bool = False,
) -> list[str]:
    """Regression failures vs a committed baseline, named per metric.

    A metric regresses when ``current > baseline * (1 + tolerance)``
    (all gated metrics are lower-is-better).  Improvements pass silently
    — re-bless with ``--update-baseline`` to tighten the floor.  With
    *require_all*, baseline entries missing from *results* fail too
    (a benchmark silently disappearing is itself a regression).
    """
    if baseline.get("schema") != SCHEMA:
        return [
            f"baseline has schema {baseline.get('schema')!r}, expected {SCHEMA!r}"
        ]
    entries = baseline.get("entries", {})
    failures: list[str] = []
    seen: set[str] = set()
    for r in sorted(results, key=lambda r: r.key):
        seen.add(r.key)
        expected = entries.get(r.key)
        if expected is None:
            continue  # new record: not gated until blessed
        for metric in GATED_METRICS:
            base = expected.get(metric)
            current = getattr(r, metric)
            if base is None or current is None:
                continue
            limit = base * (1.0 + tolerance)
            if current > limit:
                failures.append(
                    f"{r.key}: {metric} regressed {base:g} -> {current:g} "
                    f"(+{(current / base - 1.0) * 100.0:.1f}%, limit "
                    f"+{tolerance * 100.0:g}%)"
                )
    if require_all:
        for key in sorted(set(entries) - seen):
            failures.append(f"{key}: present in baseline but produced no record")
    return failures
