"""Regenerate the paper's key artifacts without pytest.

Usage::

    python -m repro.tools.report [outdir]
    python -m repro.tools.report --trace {sor,jacobi,cannon,spmv,sparse-cg} [--out DIR]
    python -m repro.tools.report --redist [--out DIR]
    python -m repro.tools.report --diagnose KERNEL [--out DIR]
    python -m repro.tools.report --diff RUN_A RUN_B [--out DIR]

Without ``--trace``, writes the analytic Table 1/2, the Table 3/4
layouts, the Table 5 token analysis, the Fig 2/7 affinity graphs, the
Fig 3 decomposition, the Fig 5 schedule, the generated Fig 6/8 programs,
and a headline summary of the measured §4/§5/§6 comparisons.  The full
sweeps (with shape assertions) live in ``benchmarks/``; this tool is the
quick console/CI variant.

With ``--trace KERNEL``, runs one reference kernel with tracing on and
prints the observability report — per-rank/per-collective metrics, the
critical path, an ASCII gantt, and the TraceStore aggregations (wait
time, message volume, the per-rank send matrix) — and, when ``--out``
(or the positional outdir) is given, writes the queryable event store
as JSONL, a Perfetto-loadable correlated Chrome-trace JSON, and a
metrics JSON snapshot.  Unknown kernels exit 2 with the known listing.

With ``--diagnose KERNEL``, runs one diagnosable kernel traced and
prints the automated diagnostics (docs/OBSERVABILITY.md): per-wait
attribution with named culprits, compute load balance with the
offending rank, and the cost-model term decomposition.  On the chaos
``jacobi`` drill the attributed share of idle time is checked against
the ``wait-attribution`` band; misses exit nonzero.  ``--out`` writes
the machine-readable ``diagnose_<kernel>.json`` twin.

With ``--diff A B``, runs two registered runs traced and reports what
moved: makespans, cost-model terms (compute/alpha/transfer/wait), and
the critical-path edge diff.  The ``heat-blocking``/``heat-overlap``
pair additionally reconciles the measured overlapped makespan against
the X10 ``overlap=True`` prediction under the ``overlap-makespan``
band.  ``--out`` writes ``diff_<a>_vs_<b>.json``.

With ``--redist``, runs Algorithm 1 on the Fig 3 Jacobi program
(m=256, N=16), lowers every redistribution of the chosen chain to real
message traffic on both engines, and prints the calibration table —
analytic vs measured words per transition with the documented slack band.
Exits nonzero if any transition misses the band or lands wrong sections.

With ``--chaos``, runs the resilient Jacobi kernel on both backends under
a seeded :class:`~repro.machine.faults.FaultPlan` (delays, drops,
duplicates, a rank slowdown) and checks the determinism contract — the
chaotic result must be bit-identical to the fault-free run — then injects
a mid-run crash and shows checkpoint/restart re-convergence, printing the
fault/resilience counters per backend.  Exits nonzero on any mismatch.

With ``--deadlock``, forces a ring-recv deadlock on both backends and
prints the forensics report (blocked ranks, waited channels, wait-for
cycles, recent per-rank events), verifying both backends name every
blocked rank.
"""

from __future__ import annotations

import argparse
import json
import pathlib

import numpy as np

from repro.alignment import build_cag, exact_alignment
from repro.codegen import generate_spmd
from repro.costmodel import (
    jacobi_dp_time,
    jacobi_section3_time,
)
from repro.costmodel.bands import OVERLAP_MAKESPAN, get_band
from repro.distribution import Dist1D, Dist2D
from repro.distribution.layout import ownership_table
from repro.dp import solve_program_distribution
from repro.kernels import (
    cannon_matmul,
    gauss_broadcast,
    gauss_pipelined,
    jacobi_rowdist,
    make_spd_system,
    sor_naive,
    sor_pipelined,
)
from repro.lang import gauss_program, jacobi_program, sor_program
from repro.machine import (
    Grid2D,
    MachineModel,
    Ring,
    correlated_trace_json,
    critical_path,
    run_spmd,
)
from repro.machine.trace import gantt
from repro.obs import (
    TraceStore,
    attribute_waits,
    diff_runs,
    drift_terms,
    explain_drift,
    load_imbalance,
    mint_context,
    tracing_context,
)
from repro.pipeline.mapping import choose_mapping, mapping_table
from repro.pipeline.sor_schedule import render_schedule, sor_schedule_from_trace
from repro.util.tables import Table

MODEL = MachineModel(tf=1.0, tc=10.0)


def table2(m: int = 256, n: int = 16) -> str:
    table = Table(
        ["N1 x N2", "computation", "communication", "total"],
        title=f"Table 2 (analytic) — Jacobi, m={m}, N={n}",
    )
    sq = int(round(n**0.5))
    for shape in [(1, n), (n, 1), (sq, sq)]:
        t = jacobi_section3_time(m, *shape, MODEL)
        table.add_row([f"{shape[0]} x {shape[1]}", f"{t.comp:g}", f"{t.comm:g}", f"{t.total:g}"])
    dp = jacobi_dp_time(m, n, MODEL)
    table.add_row(["S4 DP schemes", f"{dp.comp:g}", f"{dp.comm:g}", f"{dp.total:g}"])
    return table.render()


def layouts() -> str:
    m = n = 4
    t3 = ownership_table(
        [
            ("A", Dist2D.row_blocks(m, m, n)),
            ("V", Dist1D.block_dist(m, n)),
            ("B", Dist1D.block_dist(m, n)),
            ("X", Dist1D.block_dist(m, n)),
            ("Xrepl", Dist1D.replicated(m)),
        ],
        n,
        title="Table 3 — Jacobi layout",
    )
    t4 = ownership_table(
        [
            ("A", Dist2D.col_blocks(m, m, n)),
            ("B", Dist1D.block_dist(m, n)),
            ("X", Dist1D.block_dist(m, n)),
            ("V", Dist1D.replicated(m)),
        ],
        n,
        title="Table 4 — SOR layout",
    )
    return t3 + "\n\n" + t4


def table5() -> str:
    g = gauss_program()
    return mapping_table([choose_mapping(g.loops()[0]), choose_mapping(g.loops()[2])])


def affinity_graphs() -> str:
    out = []
    for maker, fragment_of in [
        (jacobi_program, lambda p: p.loops()[0].body),
        (gauss_program, lambda p: p.body),
    ]:
        program = maker()
        cag = build_cag(
            fragment_of(program), program, {"m": 256, "maxiter": 1}, MODEL, nprocs=16
        )
        alignment = exact_alignment(cag, q=2)
        out.append(cag.render(title=f"CAG of {program.name}"))
        out.append("alignment: " + alignment.describe(cag))
    return "\n".join(out)


def dp_walkthrough() -> str:
    tables, result = solve_program_distribution(
        jacobi_program(), 16, {"m": 256, "maxiter": 1}, MODEL
    )
    return "Algorithm 1 on Jacobi (m=256, N=16):\n" + result.describe()


def fig5_schedule() -> str:
    m, n = 16, 4
    A, b, _ = make_spd_system(m, seed=2)
    res = run_spmd(
        sor_pipelined,
        Ring(n),
        MachineModel(tf=1, tc=1),
        args=(A, b, np.zeros(m), 1.0, 1),
        trace=True,
    )
    cells = sor_schedule_from_trace(res.trace, m, n)
    return "Fig 5 — pipelined SOR schedule:\n" + render_schedule(cells, n)


def generated_programs() -> str:
    out = []
    for program in (sor_program(), gauss_program()):
        gen = generate_spmd(program)
        out.append(f"--- generated ({gen.strategy}) for {program.name} ---")
        out.append(gen.source)
    return "\n".join(out)


def headline_measurements() -> str:
    table = Table(["experiment", "baseline", "improved", "speedup"],
                  title="Headline measured comparisons (simulator)")
    m, n, iters = 64, 8, 2
    A, b, _ = make_spd_system(m, seed=0)
    x0 = np.zeros(m)
    t_naive = run_spmd(sor_naive, Ring(n), MODEL, args=(A, b, x0, 1.0, iters)).makespan
    t_pipe = run_spmd(sor_pipelined, Ring(n), MODEL, args=(A, b, x0, 1.0, iters)).makespan
    table.add_row(
        [f"S5 SOR (m={m}, N={n})", f"{t_naive:g}", f"{t_pipe:g}", f"{t_naive / t_pipe:.2f}x"]
    )
    A2, b2, _ = make_spd_system(96, seed=0)
    t_b = run_spmd(gauss_broadcast, Ring(16), MODEL, args=(A2, b2)).makespan
    t_p = run_spmd(gauss_pipelined, Ring(16), MODEL, args=(A2, b2)).makespan
    table.add_row([f"S6 Gauss (m=96, N=16)", f"{t_b:g}", f"{t_p:g}", f"{t_b / t_p:.2f}x"])
    a_s3 = jacobi_section3_time(256, 16, 1, MODEL).total
    a_dp = jacobi_dp_time(256, 16, MODEL).total
    table.add_row(["S4 Jacobi analytic (m=256, N=16)", f"{a_s3:g}", f"{a_dp:g}",
                   f"{a_s3 / a_dp:.2f}x"])
    return table.render()


SECTIONS = [
    ("table2_analytic", table2),
    ("layouts_tables_3_4", layouts),
    ("table5_tokens", table5),
    ("affinity_graphs", affinity_graphs),
    ("algorithm1", dp_walkthrough),
    ("fig5_schedule", fig5_schedule),
    ("generated_programs", generated_programs),
    ("headline_measurements", headline_measurements),
]


def _trace_sor():
    m, n = 16, 4
    A, b, _ = make_spd_system(m, seed=2)
    return run_spmd(
        sor_pipelined,
        Ring(n),
        MachineModel(tf=1, tc=1),
        args=(A, b, np.zeros(m), 1.0, 1),
        trace=True,
    )


def _trace_jacobi():
    m, n = 32, 4
    A, b, _ = make_spd_system(m, seed=2)
    return run_spmd(
        jacobi_rowdist, Ring(n), MODEL, args=(A, b, np.zeros(m), 2), trace=True
    )


def _trace_cannon():
    q, nb = 2, 8
    rng = np.random.default_rng(0)
    size = q * nb
    B = rng.random((size, size))
    C = rng.random((size, size))
    return run_spmd(cannon_matmul, Grid2D(q, q), MODEL, args=(B, C, q), trace=True)


def _trace_spmv():
    from repro.kernels.spmv import spmv_parallel
    from repro.sparse.csr import random_spd_csr

    n, p = 128, 8
    csr = random_spd_csr(n, density=0.06, seed=42)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(n)
    return run_spmd(
        spmv_parallel, Ring(p), MODEL, args=(csr, x),
        kwargs={"iterations": 3}, trace=True,
    )


def _trace_sparse_cg():
    from repro.kernels.sparse_cg import sparse_cg_parallel
    from repro.sparse.csr import random_spd_csr

    n, p = 64, 8
    csr = random_spd_csr(n, density=0.06, seed=42)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(n)
    return run_spmd(
        sparse_cg_parallel, Ring(p), MODEL, args=(csr, b),
        kwargs={"tol": 1e-8, "max_iterations": 8}, trace=True,
    )


TRACED = {
    "sor": _trace_sor,
    "jacobi": _trace_jacobi,
    "cannon": _trace_cannon,
    "spmv": _trace_spmv,
    "sparse-cg": _trace_sparse_cg,
}


def _unknown_target(kind: str, name: str, known) -> int:
    """Reject an unknown CLI target with the known listing (exit 2)."""
    import sys

    print(
        f"error: unknown {kind} target {name!r}; "
        f"known: {', '.join(sorted(known))}",
        file=sys.stderr,
    )
    return 2


def _send_matrix_table(store: TraceStore) -> str:
    matrix = store.send_matrix()
    table = Table(
        ["src \\ dst", *[f"P{d}" for d in range(store.nprocs)]],
        title="Send matrix (words injected src -> dst)",
    )
    for src, row in enumerate(matrix):
        table.add_row([f"P{src}", *[str(w) for w in row]])
    return table.render()


def trace_report(kernel: str, outdir: pathlib.Path | None = None) -> int:
    """Run one traced kernel and print/write the observability report."""
    if kernel not in TRACED:
        return _unknown_target("--trace", kernel, TRACED)
    ctx = mint_context()
    with tracing_context(ctx):
        res = TRACED[kernel]()
    report = critical_path(res.trace)
    store = TraceStore.from_run(res)
    print(f"\n{'=' * 72}\ntraced run: {kernel} (makespan {res.makespan:g}, "
          f"run {ctx.run_id})\n{'=' * 72}")
    print(res.metrics.summary())
    print()
    print(report.describe())
    print()
    print(gantt(res.trace))
    print()
    print(_send_matrix_table(store))
    print(f"\nstore: {len(store)} events, "
          f"wait {store.wait_seconds():g}s, "
          f"{store.message_words()} words injected")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        events_path = store.write_jsonl(outdir / f"{kernel}_events.jsonl")
        trace_path = outdir / f"{kernel}_chrome_trace.json"
        trace_path.write_text(
            json.dumps(
                correlated_trace_json(res.trace, context=ctx, process_name=kernel)
            ) + "\n"
        )
        metrics_path = outdir / f"{kernel}_metrics.json"
        metrics_path.write_text(json.dumps(res.metrics.as_dict(), indent=2) + "\n")
        print(f"\nwrote {events_path}, {trace_path} and {metrics_path}")
    return 0


def redist_report(outdir: pathlib.Path | None = None) -> int:
    """Validate Algorithm 1's cost model by executing its chosen chain."""
    from repro.dp.validate import WORD_SLACK_LOWER, WORD_SLACK_UPPER

    m, n = 256, 16
    tables, result, validation = solve_program_distribution(
        jacobi_program(), n, {"m": m, "maxiter": 1}, MODEL, execute=True
    )
    print(f"\n{'=' * 72}\nredistribution calibration — Jacobi, m={m}, N={n}\n{'=' * 72}")
    print(f"Algorithm 1 total {result.cost:g} "
          f"(loop-carried {result.loop_carried:g}); executing "
          f"{len(validation.transitions)} transitions on "
          f"{', '.join(validation.backends)}\n")
    table = Table(
        ["transition", "grid", "lowering", "analytic", *validation.backends,
         "ratio", "sections", "band"],
        title=f"measured vs analytic words "
              f"(band: {WORD_SLACK_LOWER:g}x..{WORD_SLACK_UPPER:g}x for "
              f"literal lowerings)",
    )
    for t in validation.transitions:
        measured = {b: t.measured_words(b) for b in validation.backends}
        ref = measured[validation.backends[0]]
        ratio = "n/a" if t.analytic_words == 0 else f"{ref / t.analytic_words:.3f}"
        sections = all(
            ok for c in t.checks for ok in c.sections_ok.values()
        )
        table.add_row([
            t.label,
            f"{t.grid[0]}x{t.grid[1]}",
            "literal" if t.exact else "fallback",
            f"{t.analytic_words:g}",
            *[str(measured[b]) for b in validation.backends],
            ratio,
            "exact" if sections else "WRONG",
            "ok" if t.ok() else "MISS",
        ])
    print(table.render())
    print()
    print(validation.describe())
    status = 0 if validation.ok else 1
    print(f"\ncalibration {'PASSED' if status == 0 else 'FAILED'}")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        payload = {
            "program": "jacobi",
            "m": m,
            "nprocs": n,
            "dp_cost": result.cost,
            "loop_carried": result.loop_carried,
            "band": [WORD_SLACK_LOWER, WORD_SLACK_UPPER],
            "ok": validation.ok,
            "transitions": [
                {
                    "label": t.label,
                    "grid": list(t.grid),
                    "exact": t.exact,
                    "analytic_words": t.analytic_words,
                    "measured_words": {
                        b: t.measured_words(b) for b in validation.backends
                    },
                    "makespan": t.makespan,
                    "ok": t.ok(),
                    "arrays": [
                        {
                            "array": c.array,
                            "kinds": list(c.kinds),
                            "exact": c.exact,
                            "analytic_words": c.analytic_words,
                            "measured_words": c.measured_words,
                            "sections_ok": c.sections_ok,
                        }
                        for c in t.checks
                    ],
                }
                for t in validation.transitions
            ],
        }
        path = outdir / "redist_calibration.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return status


def chaos_report(outdir: pathlib.Path | None = None) -> int:
    """Chaos smoke: seeded faults + crash/restart on both backends."""
    from repro.kernels import resilient_jacobi
    from repro.machine import CheckpointStore, run_spmd_threaded, run_resilient
    from repro.machine.faults import FaultPlan

    m, n, iters = 24, 8, 6
    A, b, _ = make_spd_system(m, seed=7)
    x0 = np.zeros(m)
    topo = Ring(n)
    plan = FaultPlan(
        seed=42,
        delay_prob=0.15,
        delay_max=60.0,
        drop_prob=0.08,
        duplicate_prob=0.08,
        slowdown=((3, 1.5),),
    )
    print(f"\n{'=' * 72}\nchaos smoke — resilient Jacobi, m={m}, N={n}, "
          f"{iters} iterations\n{'=' * 72}")
    print(f"plan: {plan}\n")

    base = run_spmd(resilient_jacobi, topo, args=(A, b, x0, iters))
    runs = {
        "engine": run_spmd(resilient_jacobi, topo, args=(A, b, x0, iters),
                           faults=plan),
        "threaded": run_spmd_threaded(resilient_jacobi, topo,
                                      args=(A, b, x0, iters), faults=plan),
    }
    status = 0
    table = Table(
        ["backend", "bit-identical", "makespan", "retries", "drops", "dups",
         "timeouts"],
        title="determinism contract under the crash-free plan",
    )
    payload: dict = {"plan_seed": plan.seed, "backends": {}}
    for name, res in runs.items():
        identical = all(
            np.array_equal(a, c) for a, c in zip(base.values, res.values)
        )
        if not identical:
            status = 1
        f = res.metrics.faults
        table.add_row([
            name, "yes" if identical else "NO", f"{res.makespan:g}",
            f.get("retry", 0), f.get("drop", 0), f.get("duplicate", 0),
            f.get("timeout", 0),
        ])
        payload["backends"][name] = {
            "bit_identical": identical,
            "makespan": res.makespan,
            "faults": dict(f),
        }
    print(table.render())

    # Past the halfway point of the *chaotic* run, so at least one
    # checkpoint interval has completed on every rank before the crash.
    crash_at = runs["engine"].makespan * 0.6
    crash_plan = plan.with_crash(2, at_time=crash_at)
    print(f"\ninjecting crash(rank=2, at_time={crash_at:g}) "
          f"with checkpoint interval 2:")
    table = Table(
        ["backend", "re-converged", "restarts", "checkpoints", "restores",
         "crashes"],
        title="checkpoint/restart across an injected crash",
    )
    for name in runs:
        store = CheckpointStore(n)
        res = run_resilient(
            resilient_jacobi, topo, args=(A, b, x0, iters),
            kwargs={"checkpoints": store, "interval": 2},
            plan=crash_plan, backend=name,
        )
        ok = all(np.array_equal(a, c) for a, c in zip(base.values, res.values))
        f = res.metrics.faults
        if not ok or res.restarts < 1 or not f.get("restore"):
            status = 1
        table.add_row([
            name, "yes" if ok else "NO", res.restarts,
            f.get("checkpoint", 0), f.get("restore", 0), f.get("crash", 0),
        ])
        payload["backends"][name]["crash"] = {
            "re_converged": ok,
            "restarts": res.restarts,
            "faults": dict(f),
        }
    print(table.render())
    print(f"\nchaos smoke {'PASSED' if status == 0 else 'FAILED'}")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        payload["ok"] = status == 0
        path = outdir / "chaos_smoke.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return status


# Empirical slack band of measured-overlapped vs predicted (blocking twin
# on ``replace(model, overlap=True)``) makespans.  The canonical
# definition lives in the central drift-oracle registry
# (:data:`repro.costmodel.bands.OVERLAP_MAKESPAN`); these aliases keep
# the historical names importable (see docs/OVERLAP.md for the physics).
OVERLAP_SLACK_LOWER = OVERLAP_MAKESPAN.lower
OVERLAP_SLACK_UPPER = OVERLAP_MAKESPAN.upper


def overlap_report(outdir: pathlib.Path | None = None) -> int:
    """Reconcile overlapped kernels against the analytic overlap=True model.

    For each kernel pair (heat stencil, ring Jacobi, pipelined SOR) and
    alpha in {10, 100}: run the blocking twin and the overlapped twin on
    the base model (both backends for the overlapped one), check
    bit-identical numerics and backend-identical makespans, check the
    overlapped makespan beats blocking (stencil/Jacobi; SOR's crossover
    at large alpha is documented, not asserted), and check the measured
    overlapped makespan lands within the slack band of the prediction —
    the blocking twin run on ``replace(model, overlap=True)``.
    """
    from dataclasses import replace

    from repro.kernels import (
        heat_stencil_blocking,
        heat_stencil_overlap,
        jacobi_ring_blocking,
        jacobi_ring_overlap,
        sor_pipelined_overlap,
    )
    from repro.machine import run_spmd_threaded

    n = 8
    m_heat, steps = 256, 5
    m_ring, iters = 64, 4
    rng = np.random.default_rng(3)
    u0 = rng.normal(size=m_heat)
    A, b, _ = make_spd_system(m_ring, seed=3)
    x0 = np.zeros(m_ring)
    blk = m_ring // n

    def heat_slice(full, rank):
        return full[rank * (m_heat // n) : (rank + 1) * (m_heat // n)]

    def ring_slice(full, rank):
        return full[rank * blk : (rank + 1) * blk]

    kernels = {
        "stencil": (
            heat_stencil_blocking, heat_stencil_overlap, (u0, steps),
            heat_slice, True,
        ),
        "jacobi": (
            jacobi_ring_blocking, jacobi_ring_overlap, (A, b, x0, iters),
            ring_slice, True,
        ),
        "sor": (
            sor_pipelined, sor_pipelined_overlap, (A, b, x0, 1.1, iters),
            ring_slice, False,
        ),
    }

    print(f"\n{'=' * 72}\noverlap reconciliation — N={n}, "
          f"band {OVERLAP_SLACK_LOWER:g}x..{OVERLAP_SLACK_UPPER:g}x\n{'=' * 72}")
    table = Table(
        ["kernel", "alpha", "T_block", "T_overlap", "T_pred", "ratio",
         "bit", "backends", "faster", "band"],
        title="measured overlapped vs blocking twin and analytic prediction",
    )
    payload: dict = {
        "nprocs": n,
        "band": [OVERLAP_SLACK_LOWER, OVERLAP_SLACK_UPPER],
        "runs": [],
    }
    status = 0
    ratios: dict[str, list[float]] = {}
    for name, (blocking, overlapped, args, slice_of, must_win) in kernels.items():
        # The SOR blocking reference allgather-finishes (full X vector);
        # the overlapped kernels return their local block.
        whole = blocking is sor_pipelined
        for alpha in (10.0, 100.0):
            model = MachineModel(tf=1.0, tc=10.0, alpha=alpha)
            rb = run_spmd(blocking, Ring(n), model, args=args)
            ro = run_spmd(overlapped, Ring(n), model, args=args)
            rt = run_spmd_threaded(overlapped, Ring(n), model, args=args)
            rp = run_spmd(blocking, Ring(n), replace(model, overlap=True), args=args)
            bit = all(
                np.array_equal(
                    slice_of(rb.value(r), r) if whole else rb.value(r),
                    ro.value(r),
                )
                for r in range(n)
            )
            backends = (
                all(np.array_equal(rt.value(r), ro.value(r)) for r in range(n))
                and rt.makespan == ro.makespan
            )
            ratio = ro.makespan / rp.makespan
            faster = ro.makespan < rb.makespan
            band_ok = OVERLAP_SLACK_LOWER <= ratio <= OVERLAP_SLACK_UPPER
            ok = bit and backends and band_ok and (faster or not must_win)
            if not ok:
                status = 1
            ratios.setdefault(name, []).append(ratio)
            table.add_row([
                name, f"{alpha:g}", f"{rb.makespan:g}", f"{ro.makespan:g}",
                f"{rp.makespan:g}", f"{ratio:.3f}",
                "yes" if bit else "NO", "ok" if backends else "DIVERGE",
                ("yes" if faster else "NO") if must_win
                else ("yes" if faster else "n/a"),
                "ok" if band_ok else "MISS",
            ])
            payload["runs"].append({
                "kernel": name,
                "alpha": alpha,
                "t_block": rb.makespan,
                "t_overlap": ro.makespan,
                "t_overlap_threaded": rt.makespan,
                "t_pred": rp.makespan,
                "ratio": ratio,
                "bit_identical": bit,
                "backends_agree": backends,
                "faster_than_blocking": faster,
                "band_ok": band_ok,
                "ok": ok,
            })
    print(table.render())

    # Per-rank latency hiding of the overlapped stencil (alpha=100).
    model = MachineModel(tf=1.0, tc=10.0, alpha=100.0)
    ro = run_spmd(heat_stencil_overlap, Ring(n), model, args=(u0, steps))
    print()
    print(ro.metrics.overlap_table())
    payload["overlap_ratio"] = {
        r.rank: r.overlap_ratio for r in ro.metrics.ranks
    }

    # The scheduling pass's view of the same rewrite (generated-code side).
    from repro.lang import parse_program
    from repro.pipeline.overlap import overlap_schedule, overlap_table
    from repro.codegen.stencil import match_stencil_sweep

    heat_src = (
        "PROGRAM heat\nPARAM m, steps\nSCALAR alpha\nARRAY Unew(m), Uold(m)\n"
        "DO t = 1, steps\n"
        "  DO i = 2, m - 1\n"
        "    Unew(i) = Uold(i) + alpha * (Uold(i - 1) - 2 * Uold(i) + Uold(i + 1))\n"
        "  END DO\n"
        "  DO i = 2, m - 1\n    Uold(i) = Unew(i)\n  END DO\n"
        "END DO\nEND\n"
    )
    pattern = match_stencil_sweep(parse_program(heat_src))
    sched = overlap_schedule(pattern)
    print()
    print("overlap pass on the generated heat stencil "
          f"(per-sweep, cnt={m_heat // n}):")
    print(overlap_table(sched, model, m_heat // n))

    print(f"\noverlap reconciliation {'PASSED' if status == 0 else 'FAILED'}")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        payload["ok"] = status == 0
        path = outdir / "overlap_reconcile.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return status


def deadlock_report() -> int:
    """Force a ring-recv deadlock and print the forensics on both backends."""
    from repro.errors import DeadlockError
    from repro.machine import run_spmd_threaded

    n = 4

    def ring_wait(p):
        # Everyone receives from the left neighbour; nobody ever sends.
        yield from p.recv((p.rank - 1) % p.nprocs, tag=9)

    print(f"\n{'=' * 72}\ndeadlock forensics — {n}-rank receive ring, "
          f"no sender\n{'=' * 72}")
    status = 0
    for name, runner in (("engine", run_spmd),
                         ("threaded", run_spmd_threaded)):
        try:
            runner(ring_wait, Ring(n))
        except DeadlockError as err:
            report = err.report
            print(f"\n--- {name} backend ---")
            if report is None:
                print("no forensics report attached!")
                status = 1
                continue
            print(report.describe())
            if set(report.blocked_ranks()) != set(range(n)):
                print(f"FAILED: expected all {n} ranks blocked, "
                      f"got {report.blocked_ranks()}")
                status = 1
        else:
            print(f"{name}: expected DeadlockError, none raised")
            status = 1
    print(f"\ndeadlock forensics {'PASSED' if status == 0 else 'FAILED'}")
    return status


def _chaos_jacobi(faults: bool):
    """The chaos-drill Jacobi config (same numbers as ``--chaos``)."""
    from repro.kernels import resilient_jacobi
    from repro.machine.faults import FaultPlan

    m, n, iters = 24, 8, 6
    A, b, _ = make_spd_system(m, seed=7)
    plan = None
    if faults:
        plan = FaultPlan(
            seed=42,
            delay_prob=0.15,
            delay_max=60.0,
            drop_prob=0.08,
            duplicate_prob=0.08,
            slowdown=((3, 1.5),),
        )
    model = MachineModel()
    res = run_spmd(
        resilient_jacobi, Ring(n), model,
        args=(A, b, np.zeros(m), iters), faults=plan, trace=True,
    )
    return res, model


def _heat_run(overlapped: bool):
    """The X10 heat pair (n=8, m=256, steps=5, alpha=100), traced."""
    from repro.kernels import heat_stencil_blocking, heat_stencil_overlap

    n, m_heat, steps = 8, 256, 5
    rng = np.random.default_rng(3)
    u0 = rng.normal(size=m_heat)
    model = MachineModel(tf=1.0, tc=10.0, alpha=100.0)
    fn = heat_stencil_overlap if overlapped else heat_stencil_blocking
    return run_spmd(fn, Ring(n), model, args=(u0, steps), trace=True), model


#: ``--diagnose`` targets: the chaos Jacobi drill plus clean reference
#: kernels (each builder returns a traced run and its machine model).
DIAGNOSED = {
    "jacobi": lambda: _chaos_jacobi(faults=True),
    "jacobi-clean": lambda: _chaos_jacobi(faults=False),
    "sor": lambda: (_trace_sor(), MachineModel(tf=1, tc=1)),
    "spmv": lambda: (_trace_spmv(), MODEL),
}

#: ``--diff`` targets (any pair diffs; the heat pair also reconciles
#: against the X10 ``overlap=True`` prediction).
DIFF_RUNS = {
    "heat-blocking": lambda: _heat_run(overlapped=False),
    "heat-overlap": lambda: _heat_run(overlapped=True),
    "jacobi-clean": lambda: _chaos_jacobi(faults=False),
    "jacobi-chaos": lambda: _chaos_jacobi(faults=True),
}


def diagnose_report(kernel: str, outdir: pathlib.Path | None = None) -> int:
    """Run one kernel traced and print/write the automated diagnostics."""
    if kernel not in DIAGNOSED:
        return _unknown_target("--diagnose", kernel, DIAGNOSED)
    ctx = mint_context()
    with tracing_context(ctx):
        res, model = DIAGNOSED[kernel]()
    store = TraceStore.from_run(res)
    waits = attribute_waits(store)
    imbalance = load_imbalance(store)
    terms = drift_terms(res.metrics, model)
    band = get_band("wait-attribution")
    band_ok = band.check(waits.coverage)

    print(f"\n{'=' * 72}\ndiagnosis: {kernel} "
          f"(makespan {res.makespan:g}, run {ctx.run_id})\n{'=' * 72}")
    print(waits.describe())
    print()
    print(imbalance.describe())
    print()
    terms_table = Table(
        ["term", "rank-seconds"],
        title="Cost-model decomposition",
    )
    for key, value in terms.items():
        terms_table.add_row([key, f"{value:g}"])
    print(terms_table.render())
    print(f"\nattribution coverage {waits.coverage:.3f} vs band "
          f"{band.describe()}: {'ok' if band_ok else 'MISS'}")
    status = 0 if band_ok else 1
    print(f"diagnosis {'PASSED' if status == 0 else 'FAILED'}")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        payload = {
            "kernel": kernel,
            "run_id": ctx.run_id,
            "makespan": res.makespan,
            "coverage_band": [band.lower, band.upper],
            "coverage_ok": band_ok,
            "ok": status == 0,
            "attribution": waits.as_dict(),
            "imbalance": imbalance.as_dict(),
            "terms": terms,
            "faults": dict(res.metrics.faults),
        }
        path = outdir / f"diagnose_{kernel}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return status


def diff_report(a: str, b: str, outdir: pathlib.Path | None = None) -> int:
    """Diff two registered traced runs; print/write what moved."""
    from dataclasses import replace

    for name in (a, b):
        if name not in DIFF_RUNS:
            return _unknown_target("--diff", name, DIFF_RUNS)
    res_a, model_a = DIFF_RUNS[a]()
    res_b, model_b = DIFF_RUNS[b]()

    drift = None
    if {a, b} == {"heat-blocking", "heat-overlap"}:
        # Reconcile the measured overlapped run against the X10
        # prediction: the blocking twin executed on overlap=True.
        overlap_res, overlap_model = (
            (res_b, model_b) if b == "heat-overlap" else (res_a, model_a)
        )
        from repro.kernels import heat_stencil_blocking

        pred_model = replace(overlap_model, overlap=True)
        rng = np.random.default_rng(3)
        u0 = rng.normal(size=256)
        pred_res = run_spmd(
            heat_stencil_blocking, Ring(8), pred_model,
            args=(u0, 5), trace=True,
        )
        drift = explain_drift(
            "overlap-makespan",
            measured=overlap_res.makespan,
            analytic=pred_res.makespan,
            terms_measured=drift_terms(overlap_res.metrics, overlap_model),
            terms_analytic=drift_terms(pred_res.metrics, pred_model),
            label="measured overlapped vs blocking twin on overlap=True",
        )

    diff = diff_runs(
        res_a, res_b, model_a, model_b, label_a=a, label_b=b, drift=drift,
    )
    print(f"\n{'=' * 72}\nrun diff: {a} vs {b}\n{'=' * 72}")
    print(diff.describe())
    status = 0 if (drift is None or drift.ok) else 1
    print(f"\ndiff {'PASSED' if status == 0 else 'FAILED'}")
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
        payload = diff.as_dict()
        payload["ok"] = status == 0
        path = outdir / f"diff_{a}_vs_{b}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.report", description=__doc__
    )
    parser.add_argument("outdir", nargs="?", default=None,
                        help="directory for artifact files (optional)")
    parser.add_argument("--trace", metavar="KERNEL",
                        help="trace one reference kernel instead of the full "
                             f"report ({', '.join(sorted(TRACED))})")
    parser.add_argument("--redist", action="store_true",
                        help="execute Algorithm 1's chosen redistribution chain "
                             "and reconcile measured vs analytic words")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos smoke: seeded fault plan + crash/"
                             "restart on both backends, exit nonzero on any "
                             "determinism or re-convergence failure")
    parser.add_argument("--deadlock", action="store_true",
                        help="force a ring-recv deadlock on both backends and "
                             "print the forensics report")
    parser.add_argument("--overlap", action="store_true",
                        help="reconcile the overlapped kernels against the "
                             "analytic overlap=True prediction on both "
                             "backends; exit nonzero on any numeric, parity, "
                             "speedup or slack-band failure")
    parser.add_argument("--diagnose", metavar="KERNEL",
                        help="run one kernel traced and print the automated "
                             "diagnostics (wait attribution, load imbalance, "
                             f"cost-model terms): {', '.join(sorted(DIAGNOSED))}")
    parser.add_argument("--diff", nargs=2, metavar=("RUN_A", "RUN_B"),
                        help="critical-path + cost-model diff between two "
                             f"registered runs: {', '.join(sorted(DIFF_RUNS))}")
    parser.add_argument("--out", default=None,
                        help="output directory (alias for outdir)")
    ns = parser.parse_args(argv)
    outdir = pathlib.Path(ns.out or ns.outdir) if (ns.out or ns.outdir) else None
    if ns.trace:
        return trace_report(ns.trace, outdir)
    if ns.diagnose:
        return diagnose_report(ns.diagnose, outdir)
    if ns.diff:
        return diff_report(ns.diff[0], ns.diff[1], outdir)
    if ns.redist:
        return redist_report(outdir)
    if ns.chaos:
        return chaos_report(outdir)
    if ns.overlap:
        return overlap_report(outdir)
    if ns.deadlock:
        return deadlock_report()
    if outdir:
        outdir.mkdir(parents=True, exist_ok=True)
    for name, builder in SECTIONS:
        text = builder()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
        if outdir:
            (outdir / f"{name}.txt").write_text(text + "\n")
    if outdir:
        print(f"\nwrote {len(SECTIONS)} artifacts to {outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
