"""Sparse placements: owner-computes row partitions with halo index sets.

Dense placements (:class:`~repro.distribution.schemes.ArrayPlacement`)
describe *affine* ownership — every rank's section is computable from
the distribution function alone.  A sparse operator adds a second,
data-dependent layer: which **remote** vector elements a rank touches is
determined by the column structure of its rows (the indirection array),
not by any closed form.  :class:`SparsePlacement` captures both layers
for the CSR row partition:

* the *affine* layer is delegated to the existing machinery — the
  operand/result vectors and the matrix rows are placed by ordinary
  :class:`ArrayPlacement` objects (block along grid dimension 1) and
  their per-rank sections come from the PR 2 section tables
  (:func:`repro.distribution.sections.section_table`), so sparse and
  dense placements compose (a redistribution into or out of the sparse
  row layout is just a Table 1 plan between those placements);
* the *irregular* layer — each rank's **ghost** (halo) column set, the
  sorted remote indices appearing in its rows — is derived here from
  the :class:`~repro.sparse.csr.CSRPattern` column structure.

The inspector (:mod:`repro.pipeline.inspector`) turns ghost sets into a
replayable communication schedule; this module owns only *who needs
what*, not *how it moves*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.distribution.function import Kind
from repro.distribution.schemes import ArrayPlacement
from repro.distribution.sections import section_table
from repro.errors import DistributionError
from repro.sparse.csr import SPARSE_SCHEMA, CSRPattern


@dataclass(frozen=True, eq=False)
class SparsePlacement:
    """CSR row partition of one sparse array over *nprocs* ranks.

    Rows are block-distributed (the standard ceil-block of
    :meth:`repro.distribution.function.Dist1D.block_dist`); the operand
    vector is partitioned conformally over the columns.  The grid is
    the degenerate ``(nprocs, 1)`` shape — sparse kernels are 1-D row
    partitions, matching the paper's Table 3 Jacobi layout.
    """

    pattern: CSRPattern
    nprocs: int
    array: str = "A"
    _ghosts: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise DistributionError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.pattern.nrows < 1 or self.pattern.ncols < 1:
            raise DistributionError(
                f"{self.array}: cannot distribute an empty "
                f"{self.pattern.nrows}x{self.pattern.ncols} pattern"
            )

    # -- the affine layer (delegated to ArrayPlacement sections) --------
    @property
    def grid(self) -> tuple[int, int]:
        return (self.nprocs, 1)

    def matrix_placement(self) -> ArrayPlacement:
        """The matrix itself: rows block-mapped to grid dim 1."""
        return ArrayPlacement(
            self.array, (1, None), kinds=(Kind.BLOCK, Kind.BLOCK), rest="fixed"
        )

    def vector_placement(self, name: str = "x") -> ArrayPlacement:
        """A conformally partitioned operand/result vector placement."""
        return ArrayPlacement(name, (1,), kinds=(Kind.BLOCK,), rest="fixed")

    def owned_cols(self, rank: int) -> np.ndarray:
        """Global operand indices stored at *rank* (via section tables)."""
        return section_table(
            self.vector_placement(), (self.pattern.ncols,), self.grid
        )[rank]

    def owned_rows(self, rank: int) -> np.ndarray:
        """Global result indices computed at *rank* (via section tables)."""
        return section_table(
            self.vector_placement("y"), (self.pattern.nrows,), self.grid
        )[rank]

    def row_block(self, rank: int) -> tuple[int, int]:
        """Contiguous ``[lo, hi)`` row bounds of *rank* (ceil blocks)."""
        return _block(self.pattern.nrows, self.nprocs, rank)

    def col_block(self, rank: int) -> tuple[int, int]:
        """Contiguous ``[lo, hi)`` operand bounds of *rank*."""
        return _block(self.pattern.ncols, self.nprocs, rank)

    @cached_property
    def col_owner(self) -> np.ndarray:
        """Owner rank of every operand index (vectorized block owner)."""
        size = -(-self.pattern.ncols // self.nprocs)
        return np.arange(self.pattern.ncols, dtype=np.int64) // size

    # -- the irregular layer (from the column structure) ----------------
    def ghost_indices(self, rank: int) -> np.ndarray:
        """Sorted remote operand indices referenced by *rank*'s rows.

        The halo set: every column appearing in the rank's row block
        whose owner (under the conformal vector placement) is another
        rank.  Cached per rank — the pattern is immutable.
        """
        cached = self._ghosts.get(rank)
        if cached is not None:
            return cached
        lo, hi = self.row_block(rank)
        pat = self.pattern
        need = np.unique(pat.indices[pat.indptr[lo] : pat.indptr[hi]])
        ghosts = need[self.col_owner[need] != rank]
        self._ghosts[rank] = ghosts
        return ghosts

    def halo_words(self) -> int:
        """Total halo volume: one word per (rank, ghost index) pair."""
        return sum(len(self.ghost_indices(r)) for r in range(self.nprocs))

    @property
    def digest(self) -> str:
        """Content address: pattern structure + partition parameters."""
        return _placement_digest(self)

    def describe(self) -> str:
        pat = self.pattern
        return (
            f"{self.array}[{pat.nrows}x{pat.ncols}, nnz={pat.nnz}] "
            f"row-blocked over {self.nprocs} ranks, halo={self.halo_words()} words"
        )


def _block(extent: int, nprocs: int, rank: int) -> tuple[int, int]:
    """The ceil-block bounds shared with ``Dist1D.block_dist`` owners."""
    if not (0 <= rank < nprocs):
        raise DistributionError(f"rank {rank} outside 0..{nprocs - 1}")
    size = -(-extent // nprocs)
    lo = min(rank * size, extent)
    return lo, min(lo + size, extent)


def _placement_digest(placement: SparsePlacement) -> str:
    import hashlib

    h = hashlib.sha256()
    h.update(
        f"{SPARSE_SCHEMA}|placement|{placement.array}|{placement.nprocs}|".encode()
    )
    h.update(placement.pattern.digest.encode())
    return h.hexdigest()
