"""Executable redistribution: lower layout deltas to real message traffic.

:mod:`repro.distribution.redistribution` prices a layout change with
closed-form :class:`~repro.distribution.redistribution.RedistTerm`s; this
module *executes* the same change on the SPMD engine so the analytic model
can be validated end-to-end (ISSUE 2, after Rink et al. 2021's framing of
redistribution as lowering layout deltas to collective sequences).

The lowering is **literal**: each analytic term kind maps to the engine
collective the paper prices it with, even where a cleverer exchange would
move fewer words — the point is to measure the traffic the model claims.

=====================  ================================================
analytic term          executable lowering
=====================  ================================================
Transfer               pairwise :class:`TransferOp` (disjoint pairs)
Gather                 :class:`GatherOp` toward the pinned rank
Scatter                :class:`ScatterOp` from each pinned holder
AffineTransform        :class:`RegridOp` — gather + scatter inside each
                       holder group (a block<->cyclic regrid is not a
                       rank permutation, so the permutation collective
                       cannot realize it; this is its documented cost
                       within 2x of the analytic ``N * m`` words)
OneToManyMulticast     :class:`BcastOp` (binomial tree)
ManyToManyMulticast    :class:`AllgatherOp` (ring)
=====================  ================================================

Every lowering is checked at plan time by a coverage simulation: per-rank
boolean masks over the flat element space replay the ops and prove each
rank ends holding a superset of its destination section.  Compound moves
the literal rules cannot express (several array dimensions remapped at
once) fall back to a generic pairwise :class:`ExchangeOp` whose plans are
flagged ``exact=False`` — correct, but outside the word-count slack bands
documented in ``docs/REDISTRIBUTION.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import prod
from typing import Any, Generator

import numpy as np

from repro.distribution.redistribution import _is_aligned_remap
from repro.distribution.schemes import ArrayPlacement
from repro.distribution.sections import (
    groups_along,
    local_indices,
    section_table,
)
from repro.errors import DistributionError
from repro.machine.collectives import (
    PLAIN_TRANSPORT,
    Transport,
    allgather,
    bcast,
    exchange,
    gather,
    scatter,
)
from repro.machine.engine import Proc

#: Tags consumed per op slot (RegridOp needs two: gather then scatter).
TAG_STRIDE = 2
DEFAULT_TAG_BASE = 7000


@dataclass(frozen=True)
class TransferOp:
    """Point-to-point section move (the paper's Transfer primitive)."""

    source: int
    dest: int
    indices: np.ndarray

    kind = "Transfer"

    def ranks(self) -> frozenset[int]:
        return frozenset((self.source, self.dest))

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        tx = transport or PLAIN_TRANSPORT
        with p.scoped("transfer"):
            if p.rank == self.source and self.dest != self.source:
                yield from tx.send(p, self.dest, buf[self.indices], tag=tag)
            if p.rank == self.dest and self.dest != self.source:
                buf[self.indices] = yield from tx.recv(p, self.source, tag=tag)
                have[self.indices] = True
        return None


@dataclass(frozen=True)
class BcastOp:
    """OneToManyMulticast of one index set from *root* over *group*."""

    root: int
    group: tuple[int, ...]
    indices: np.ndarray

    kind = "OneToManyMulticast"

    def ranks(self) -> frozenset[int]:
        return frozenset(self.group)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        data = buf[self.indices] if p.rank == self.root else None
        values = yield from bcast(
            p, data, self.root, self.group, tag=tag, transport=transport
        )
        buf[self.indices] = values
        have[self.indices] = True
        return None


@dataclass(frozen=True)
class AllgatherOp:
    """ManyToManyMulticast: every member ends with every contribution."""

    group: tuple[int, ...]
    indices: tuple[np.ndarray, ...]  # per-member contribution, group order

    kind = "ManyToManyMulticast"

    def ranks(self) -> frozenset[int]:
        return frozenset(self.group)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        me = self.group.index(p.rank)
        blocks = yield from allgather(
            p, buf[self.indices[me]], self.group, tag=tag, transport=transport
        )
        for idx, values in zip(self.indices, blocks):
            buf[idx] = values
            have[idx] = True
        return None


@dataclass(frozen=True)
class GatherOp:
    """Gather each member's contribution to *root* (serialized at root)."""

    root: int
    group: tuple[int, ...]
    indices: tuple[np.ndarray, ...]  # per-member contribution, group order

    kind = "Gather"

    def ranks(self) -> frozenset[int]:
        return frozenset(self.group)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        me = self.group.index(p.rank)
        out = yield from gather(
            p, buf[self.indices[me]], self.root, self.group, tag=tag,
            transport=transport,
        )
        if p.rank == self.root:
            for idx, values in zip(self.indices, out):
                buf[idx] = values
                have[idx] = True
        return None


@dataclass(frozen=True)
class ScatterOp:
    """Scatter per-member index sets from *root* (which must hold them)."""

    root: int
    group: tuple[int, ...]
    indices: tuple[np.ndarray, ...]  # per-member delivery, group order

    kind = "Scatter"

    def ranks(self) -> frozenset[int]:
        return frozenset(self.group)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        items = [buf[idx] for idx in self.indices] if p.rank == self.root else None
        mine = yield from scatter(
            p, items, self.root, self.group, tag=tag, transport=transport
        )
        me = self.group.index(p.rank)
        buf[self.indices[me]] = mine
        have[self.indices[me]] = True
        return None


@dataclass(frozen=True)
class RegridOp:
    """AffineTransform lowering: gather to a root, scatter the new split.

    A block<->cyclic change within one holder group is not a rank
    permutation of equal sections, so it cannot ride the permutation
    collective; the documented lowering funnels the group's data through
    its first member and redeals it, ``2 (N-1) m`` measured words against
    the analytic ``N m``.
    """

    root: int
    group: tuple[int, ...]
    gather_indices: tuple[np.ndarray, ...]
    scatter_indices: tuple[np.ndarray, ...]

    kind = "AffineTransform"

    def ranks(self) -> frozenset[int]:
        return frozenset(self.group)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        with p.scoped("affine"):
            out = yield from gather(
                p, buf[self.gather_indices[self.group.index(p.rank)]],
                self.root, self.group, tag=tag, transport=transport,
            )
            if p.rank == self.root:
                for idx, values in zip(self.gather_indices, out):
                    buf[idx] = values
                    have[idx] = True
            items = (
                [buf[idx] for idx in self.scatter_indices]
                if p.rank == self.root
                else None
            )
            mine = yield from scatter(
                p, items, self.root, self.group, tag=tag + 1, transport=transport
            )
            me = self.group.index(p.rank)
            buf[self.scatter_indices[me]] = mine
            have[self.scatter_indices[me]] = True
        return None


@dataclass(frozen=True)
class ExchangeOp:
    """Generic pairwise fallback: every move ``(source, dest, indices)``.

    Used when no literal lowering covers the delta; flagged by
    ``RedistLowering.exact == False``.
    """

    moves: tuple[tuple[int, int, np.ndarray], ...]

    kind = "Exchange"

    def ranks(self) -> frozenset[int]:
        out: set[int] = set()
        for s, d, _ in self.moves:
            out.add(s)
            out.add(d)
        return frozenset(out)

    def execute(
        self, p: Proc, buf, have, tag: int, transport: Transport | None = None
    ) -> Generator:
        sends = [
            (d, buf[idx]) for s, d, idx in self.moves if s == p.rank and d != p.rank
        ]
        expect = [(s, idx) for s, d, idx in self.moves if d == p.rank and s != p.rank]
        received = yield from exchange(
            p, sends, [s for s, _ in expect], tag=tag, transport=transport
        )
        for s, idx in expect:
            buf[idx] = received[s]
            have[idx] = True
        return None


RedistOp = (
    TransferOp | BcastOp | AllgatherOp | GatherOp | ScatterOp | RegridOp | ExchangeOp
)


@dataclass(frozen=True)
class RedistLowering:
    """An executable plan for one array's placement change."""

    src: ArrayPlacement
    dst: ArrayPlacement
    extents: tuple[int, ...]
    grid: tuple[int, int]
    ops: tuple[RedistOp, ...]
    exact: bool

    @property
    def kinds(self) -> frozenset[str]:
        return frozenset(op.kind for op in self.ops)

    def describe(self) -> str:
        n1, n2 = self.grid
        head = (
            f"{self.src.array}: {len(self.ops)} op(s) on grid {n1}x{n2}"
            f" ({'literal' if self.exact else 'generic exchange fallback'})"
        )
        lines = [head]
        for op in self.ops:
            lines.append(f"  {op.kind}: ranks {sorted(op.ranks())}")
        return "\n".join(lines)


class _Coverage:
    """Plan-time replay of ops over per-rank boolean element masks."""

    def __init__(self, sections: tuple[np.ndarray, ...], total: int) -> None:
        self.masks = [np.zeros(total, dtype=bool) for _ in sections]
        for mask, idx in zip(self.masks, sections):
            mask[idx] = True

    def held(self, rank: int) -> np.ndarray:
        return np.flatnonzero(self.masks[rank])

    def holds(self, rank: int, indices: np.ndarray) -> bool:
        return bool(self.masks[rank][indices].all())

    def holders(self) -> list[int]:
        return [r for r, m in enumerate(self.masks) if m.any()]

    def apply(self, op: RedistOp) -> bool:
        """Replay *op*; False when a sender lacks the data it would send."""
        if isinstance(op, TransferOp):
            if not self.holds(op.source, op.indices):
                return False
            self.masks[op.dest][op.indices] = True
            return True
        if isinstance(op, BcastOp):
            if not self.holds(op.root, op.indices):
                return False
            for r in op.group:
                self.masks[r][op.indices] = True
            return True
        if isinstance(op, AllgatherOp):
            union = np.zeros_like(self.masks[0])
            for r, idx in zip(op.group, op.indices):
                if not self.holds(r, idx):
                    return False
                union[idx] = True
            for r in op.group:
                self.masks[r] |= union
            return True
        if isinstance(op, GatherOp):
            for r, idx in zip(op.group, op.indices):
                if not self.holds(r, idx):
                    return False
                self.masks[op.root][idx] = True
            return True
        if isinstance(op, ScatterOp):
            for r, idx in zip(op.group, op.indices):
                if not self.holds(op.root, idx):
                    return False
                self.masks[r][idx] = True
            return True
        if isinstance(op, RegridOp):
            for r, idx in zip(op.group, op.gather_indices):
                if not self.holds(r, idx):
                    return False
                self.masks[op.root][idx] = True
            for r, idx in zip(op.group, op.scatter_indices):
                if not self.holds(op.root, idx):
                    return False
                self.masks[r][idx] = True
            return True
        if isinstance(op, ExchangeOp):
            for s, d, idx in op.moves:
                if not self.holds(s, idx):
                    return False
                self.masks[d][idx] = True
            return True
        raise DistributionError(f"unknown op {op!r}")  # pragma: no cover


def _literal_ops(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
    dst_secs: tuple[np.ndarray, ...],
    cov: _Coverage,
) -> list[RedistOp] | None:
    """Mirror of the analytic case analysis; None when it cannot express
    the delta (compound multi-dimension remaps)."""
    nranks = grid[0] * grid[1]
    ops: list[RedistOp] = []

    def emit(op: RedistOp) -> bool:
        if not cov.apply(op):
            return False
        ops.append(op)
        return True

    def needy(group) -> bool:
        """Some member of *group* is still missing destination data."""
        return any(
            dst_secs[r].size and not cov.holds(r, dst_secs[r]) for r in group
        )

    changed = [
        d
        for d in range(src.rank)
        if src.dim_map[d] != dst.dim_map[d] or src.kinds[d] != dst.kinds[d]
    ]
    if len(changed) > 1:
        return None
    if changed:
        d = changed[0]
        gs, gd = src.dim_map[d], dst.dim_map[d]
        ns = grid[gs - 1] if gs is not None else 1
        nd = grid[gd - 1] if gd is not None else 1
        if gs is not None and gd == gs:
            # Kind change: regrid each group along gs that holds data and
            # still needs some (replicated rests leave parallel copy
            # groups; pinned destinations leave whole groups with nothing
            # to do, and holder-less groups are fed by the completion
            # pass below).
            for group in groups_along(grid, gs):
                if not needy(group):
                    continue
                if not any(cov.masks[r].any() for r in group):
                    continue
                members = [r for r in group if cov.masks[r].any() or dst_secs[r].size]
                if len(members) <= 1:
                    continue
                grp = tuple(members)
                if not emit(
                    RegridOp(
                        root=grp[0],
                        group=grp,
                        gather_indices=tuple(cov.held(r) for r in grp),
                        scatter_indices=tuple(dst_secs[r] for r in grp),
                    )
                ):
                    return None
        elif gs is not None and gd is None and ns > 1:
            if dst.rest == "fixed" and gs not in dst.grid_dims():
                # Collapse the split toward the pinned coordinate-0 rank.
                for group in groups_along(grid, gs):
                    if not needy(group):
                        continue
                    root = group[0]  # coordinate 0 along gs
                    members = [
                        r for r in group if r == root or cov.masks[r].any()
                    ]
                    if len(members) <= 1:
                        continue
                    grp = tuple(members)
                    if not emit(
                        GatherOp(
                            root=root,
                            group=grp,
                            indices=tuple(cov.held(r) for r in grp),
                        )
                    ):
                        return None
            else:
                for group in groups_along(grid, gs):
                    if not needy(group):
                        continue
                    if not any(cov.masks[r].any() for r in group):
                        continue
                    if not emit(
                        AllgatherOp(
                            group=group,
                            indices=tuple(cov.held(r) for r in group),
                        )
                    ):
                        return None
        elif gs is not None and gd is not None and ns > 1:
            if dst.rest == "replicated":
                # Departition along gs; the completion pass below spreads
                # the copies along the remaining dimensions.
                for group in groups_along(grid, gs):
                    if not needy(group):
                        continue
                    if not any(cov.masks[r].any() for r in group):
                        continue
                    if not emit(
                        AllgatherOp(
                            group=group,
                            indices=tuple(cov.held(r) for r in group),
                        )
                    ):
                        return None
            elif _is_aligned_remap(src, dst, grid):
                # Pure rank relabeling: pairwise parallel transfers.
                for r in range(nranks):
                    need = dst_secs[r]
                    if need.size == 0 or cov.holds(r, need):
                        continue
                    donor = next(
                        (s for s in range(nranks) if cov.holds(s, need)), None
                    )
                    if donor is None:
                        return None
                    if not emit(TransferOp(donor, r, need)):
                        return None
            else:
                # Literal Ng x OneToManyMulticast: every holder multicasts
                # its whole section over the destination holders — the
                # Table 1 primitive the analytic rule charges.  Holders
                # whose data no destination still lacks are redundant
                # copies (replicated sources); they stay silent.
                dst_holders = [r for r in range(nranks) if dst_secs[r].size]
                for h in cov.holders():
                    held = cov.held(h)
                    if not any(
                        r != h
                        and not cov.holds(
                            r,
                            np.intersect1d(dst_secs[r], held, assume_unique=True),
                        )
                        for r in dst_holders
                    ):
                        continue
                    group = tuple(sorted({h, *dst_holders}))
                    if len(group) <= 1:
                        continue
                    if not emit(BcastOp(root=h, group=group, indices=held)):
                        return None
        elif gs is None and gd is not None and nd > 1:
            if src.rest == "fixed" and gd not in src.grid_dims():
                # Copies pinned at coordinate 0 of gd: scatter along it.
                for group in groups_along(grid, gd):
                    root = group[0]
                    if not cov.masks[root].any():
                        continue
                    held = cov.held(root)
                    targets = tuple(
                        np.intersect1d(dst_secs[r], held, assume_unique=True)
                        for r in group
                    )
                    if not any(t.size for t in targets):
                        continue
                    if not emit(ScatterOp(root=root, group=group, indices=targets)):
                        return None
            # Otherwise copies already exist along gd: free.

    if dst.rest == "replicated":
        # Completion: make copies exist along every grid dimension the
        # destination leaves unused (mirrors the analytic rest rule and
        # the OneToManyMulticast(D, Nh) of the remap-with-replication
        # rule, in the same dimension order).
        for g in (1, 2):
            if grid[g - 1] <= 1:
                continue
            for group in groups_along(grid, g):
                missing = [
                    r for r in group if dst_secs[r].size and not cov.holds(r, dst_secs[r])
                ]
                if not missing:
                    continue
                need = np.unique(np.concatenate([dst_secs[r] for r in group]))
                root = next((r for r in group if cov.holds(r, need)), None)
                if root is None:
                    continue  # another dimension's pass may enable this
                if not emit(BcastOp(root=root, group=group, indices=need)):
                    return None
    return ops


def _exchange_ops(
    src_secs: tuple[np.ndarray, ...],
    dst_secs: tuple[np.ndarray, ...],
    total: int,
    array: str,
) -> list[RedistOp]:
    """Canonical pairwise moves: each element travels from its min-rank
    holder to every rank that needs and lacks it."""
    nranks = len(src_secs)
    first = np.full(total, -1, dtype=np.int64)
    for r in range(nranks - 1, -1, -1):
        first[src_secs[r]] = r
    moves: list[tuple[int, int, np.ndarray]] = []
    for r in range(nranks):
        need = np.setdiff1d(dst_secs[r], src_secs[r], assume_unique=True)
        if need.size == 0:
            continue
        senders = first[need]
        if (senders < 0).any():
            raise DistributionError(
                f"{array}: source placement holds no copy of some elements"
            )
        for s in np.unique(senders):
            moves.append((int(s), r, need[senders == s]))
    moves.sort(key=lambda m: (m[0], m[1]))
    return [ExchangeOp(tuple(moves))] if moves else []


@lru_cache(maxsize=256)
def _lower_cached(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
) -> RedistLowering:
    if src.array != dst.array:
        raise DistributionError(f"placement arrays differ: {src.array} vs {dst.array}")
    if src.rank != dst.rank:
        raise DistributionError(f"{src.array}: placement ranks differ")
    total = prod(extents)
    src_secs = section_table(src, extents, grid)
    dst_secs = section_table(dst, extents, grid)

    cov = _Coverage(src_secs, total)
    ops = _literal_ops(src, dst, extents, grid, dst_secs, cov)
    if ops is not None and all(
        cov.holds(r, dst_secs[r]) for r in range(len(dst_secs))
    ):
        return RedistLowering(src, dst, extents, grid, tuple(ops), exact=True)

    cov = _Coverage(src_secs, total)
    ops = _exchange_ops(src_secs, dst_secs, total, src.array)
    for op in ops:
        if not cov.apply(op):  # pragma: no cover - exchange is total by construction
            raise DistributionError(f"{src.array}: fallback exchange is incoherent")
    if not all(cov.holds(r, dst_secs[r]) for r in range(len(dst_secs))):
        raise DistributionError(
            f"{src.array}: no lowering reaches the destination placement"
        )
    return RedistLowering(src, dst, extents, grid, tuple(ops), exact=False)


def lower_placement_delta(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
) -> RedistLowering:
    """Executable lowering of one array's ``src -> dst`` placement change.

    The result is cached (placements and shapes are hashable); its ops
    and index arrays are shared — treat them as read-only.
    """
    return _lower_cached(src, dst, tuple(extents), tuple(grid))


def redistribute(
    p: Proc,
    local: np.ndarray,
    src: ArrayPlacement,
    dst: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
    tag_base: int = DEFAULT_TAG_BASE,
    label: str = "redist",
    transport: Transport | None = None,
) -> Generator[Any, None, np.ndarray]:
    """SPMD runtime call: move this rank's *local* section from layout
    *src* to layout *dst*, returning the new local section.

    Every rank of the ``N1 x N2`` grid must call it collectively (with
    ``yield from``), in the same order relative to other communication.
    *local* must be the rank's current section in flat index order
    (:func:`repro.distribution.sections.pack_section` produces it).
    Passing a :class:`repro.machine.resilient.ReliableTransport` as
    *transport* runs every underlying collective over acked transfers.
    """
    grid = tuple(grid)
    extents = tuple(extents)
    nranks = grid[0] * grid[1]
    if p.nprocs != nranks:
        raise DistributionError(
            f"redistribute on a {grid[0]}x{grid[1]} grid needs {nranks} ranks, "
            f"engine has {p.nprocs}"
        )
    lowering = lower_placement_delta(src, dst, extents, grid)
    total = prod(extents)
    buf = np.zeros(total, dtype=np.float64)
    have = np.zeros(total, dtype=bool)
    mine = local_indices(src, extents, grid, p.rank)
    values = np.asarray(local, dtype=np.float64).reshape(-1)
    if values.size != mine.size:
        raise DistributionError(
            f"{src.array}: rank {p.rank} passed {values.size} values for a "
            f"section of {mine.size}"
        )
    buf[mine] = values
    have[mine] = True
    with p.scoped(label):
        for i, op in enumerate(lowering.ops):
            if p.rank in op.ranks():
                yield from op.execute(
                    p, buf, have, tag=tag_base + TAG_STRIDE * i, transport=transport
                )
    out = local_indices(dst, extents, grid, p.rank)
    if not have[out].all():  # pragma: no cover - coverage is proven at plan time
        raise DistributionError(
            f"{src.array}: rank {p.rank} missing elements after redistribution"
        )
    return buf[out]
