"""Cost of changing data layouts between loop nests.

Algorithm 1 (§4) needs two communication-cost oracles:

* ``cost(P, P')`` — changing layouts from scheme ``P`` to scheme ``P'``
  between two adjacent loop nests (:func:`redistribution_cost`);
* ``loop_carried_dependence(T)`` — the communication at the boundary of
  the enclosing iterative loop, i.e. the cost of making the arrays
  *written* under the final scheme available where the *first* scheme
  reads them (:func:`loop_carried_cost` in :mod:`repro.dp.phases` builds
  on the same per-array primitive here).

Rules (derived from the paper's §4 worked example, where
``CTime1 = 0`` and
``CTime2 = ManyToManyMulticast(m/N1, N1) + OneToManyMulticast(m, N2)``):

=================================  =======================================
transition (per array dimension)   cost
=================================  =======================================
same mapping, same kind            0
not distributed -> distributed     0 (data already available everywhere)
grid g -> not distributed          ManyToManyMulticast(D/Ng, Ng)
grid g -> grid h, rest fixed       Ng * OneToManyMulticast(D/Ng, Nh)
grid g -> grid h, rest replicated  ManyToManyMulticast(D/Ng, Ng)
                                   + OneToManyMulticast(D, Nh)
same mapping, kind change          AffineTransform(D/Ng, Ng)
fixed rest -> replicated rest      ManyToManyMulticast(D/Ng', Ng') over
                                   the unused grid dimension Ng'
=================================  =======================================

``D`` is the total element count of the array.  These match the paper's
terms exactly on its examples and degrade gracefully (all costs are zero
when the relevant grid extent is 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.primitives import CommCosts
from repro.distribution.schemes import ArrayPlacement, Scheme
from repro.errors import DistributionError


@dataclass(frozen=True)
class RedistTerm:
    """One primitive invocation in a redistribution plan (for reporting)."""

    array: str
    primitive: str
    words: float
    nprocs: int
    cost: float

    def describe(self) -> str:
        return f"{self.primitive}({self.words:g}, {self.nprocs}) on {self.array} = {self.cost:g}"


def _n_of(grid: tuple[int, int], g: int) -> int:
    if g == 1:
        return grid[0]
    if g == 2:
        return grid[1]
    raise DistributionError(f"grid dimension must be 1 or 2, got {g}")


def _other_dim(g: int) -> int:
    return 2 if g == 1 else 1


def placement_change_terms(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    total_elements: int,
    grid: tuple[int, int],
    costs: CommCosts,
) -> list[RedistTerm]:
    """Redistribution terms for one array moving from *src* to *dst*."""
    if src.array != dst.array:
        raise DistributionError(f"placement arrays differ: {src.array} vs {dst.array}")
    if src.rank != dst.rank:
        raise DistributionError(f"{src.array}: placement ranks differ")
    terms: list[RedistTerm] = []
    D = float(total_elements)
    name = src.array

    for d in range(src.rank):
        gs, gd = src.dim_map[d], dst.dim_map[d]
        if gs is None:
            continue  # data available everywhere along this array dimension
        ns = _n_of(grid, gs)
        if ns <= 1:
            # A grid dimension of extent 1 means the array was never really
            # split along it; nothing to move.
            continue
        if gd == gs:
            if src.kinds[d] is not dst.kinds[d]:
                cost = costs.affine_transform(D / ns, ns)
                terms.append(RedistTerm(name, "AffineTransform", D / ns, ns, cost))
            continue
        if gd is None:
            cost = costs.many_to_many(D / ns, ns)
            terms.append(RedistTerm(name, "ManyToManyMulticast", D / ns, ns, cost))
            continue
        nd = _n_of(grid, gd)
        if dst.rest == "replicated":
            c1 = costs.many_to_many(D / ns, ns)
            terms.append(RedistTerm(name, "ManyToManyMulticast", D / ns, ns, c1))
            if nd > 1:
                c2 = costs.one_to_many(D, nd)
                terms.append(RedistTerm(name, "OneToManyMulticast", D, nd, c2))
        else:
            if nd > 1:
                cost = ns * costs.one_to_many(D / ns, nd)
                terms.append(
                    RedistTerm(name, f"{ns}xOneToManyMulticast", D / ns, nd, cost)
                )
            else:
                cost = costs.many_to_many(D / ns, ns)
                terms.append(RedistTerm(name, "ManyToManyMulticast", D / ns, ns, cost))

    # Replication along unused grid dimensions (rest fixed -> replicated)
    if src.rest == "fixed" and dst.rest == "replicated":
        used = dst.grid_dims()
        src_used = src.grid_dims()
        for g in (1, 2):
            if g in used or g in src_used:
                continue
            n = _n_of(grid, g)
            if n > 1:
                # Each holder multicasts its part along the unused dimension.
                holders = 1
                for gg in used:
                    holders *= _n_of(grid, gg)
                words = D / max(holders, 1)
                cost = costs.one_to_many(words, n)
                terms.append(RedistTerm(name, "OneToManyMulticast", words, n, cost))
    return terms


def redistribution_cost(
    src: Scheme,
    dst: Scheme,
    array_sizes: dict[str, int],
    grid: tuple[int, int],
    costs: CommCosts,
    arrays: tuple[str, ...] | None = None,
) -> tuple[float, list[RedistTerm]]:
    """Total cost (and plan) of changing layouts from *src* to *dst*.

    Only arrays present in both schemes (or in *arrays* when given) are
    considered; an array whose placement is unchanged costs nothing.
    """
    total = 0.0
    terms: list[RedistTerm] = []
    names = arrays if arrays is not None else tuple(
        a for a in src.arrays() if a in dst.arrays()
    )
    for name in names:
        sp = src.placement(name)
        dp = dst.placement(name)
        if sp == dp:
            continue
        if name not in array_sizes:
            raise DistributionError(f"no size known for array {name!r}")
        for term in placement_change_terms(sp, dp, array_sizes[name], grid, costs):
            total += term.cost
            terms.append(term)
    return total, terms


def replication_cost(
    placement: ArrayPlacement,
    total_elements: int,
    grid: tuple[int, int],
    costs: CommCosts,
) -> tuple[float, list[RedistTerm]]:
    """Cost of making an array fully replicated from *placement*.

    Used for loop-carried dependences where the next iteration reads the
    whole array everywhere (the paper's
    ``ManyToManyMulticast(m/N1, N1) + OneToManyMulticast(m, N2)``).
    """
    dst = ArrayPlacement(
        array=placement.array,
        dim_map=tuple(None for _ in placement.dim_map),
        kinds=placement.kinds,
        rest="replicated",
    )
    terms = placement_change_terms(placement, dst, total_elements, grid, costs)
    # Replicate along every grid dimension the source did not cover.
    used = placement.grid_dims()
    for g in (1, 2):
        if g in used:
            continue
        n = _n_of(grid, g)
        if n > 1 and placement.rest == "fixed":
            cost = costs.one_to_many(float(total_elements), n)
            terms.append(
                RedistTerm(placement.array, "OneToManyMulticast", float(total_elements), n, cost)
            )
    return sum(t.cost for t in terms), terms
