"""Cost and plan of changing data layouts between loop nests.

Algorithm 1 (§4) needs two communication-cost oracles:

* ``cost(P, P')`` — changing layouts from scheme ``P`` to scheme ``P'``
  between two adjacent loop nests (:func:`redistribution_cost`);
* ``loop_carried_dependence(T)`` — the communication at the boundary of
  the enclosing iterative loop, i.e. the cost of making the arrays
  *written* under the final scheme available where the *first* scheme
  reads them (:func:`loop_carried_cost` in :mod:`repro.dp.phases` builds
  on the same per-array primitive here).

Rules (derived from the paper's §4 worked example, where
``CTime1 = 0`` and
``CTime2 = ManyToManyMulticast(m/N1, N1) + OneToManyMulticast(m, N2)``):

=================================  =======================================
transition (per array dimension)   cost
=================================  =======================================
same mapping, same kind            0
not distributed -> distributed     0 when copies exist along the target
                                   grid dimension; Scatter(D/Nh, Nh) when
                                   the source pinned its copy (rest fixed)
                                   at coordinate 0 of an unused dimension
grid g -> not distributed          ManyToManyMulticast(D/Ng, Ng) when the
                                   destination keeps/replicates copies;
                                   Gather(D/Ng, Ng) when the destination
                                   pins them (rest fixed) at coordinate 0
grid g -> grid h, aligned          Transfer(D/Ng) x (Ng - 1) pairwise
  (Ng == Nh, same kind, fixed)     section moves (pure rank relabeling)
grid g -> grid h, rest fixed       Ng * OneToManyMulticast(D/Ng, Nh)
grid g -> grid h, rest replicated  ManyToManyMulticast(D/Ng, Ng)
                                   + OneToManyMulticast(D, Nh)
same mapping, kind change          AffineTransform(D/Ng, Ng)
fixed rest -> replicated rest      OneToManyMulticast over each unused
                                   grid dimension, one root per holder
=================================  =======================================

``D`` is the total element count of the array.  These match the paper's
terms exactly on its examples and degrade gracefully (all costs are zero
when the relevant grid extent is 1).

Every plan is an executable object: :mod:`repro.distribution.runtime`
lowers each :class:`RedistTerm` kind to real message traffic on the SPMD
engine, and ``repro.tools.report --redist`` reconciles the measured word
counts against :attr:`RedistTerm.volume` (see ``docs/REDISTRIBUTION.md``
for the per-kind slack bands).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Iterator

from repro.costmodel.primitives import CommCosts
from repro.distribution.schemes import ArrayPlacement, Scheme
from repro.errors import DistributionError

#: The complete set of primitives a planner may emit.
TERM_KINDS = (
    "Transfer",
    "Scatter",
    "Gather",
    "AffineTransform",
    "OneToManyMulticast",
    "ManyToManyMulticast",
)


@dataclass(frozen=True)
class RedistTerm:
    """One primitive invocation in a redistribution plan.

    ``cost`` is the term's total contribution to the analytic *time* (it
    already includes any serialization multiplier, e.g. the ``Ng x
    OneToManyMulticast`` remap rule).  ``count`` is the number of
    *parallel* instances the term stands for — parallel instances do not
    add time, but they do add traffic, so :attr:`volume` scales with it.
    """

    array: str
    primitive: str
    words: float
    nprocs: int
    cost: float
    count: int = 1

    @property
    def volume(self) -> float:
        """Analytic words put on the wire by this term (all instances)."""
        n, m = self.nprocs, self.words
        base = self.primitive.split("x")[-1]  # tolerate legacy "4xOneToMany..."
        if base == "Transfer":
            per = m
        elif base in ("Scatter", "Gather", "OneToManyMulticast"):
            per = (n - 1) * m
        elif base == "ManyToManyMulticast":
            per = n * (n - 1) * m
        elif base == "AffineTransform":
            per = n * m
        else:  # pragma: no cover - planner only emits TERM_KINDS
            raise DistributionError(f"unknown primitive {self.primitive!r}")
        return self.count * per

    def describe(self) -> str:
        head = f"{self.primitive}({self.words:g}, {self.nprocs})"
        if self.count != 1:
            head = f"{self.count} x {head}"
        return f"{head} on {self.array} = {self.cost:g}"


@dataclass(frozen=True)
class RedistPlan:
    """A full redistribution plan: the unified return shape of this module.

    Iterating a plan yields ``(total, list(terms))`` so call sites written
    against the historical tuple API keep working unchanged.
    """

    src: Scheme | ArrayPlacement
    dst: Scheme | ArrayPlacement
    grid: tuple[int, int]
    terms: tuple[RedistTerm, ...] = ()
    total: float = field(default=0.0)

    @classmethod
    def of(
        cls,
        src: Scheme | ArrayPlacement,
        dst: Scheme | ArrayPlacement,
        grid: tuple[int, int],
        terms: list[RedistTerm] | tuple[RedistTerm, ...],
    ) -> "RedistPlan":
        return cls(src, dst, tuple(grid), tuple(terms), sum(t.cost for t in terms))

    def __iter__(self) -> Iterator:
        yield self.total
        yield list(self.terms)

    @property
    def analytic_words(self) -> float:
        """Total words the analytic model says this plan moves."""
        return sum(t.volume for t in self.terms)

    def arrays(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for t in self.terms:
            seen.setdefault(t.array)
        return tuple(seen)

    def describe(self) -> str:
        lines = [f"redistribution on grid {self.grid[0]}x{self.grid[1]}:"]
        if not self.terms:
            lines.append("  (free: no data movement)")
        for t in self.terms:
            lines.append(f"  {t.describe()}")
        lines.append(
            f"  total = {self.total:g}, analytic words = {self.analytic_words:g}"
        )
        return "\n".join(lines)


def _n_of(grid: tuple[int, int], g: int) -> int:
    if g == 1:
        return grid[0]
    if g == 2:
        return grid[1]
    raise DistributionError(f"grid dimension must be 1 or 2, got {g}")


def _is_aligned_remap(
    src: ArrayPlacement, dst: ArrayPlacement, grid: tuple[int, int]
) -> bool:
    """True when src -> dst is a pure rank relabeling along one dimension.

    Exactly one array dimension moves from grid dim ``g`` to grid dim
    ``h`` with equal extents and the same kind, both placements pin their
    rest — then source section ``k`` lives at coordinate ``k`` of ``g``
    and is wanted at coordinate ``k`` of ``h``: a parallel pairwise
    Transfer, not a multicast.
    """
    if src.rest != "fixed" or dst.rest != "fixed":
        return False
    changed = [
        d
        for d in range(src.rank)
        if src.dim_map[d] != dst.dim_map[d] or src.kinds[d] != dst.kinds[d]
    ]
    if len(changed) != 1:
        return False
    d = changed[0]
    gs, gd = src.dim_map[d], dst.dim_map[d]
    if gs is None or gd is None or gs == gd:
        return False
    if src.kinds[d] != dst.kinds[d]:
        return False
    return _n_of(grid, gs) == _n_of(grid, gd)


def placement_change_terms(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    total_elements: int,
    grid: tuple[int, int],
    costs: CommCosts,
) -> list[RedistTerm]:
    """Redistribution terms for one array moving from *src* to *dst*."""
    if src.array != dst.array:
        raise DistributionError(f"placement arrays differ: {src.array} vs {dst.array}")
    if src.rank != dst.rank:
        raise DistributionError(f"{src.array}: placement ranks differ")
    terms: list[RedistTerm] = []
    D = float(total_elements)
    name = src.array
    aligned = _is_aligned_remap(src, dst, grid)
    # A replicated source keeps one full copy of the data per coordinate
    # of every unused grid dimension.  When the destination is also
    # replicated, each copy group performs the per-dimension collective
    # independently (same time, ncopies times the traffic) — mirror of
    # the runtime's parallel-group execution.  Toward a "fixed"
    # destination only the group holding the pinned home acts, so the
    # count stays 1 (and the runtime may even move *less* than the
    # aggregate rule charges by exploiting the spare copies).
    ncopies = 1
    if src.rest == "replicated" and dst.rest == "replicated":
        ncopies = prod(
            _n_of(grid, g) for g in (1, 2) if g not in src.grid_dims()
        )

    for d in range(src.rank):
        gs, gd = src.dim_map[d], dst.dim_map[d]
        if gs is None:
            if gd is None:
                continue
            nd = _n_of(grid, gd)
            if (
                nd > 1
                and src.rest == "fixed"
                and gd not in src.grid_dims()
            ):
                # The source pinned its copies at coordinate 0 of the
                # (previously unused) target dimension: splitting along it
                # is a Scatter from each pinned holder (parallel groups
                # share the aggregate D/Nh-word message convention, like
                # the Gather and ManyToManyMulticast rules).
                cost = costs.scatter(D / nd, nd)
                terms.append(RedistTerm(name, "Scatter", D / nd, nd, cost))
            # Otherwise copies already exist along gd (replication): free.
            continue
        ns = _n_of(grid, gs)
        if ns <= 1:
            # A grid dimension of extent 1 means the array was never really
            # split along it; nothing to move.
            continue
        if gd == gs:
            if src.kinds[d] is not dst.kinds[d]:
                cost = costs.affine_transform(D / ns, ns)
                terms.append(
                    RedistTerm(name, "AffineTransform", D / ns, ns, cost, count=ncopies)
                )
            continue
        if gd is None:
            if dst.rest == "fixed" and gs not in dst.grid_dims():
                # The destination pins its copies at coordinate 0 of gs:
                # collapsing the split is a Gather toward the pinned rank.
                cost = costs.gather(D / ns, ns)
                terms.append(RedistTerm(name, "Gather", D / ns, ns, cost))
            else:
                cost = costs.many_to_many(D / ns, ns)
                terms.append(
                    RedistTerm(
                        name, "ManyToManyMulticast", D / ns, ns, cost, count=ncopies
                    )
                )
            continue
        nd = _n_of(grid, gd)
        if dst.rest == "replicated":
            c1 = costs.many_to_many(D / ns, ns)
            terms.append(
                RedistTerm(name, "ManyToManyMulticast", D / ns, ns, c1, count=ncopies)
            )
            if nd > 1 and src.rest == "fixed":
                # After the departition, copies exist at every coordinate
                # of gs; each multicasts along gd in parallel (same time,
                # ns times the traffic).  A replicated source already has
                # copies along gd, so the spread is free there.
                c2 = costs.one_to_many(D, nd)
                terms.append(
                    RedistTerm(name, "OneToManyMulticast", D, nd, c2, count=ns)
                )
        elif aligned:
            # Section k moves from coordinate k of gs to coordinate k of
            # gd; section 0 is already in place, the other ns - 1 move in
            # parallel between disjoint rank pairs.
            cost = costs.transfer(D / ns)
            terms.append(
                RedistTerm(name, "Transfer", D / ns, ns, cost, count=ns - 1)
            )
        else:
            if nd > 1:
                cost = ns * costs.one_to_many(D / ns, nd)
                terms.append(
                    RedistTerm(name, "OneToManyMulticast", D / ns, nd, cost, count=ns)
                )
            else:
                cost = costs.many_to_many(D / ns, ns)
                terms.append(RedistTerm(name, "ManyToManyMulticast", D / ns, ns, cost))

    # Replication along unused grid dimensions (rest fixed -> replicated).
    if src.rest == "fixed" and dst.rest == "replicated":
        dst_used = dst.grid_dims()
        # Dimensions along which copies already spread: ones the
        # destination uses, plus ones a departition multicast just covered.
        spread = set(dst_used) | set(src.grid_dims())
        holders = prod(_n_of(grid, g) for g in dst_used) if dst_used else 1
        for g in (1, 2):
            if g in spread:
                continue
            n = _n_of(grid, g)
            if n > 1:
                # One multicast per existing copy, all in parallel.
                count = prod(
                    _n_of(grid, gg) for gg in spread if gg != g
                ) if spread else 1
                words = D / max(holders, 1)
                cost = costs.one_to_many(words, n)
                terms.append(
                    RedistTerm(name, "OneToManyMulticast", words, n, cost, count=count)
                )
            spread.add(g)
    return terms


def placement_change_plan(
    src: ArrayPlacement,
    dst: ArrayPlacement,
    total_elements: int,
    grid: tuple[int, int],
    costs: CommCosts,
) -> RedistPlan:
    """:func:`placement_change_terms` wrapped in a :class:`RedistPlan`."""
    terms = placement_change_terms(src, dst, total_elements, grid, costs)
    return RedistPlan.of(src, dst, grid, terms)


def redistribution_cost(
    src: Scheme,
    dst: Scheme,
    array_sizes: dict[str, int],
    grid: tuple[int, int],
    costs: CommCosts,
    arrays: tuple[str, ...] | None = None,
) -> RedistPlan:
    """The plan (total cost + terms) of changing layouts from *src* to *dst*.

    When *arrays* is None every array of *src* must also appear in *dst*
    — an array that silently vanishes from the destination scheme would
    make the move look free, so it raises :class:`DistributionError`
    instead.  Pass an explicit *arrays* tuple to scope the comparison
    (the DP does this for the intersection of adjacent segments).
    """
    total = 0.0
    terms: list[RedistTerm] = []
    if arrays is not None:
        names = arrays
    else:
        names = tuple(a for a in src.arrays() if a in dst.arrays())
        missing = tuple(a for a in src.arrays() if a not in dst.arrays())
        if missing:
            raise DistributionError(
                f"arrays {missing!r} appear in the source scheme but not the "
                "destination; pass arrays=... explicitly to scope the move"
            )
    for name in names:
        sp = src.placement(name)
        dp = dst.placement(name)
        if sp == dp:
            continue
        if name not in array_sizes:
            raise DistributionError(f"no size known for array {name!r}")
        for term in placement_change_terms(sp, dp, array_sizes[name], grid, costs):
            total += term.cost
            terms.append(term)
    return RedistPlan.of(src, dst, grid, terms)


def replication_cost(
    placement: ArrayPlacement,
    total_elements: int,
    grid: tuple[int, int],
    costs: CommCosts,
) -> RedistPlan:
    """Plan for making an array fully replicated from *placement*.

    Used for loop-carried dependences where the next iteration reads the
    whole array everywhere (the paper's
    ``ManyToManyMulticast(m/N1, N1) + OneToManyMulticast(m, N2)``).
    """
    dst = ArrayPlacement(
        array=placement.array,
        dim_map=tuple(None for _ in placement.dim_map),
        kinds=placement.kinds,
        rest="replicated",
    )
    return placement_change_plan(placement, dst, total_elements, grid, costs)
