"""1-D distribution functions (paper §2.1, Case 1).

The paper's distribution function for a 1-D data array entry ``A(i)`` is::

    f_A(i) = floor((d*i + disp) / block) [mod N]     (partitioned)
    f_A(i) = ALL                                     (replicated)

with ``d in {-1, +1}``; the optional ``mod N`` distinguishes *cyclic* from
*contiguous* partitioning.  The function returns the coordinate along the
grid dimension ``map(A)`` where ``A(i)`` is stored.

This module implements the function family exactly, plus the local/global
index bijections a runtime needs.  Array subscripts are 1-based as in
Fortran and the paper's figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import DistributionError


class Kind(enum.Enum):
    """Method of distribution/partition (paper parameters (1) and (2))."""

    BLOCK = "block"  # contiguous
    CYCLIC = "cyclic"  # block-cyclic; block=1 is pure cyclic
    REPLICATED = "replicated"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dist1D:
    """A 1-D distribution function over subscripts ``1..extent``.

    Parameters mirror the paper's six degrees of freedom:

    * ``kind`` — partitioned (block or cyclic) vs. replicated;
    * ``block`` — block size;
    * ``direction`` — ``d``: +1 increasing, -1 decreasing indexing;
    * ``disp`` — displacement applied to the subscript;
    * ``nprocs`` — processors along the mapped grid dimension;
    * ``grid_dim`` — which grid dimension the array dimension maps to.
    """

    extent: int
    kind: Kind
    nprocs: int = 1
    block: int = 1
    direction: int = 1
    disp: int = 0
    grid_dim: int = 1

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise DistributionError(f"extent must be >= 1, got {self.extent}")
        if self.kind is Kind.REPLICATED:
            return
        if self.nprocs < 1:
            raise DistributionError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.block < 1:
            raise DistributionError(f"block must be >= 1, got {self.block}")
        if self.direction not in (1, -1):
            raise DistributionError(f"direction must be +-1, got {self.direction}")
        if self.grid_dim < 1:
            raise DistributionError(f"grid_dim must be >= 1, got {self.grid_dim}")
        if self.kind is Kind.BLOCK:
            # Contiguous: the image of 1..extent must fall inside [0, nprocs).
            lo = self.owner(1)
            hi = self.owner(self.extent)
            for p in (lo, hi):
                if not (0 <= p < self.nprocs):
                    raise DistributionError(
                        f"contiguous distribution maps subscripts outside the grid: "
                        f"owner range [{min(lo, hi)}, {max(lo, hi)}] with N={self.nprocs}"
                    )

    # -- constructors ----------------------------------------------------
    @staticmethod
    def block_dist(
        extent: int, nprocs: int, grid_dim: int = 1, direction: int = 1
    ) -> "Dist1D":
        """Standard contiguous distribution ``floor((i-1)/ceil(extent/N))``.

        With ``direction=-1`` the blocks are assigned in decreasing
        subscript order (paper parameter (3)).
        """
        if nprocs < 1:
            raise DistributionError(f"nprocs must be >= 1, got {nprocs}")
        size = -(-extent // nprocs)  # ceil division
        if direction == 1:
            disp = -1
        else:
            # d=-1: f(i) = floor((extent - i) / size); extent maps to proc 0.
            disp = extent
        return Dist1D(
            extent=extent,
            kind=Kind.BLOCK,
            nprocs=nprocs,
            block=size,
            direction=direction,
            disp=disp,
            grid_dim=grid_dim,
        )

    @staticmethod
    def cyclic_dist(
        extent: int,
        nprocs: int,
        block: int = 1,
        grid_dim: int = 1,
        direction: int = 1,
    ) -> "Dist1D":
        """Cyclic distribution ``floor((i-1)/block) mod N`` (paper §6)."""
        disp = -1 if direction == 1 else extent
        return Dist1D(
            extent=extent,
            kind=Kind.CYCLIC,
            nprocs=nprocs,
            block=block,
            direction=direction,
            disp=disp,
            grid_dim=grid_dim,
        )

    @staticmethod
    def replicated(extent: int) -> "Dist1D":
        """Replication on all processors (small arrays, §2)."""
        return Dist1D(extent=extent, kind=Kind.REPLICATED)

    # -- the distribution function ----------------------------------------
    @property
    def is_replicated(self) -> bool:
        return self.kind is Kind.REPLICATED

    def owner(self, i: int) -> int | None:
        """``f_A(i)``: grid coordinate storing ``A(i)``; None if replicated."""
        if not (1 <= i <= self.extent):
            raise DistributionError(f"subscript {i} outside 1..{self.extent}")
        if self.kind is Kind.REPLICATED:
            return None
        x = self.direction * i + self.disp
        q = x // self.block
        if self.kind is Kind.CYCLIC:
            return q % self.nprocs
        return q

    def owners(self) -> np.ndarray:
        """Vector of owners for subscripts ``1..extent`` (replicated: -1)."""
        if self.kind is Kind.REPLICATED:
            return np.full(self.extent, -1, dtype=np.int64)
        i = np.arange(1, self.extent + 1, dtype=np.int64)
        q = np.floor_divide(self.direction * i + self.disp, self.block)
        if self.kind is Kind.CYCLIC:
            q = np.mod(q, self.nprocs)
        return q

    # -- local/global bijections -------------------------------------------
    @cached_property
    def _owned(self) -> list[np.ndarray]:
        """For each processor, the ascending global subscripts it owns."""
        if self.kind is Kind.REPLICATED:
            return [np.arange(1, self.extent + 1, dtype=np.int64)]
        owners = self.owners()
        return [
            (np.nonzero(owners == p)[0] + 1).astype(np.int64) for p in range(self.nprocs)
        ]

    def indices_of(self, p: int) -> np.ndarray:
        """Global subscripts owned by processor *p*, ascending."""
        if self.kind is Kind.REPLICATED:
            return self._owned[0]
        if not (0 <= p < self.nprocs):
            raise DistributionError(f"processor {p} outside 0..{self.nprocs - 1}")
        return self._owned[p]

    def local_count(self, p: int) -> int:
        """Number of elements processor *p* stores."""
        return int(len(self.indices_of(p)))

    def max_local_count(self) -> int:
        """Size of the largest local block (load-balance denominator)."""
        if self.kind is Kind.REPLICATED:
            return self.extent
        return max(self.local_count(p) for p in range(self.nprocs))

    def local_index(self, i: int) -> int:
        """0-based position of global subscript *i* in its owner's storage."""
        owner = self.owner(i)
        owned = self._owned[0 if owner is None else owner]
        pos = int(np.searchsorted(owned, i))
        if pos >= len(owned) or owned[pos] != i:
            raise DistributionError(f"subscript {i} not found in owner storage")
        return pos

    def global_index(self, p: int, local: int) -> int:
        """Inverse of :meth:`local_index` for processor *p*."""
        owned = self.indices_of(p)
        if not (0 <= local < len(owned)):
            raise DistributionError(
                f"local index {local} outside 0..{len(owned) - 1} on processor {p}"
            )
        return int(owned[local])

    # -- descriptions --------------------------------------------------------
    def formula(self, symbol: str = "i") -> str:
        """Human-readable ``f_A`` formula in the paper's notation."""
        if self.kind is Kind.REPLICATED:
            return "replicated"
        term = symbol if self.direction == 1 else f"-{symbol}"
        if self.disp > 0:
            term = f"{term} + {self.disp}"
        elif self.disp < 0:
            term = f"{term} - {-self.disp}"
        body = f"floor(({term}) / {self.block})"
        if self.kind is Kind.CYCLIC:
            body = f"{body} mod {self.nprocs}"
        return body

    def __str__(self) -> str:
        if self.kind is Kind.REPLICATED:
            return "replicated"
        tail = "" if self.direction == 1 else ", decreasing"
        return f"{self.kind.value}(N={self.nprocs}, b={self.block}, dim={self.grid_dim}{tail})"
