"""Distribution schemes — the ``P_{i,j}`` objects of Algorithm 1 (§4).

A :class:`Scheme` records, for every array of a program, which grid
dimension each array dimension is mapped to (or replication), the
partitioning kind per dimension (contiguous vs cyclic), and how the array
behaves along grid dimensions it is *not* mapped to (the "remaining
dimensions" rule at the end of §2.1: a specific location, or replicated).

Schemes are immutable and hashable so the dynamic-programming algorithm
can use them as table entries, and they can be *materialized* into
concrete :class:`~repro.distribution.function.Dist1D` /
:class:`~repro.distribution.function2d.Dist2D` objects for a given grid
shape and problem size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DistributionError
from repro.distribution.function import Dist1D, Kind
from repro.distribution.function2d import Coupling, Dist2D


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array.

    ``dim_map[d]`` is the grid dimension (1-based) that array dimension
    ``d`` maps to, or ``None`` when that array dimension is not
    distributed.  ``kinds[d]`` selects contiguous vs cyclic.  ``rest``
    says what happens along grid dimensions the array does not occupy:
    ``"replicated"`` (a copy in every position) or ``"fixed"`` (one
    location).
    """

    array: str
    dim_map: tuple[int | None, ...]
    kinds: tuple[Kind, ...] = ()
    rest: str = "fixed"

    def __post_init__(self) -> None:
        if not self.kinds:
            object.__setattr__(
                self, "kinds", tuple(Kind.BLOCK for _ in self.dim_map)
            )
        if len(self.kinds) != len(self.dim_map):
            raise DistributionError(
                f"{self.array}: kinds and dim_map lengths differ "
                f"({len(self.kinds)} vs {len(self.dim_map)})"
            )
        if self.rest not in ("fixed", "replicated"):
            raise DistributionError(f"rest must be fixed|replicated, got {self.rest!r}")
        used = [g for g in self.dim_map if g is not None]
        if len(used) != len(set(used)):
            raise DistributionError(
                f"{self.array}: two array dimensions mapped to one grid dimension"
            )

    @property
    def rank(self) -> int:
        return len(self.dim_map)

    def grid_dims(self) -> frozenset[int]:
        return frozenset(g for g in self.dim_map if g is not None)

    def is_fully_replicated(self) -> bool:
        return all(g is None for g in self.dim_map) and self.rest == "replicated"

    def describe(self) -> str:
        parts = []
        for d, (g, k) in enumerate(zip(self.dim_map, self.kinds), start=1):
            if g is None:
                parts.append(f"dim{d}:*")
            else:
                parts.append(f"dim{d}->grid{g}({k.value})")
        return f"{self.array}[{', '.join(parts)}; rest={self.rest}]"


@dataclass(frozen=True)
class Scheme:
    """A whole-program distribution scheme on an ``N1 x N2`` grid shape.

    The grid shape here is *symbolic* (how many grid dimensions are used);
    concrete ``(N1, N2)`` values are chosen later by the grid search, as
    the paper prescribes (§2.2: first align assuming equal Ni, then pick
    the Ni by minimizing total time).
    """

    placements: tuple[ArrayPlacement, ...]
    name: str = ""

    def __post_init__(self) -> None:
        names = [p.array for p in self.placements]
        if len(names) != len(set(names)):
            raise DistributionError("duplicate array placement in scheme")

    @staticmethod
    def of(*placements: ArrayPlacement, name: str = "") -> "Scheme":
        return Scheme(tuple(sorted(placements, key=lambda p: p.array)), name=name)

    def placement(self, array: str) -> ArrayPlacement:
        for p in self.placements:
            if p.array == array:
                return p
        raise DistributionError(f"scheme has no placement for array {array!r}")

    def arrays(self) -> tuple[str, ...]:
        return tuple(p.array for p in self.placements)

    def describe(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return label + "; ".join(p.describe() for p in self.placements)

    # -- materialization -------------------------------------------------
    def materialize(
        self,
        array: str,
        extents: tuple[int, ...],
        grid: tuple[int, int],
    ) -> Dist1D | Dist2D:
        """Concrete distribution of *array* for grid shape ``(N1, N2)``."""
        p = self.placement(array)
        if len(extents) != p.rank:
            raise DistributionError(
                f"{array}: placement rank {p.rank} but extents {extents}"
            )
        n_of = {1: grid[0], 2: grid[1]}

        def dist_for(dim: int) -> Dist1D:
            g = p.dim_map[dim]
            if g is None:
                return Dist1D.replicated(extents[dim])
            n = n_of[g]
            if p.kinds[dim] is Kind.CYCLIC:
                return Dist1D.cyclic_dist(extents[dim], n, grid_dim=g)
            return Dist1D.block_dist(extents[dim], n, grid_dim=g)

        if p.rank == 1:
            return dist_for(0)
        if p.rank == 2:
            return Dist2D(rows=dist_for(0), cols=dist_for(1), coupling=Coupling.INDEPENDENT)
        raise DistributionError(f"{array}: only rank 1 and 2 arrays supported")


def scheme_from_directives(program, name: str = "directives") -> Scheme:
    """Build a :class:`Scheme` from a program's DISTRIBUTE directives.

    Distributed dimensions are assigned grid dimensions in order (first
    distributed dimension -> grid dim 1, second -> grid dim 2); ``*``
    dimensions stay undistributed.  Arrays without a directive are fully
    replicated (the paper's rule for scalars and small arrays).  1-D
    arrays whose single specifier is ``*`` are replicated outright.
    """
    from repro.lang.ast import Program  # local import to avoid a cycle

    if not isinstance(program, Program):
        raise DistributionError("scheme_from_directives expects a parsed Program")
    placements = []
    for arr_name, decl in program.arrays.items():
        specs = program.directives.get(arr_name)
        if specs is None:
            placements.append(
                ArrayPlacement(
                    array=arr_name,
                    dim_map=tuple(None for _ in range(decl.rank)),
                    rest="replicated",
                )
            )
            continue
        dim_map: list[int | None] = []
        kinds: list[Kind] = []
        next_grid = 1
        for spec in specs:
            if spec == "*":
                dim_map.append(None)
                kinds.append(Kind.BLOCK)
            else:
                if next_grid > 2:
                    raise DistributionError(
                        f"{arr_name}: more than two distributed dimensions"
                    )
                dim_map.append(next_grid)
                kinds.append(Kind.CYCLIC if spec == "CYCLIC" else Kind.BLOCK)
                next_grid += 1
        placements.append(
            ArrayPlacement(
                array=arr_name,
                dim_map=tuple(dim_map),
                kinds=tuple(kinds),
                rest="fixed",
            )
        )
    return Scheme.of(*placements, name=name)
