"""Layout rendering — reproduces Fig 1 block pictures and Tables 3-4.

These renderers turn distribution functions into the visual artifacts the
paper uses to communicate layouts:

* :func:`layout_matrix` / :func:`render_layout` — the "which processor
  holds this element" pictures of Fig 1 (a)-(h);
* :func:`ownership_table` — per-processor element listings like Table 3
  (Jacobi on a 4-processor linear array) and Table 4 (SOR).
"""

from __future__ import annotations

import numpy as np

from repro.distribution.function import Dist1D
from repro.distribution.function2d import Dist2D
from repro.util.tables import Table, render_grid


def layout_matrix(dist: Dist2D) -> np.ndarray:
    """Array of owner labels, one per element: ``"p1p2"`` strings.

    A replicated coordinate renders as ``*`` (every position along that
    grid dimension holds a copy).
    """
    g1, g2 = dist.owner_grids

    def label(a: int, b: int) -> str:
        s1 = "*" if a < 0 else str(a)
        s2 = "*" if b < 0 else str(b)
        return s1 + s2

    m, n = g1.shape
    out = np.empty((m, n), dtype=object)
    for i in range(m):
        for j in range(n):
            out[i, j] = label(int(g1[i, j]), int(g2[i, j]))
    return out


def block_summary(dist: Dist2D) -> np.ndarray:
    """Collapse equal-owner runs: the coarse block picture of Fig 1.

    Works when the layout is composed of rectangular uniform tiles (all the
    Fig 1 examples); each tile contributes one cell.
    """
    labels = layout_matrix(dist)
    m, n = labels.shape
    row_edges = [0] + [i for i in range(1, m) if any(labels[i, j] != labels[i - 1, j] for j in range(n))] + [m]
    col_edges = [0] + [j for j in range(1, n) if any(labels[i, j] != labels[i, j - 1] for i in range(m))] + [n]
    rows = []
    for ri in range(len(row_edges) - 1):
        row = []
        for ci in range(len(col_edges) - 1):
            row.append(labels[row_edges[ri], col_edges[ci]])
        rows.append(row)
    return np.array(rows, dtype=object)


def render_layout(dist: Dist2D, title: str | None = None, coarse: bool = True) -> str:
    """ASCII rendering of a 2-D layout (Fig 1 style)."""
    cells = block_summary(dist) if coarse else layout_matrix(dist)
    return render_grid(cells.tolist(), title=title)


def _element_label(name: str, *subs: int) -> str:
    if all(s <= 9 for s in subs):
        return name + "".join(str(s) for s in subs)
    return f"{name}({','.join(str(s) for s in subs)})"


def _owned_elements(name: str, dist: Dist1D | Dist2D, proc: int) -> tuple[list[str], bool]:
    """(labels, replicated?) for the elements of *name* on linear rank *proc*.

    For a linear processor arrangement we flatten: a 1-D distribution's
    grid coordinate is the rank; a 2-D distribution must be distributed in
    at most one grid dimension (row or column blocks), which covers the
    paper's Tables 3-4.
    """
    if isinstance(dist, Dist1D):
        if dist.is_replicated:
            return [_element_label(name, int(i)) for i in dist.indices_of(0)], True
        return [_element_label(name, int(i)) for i in dist.indices_of(proc)], False
    # 2-D: exactly one of rows/cols partitioned.
    if dist.rows.is_replicated == dist.cols.is_replicated:
        if dist.rows.is_replicated:
            labels = [
                _element_label(name, i, j)
                for i in range(1, dist.extents[0] + 1)
                for j in range(1, dist.extents[1] + 1)
            ]
            return labels, True
        # Both partitioned: flatten (p1, p2) lexicographically is ambiguous on
        # a linear array; report the p1 = proc row of the grid.
        pairs = [
            (i, j)
            for p2 in range(dist.n2)
            for (i, j) in dist.indices_of(proc, p2)
        ]
        return [_element_label(name, i, j) for i, j in sorted(pairs)], False
    if not dist.rows.is_replicated:
        rows = dist.rows.indices_of(proc)
        labels = [
            _element_label(name, int(i), j)
            for i in rows
            for j in range(1, dist.extents[1] + 1)
        ]
        return labels, False
    cols = dist.cols.indices_of(proc)
    labels = [
        _element_label(name, i, int(j))
        for j in cols
        for i in range(1, dist.extents[0] + 1)
    ]
    return labels, False


def ownership_table(
    entries: list[tuple[str, Dist1D | Dist2D]],
    nprocs: int,
    title: str | None = None,
) -> str:
    """Render per-processor data layouts (paper Tables 3-4).

    Replicated arrays are shown in parentheses, exactly as the paper lists
    the replicated copy of ``X`` (Table 3) and ``V`` (Table 4).
    """
    table = Table(["processor"] + [name for name, _ in entries], title=title)
    for proc in range(nprocs):
        row: list[str] = [f"processor {proc}"]
        for name, dist in entries:
            labels, replicated = _owned_elements(name, dist, proc)
            text = " ".join(labels)
            row.append(f"({text})" if replicated else text)
        table.add_row(row)
    return table.render()
