"""The paper's generalized data distribution functions (§2.1).

* :class:`~repro.distribution.function.Dist1D` — 1-D distribution
  function ``f_A(i) = floor((d*i + disp)/block) [mod N]`` or replication;
* :class:`~repro.distribution.function2d.Dist2D` — 2-D distributions,
  independent per dimension or *rotated* (Cannon-style skewing);
* layout renderers reproducing Fig 1 and Tables 3-4;
* :mod:`~repro.distribution.schemes` — whole-program distribution schemes
  (the ``P_{i,j}`` objects of Algorithm 1);
* :mod:`~repro.distribution.redistribution` — cost and plan of changing
  layouts between loop nests (the ``cost(P, P')`` of Algorithm 1);
* :mod:`~repro.distribution.sections` — which global elements each rank
  owns under a placement (the executable side of §2.1);
* :mod:`~repro.distribution.runtime` — lowering of
  :class:`~repro.distribution.redistribution.RedistPlan` terms to real
  message traffic, and the :func:`~repro.distribution.runtime.redistribute`
  runtime call.
"""

from repro.distribution.function import Dist1D, Kind
from repro.distribution.function2d import Coupling, Dist2D
from repro.distribution.layout import layout_matrix, ownership_table, render_layout
from repro.distribution.redistribution import (
    RedistPlan,
    RedistTerm,
    placement_change_plan,
    redistribution_cost,
    replication_cost,
)
from repro.distribution.runtime import (
    RedistLowering,
    lower_placement_delta,
    redistribute,
)
from repro.distribution.schemes import ArrayPlacement, Scheme, scheme_from_directives
from repro.distribution.sections import (
    assemble,
    local_indices,
    pack_section,
    section_table,
)

__all__ = [
    "Dist1D",
    "Kind",
    "Dist2D",
    "Coupling",
    "layout_matrix",
    "render_layout",
    "ownership_table",
    "Scheme",
    "ArrayPlacement",
    "scheme_from_directives",
    "RedistPlan",
    "RedistTerm",
    "placement_change_plan",
    "redistribution_cost",
    "replication_cost",
    "RedistLowering",
    "lower_placement_delta",
    "redistribute",
    "assemble",
    "local_indices",
    "pack_section",
    "section_table",
]
