"""The paper's generalized data distribution functions (§2.1).

* :class:`~repro.distribution.function.Dist1D` — 1-D distribution
  function ``f_A(i) = floor((d*i + disp)/block) [mod N]`` or replication;
* :class:`~repro.distribution.function2d.Dist2D` — 2-D distributions,
  independent per dimension or *rotated* (Cannon-style skewing);
* layout renderers reproducing Fig 1 and Tables 3-4;
* :mod:`~repro.distribution.schemes` — whole-program distribution schemes
  (the ``P_{i,j}`` objects of Algorithm 1);
* :mod:`~repro.distribution.redistribution` — cost and plan of changing
  layouts between loop nests (the ``cost(P, P')`` of Algorithm 1).
"""

from repro.distribution.function import Dist1D, Kind
from repro.distribution.function2d import Coupling, Dist2D
from repro.distribution.layout import layout_matrix, ownership_table, render_layout
from repro.distribution.redistribution import redistribution_cost, replication_cost
from repro.distribution.schemes import ArrayPlacement, Scheme, scheme_from_directives

__all__ = [
    "Dist1D",
    "Kind",
    "Dist2D",
    "Coupling",
    "layout_matrix",
    "render_layout",
    "ownership_table",
    "Scheme",
    "ArrayPlacement",
    "scheme_from_directives",
    "redistribution_cost",
    "replication_cost",
]
