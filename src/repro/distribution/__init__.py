"""The paper's generalized data distribution functions (§2.1).

* :class:`~repro.distribution.function.Dist1D` — 1-D distribution
  function ``f_A(i) = floor((d*i + disp)/block) [mod N]`` or replication;
* :class:`~repro.distribution.function2d.Dist2D` — 2-D distributions,
  independent per dimension or *rotated* (Cannon-style skewing);
* layout renderers reproducing Fig 1 and Tables 3-4;
* :mod:`~repro.distribution.schemes` — whole-program distribution schemes
  (the ``P_{i,j}`` objects of Algorithm 1);
* :mod:`~repro.distribution.redistribution` — cost and plan of changing
  layouts between loop nests (the ``cost(P, P')`` of Algorithm 1);
* :mod:`~repro.distribution.sections` — which global elements each rank
  owns under a placement (the executable side of §2.1);
* :mod:`~repro.distribution.runtime` — lowering of
  :class:`~repro.distribution.redistribution.RedistPlan` terms to real
  message traffic, and the :func:`~repro.distribution.runtime.redistribute`
  runtime call.
"""

from repro.distribution.function import Dist1D, Kind
from repro.distribution.function2d import (
    Coupling,
    Dist2D,
    cannon_a_layout,
    cannon_b_layout,
)
from repro.distribution.layout import (
    block_summary,
    layout_matrix,
    ownership_table,
    render_layout,
)
from repro.distribution.redistribution import (
    RedistPlan,
    RedistTerm,
    placement_change_plan,
    placement_change_terms,
    redistribution_cost,
    replication_cost,
)
from repro.distribution.runtime import (
    AllgatherOp,
    BcastOp,
    ExchangeOp,
    GatherOp,
    RedistLowering,
    RegridOp,
    ScatterOp,
    TransferOp,
    lower_placement_delta,
    redistribute,
)
from repro.distribution.schemes import ArrayPlacement, Scheme, scheme_from_directives
from repro.distribution.sections import (
    assemble,
    dim_distribution,
    grid_coords,
    grid_rank,
    groups_along,
    local_indices,
    pack_section,
    section_table,
)
from repro.distribution.sparse import SparsePlacement

__all__ = [
    "Dist1D",
    "Kind",
    "Dist2D",
    "Coupling",
    "cannon_a_layout",
    "cannon_b_layout",
    "layout_matrix",
    "render_layout",
    "ownership_table",
    "block_summary",
    "Scheme",
    "ArrayPlacement",
    "SparsePlacement",
    "scheme_from_directives",
    "RedistPlan",
    "RedistTerm",
    "placement_change_plan",
    "placement_change_terms",
    "redistribution_cost",
    "replication_cost",
    "RedistLowering",
    "lower_placement_delta",
    "redistribute",
    "TransferOp",
    "BcastOp",
    "AllgatherOp",
    "GatherOp",
    "ScatterOp",
    "RegridOp",
    "ExchangeOp",
    "assemble",
    "local_indices",
    "pack_section",
    "section_table",
    "grid_coords",
    "grid_rank",
    "groups_along",
    "dim_distribution",
]
