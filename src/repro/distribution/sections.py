"""Local-section enumeration: which elements each rank holds under a placement.

The executable redistribution runtime (:mod:`repro.distribution.runtime`)
needs the *extensional* meaning of an :class:`ArrayPlacement` on a concrete
``(N1, N2)`` grid: for every rank, the exact set of array elements stored
there.  This module derives it from the paper's distribution functions:

* an array dimension mapped to grid dimension ``g`` constrains the rank's
  coordinate along ``g`` to the :class:`~repro.distribution.function.Dist1D`
  owner of the subscript (block or cyclic, exactly as
  :meth:`~repro.distribution.schemes.Scheme.materialize` would build it);
* an *unmapped* array dimension is never split — every holder stores the
  full extent along it;
* a grid dimension used by no array dimension is governed by ``rest``:
  ``"replicated"`` places a copy at every coordinate, ``"fixed"`` pins the
  single copy at coordinate 0 (the placement's *home* position).

Ranks are row-major over the grid, ``rank = p1 * N2 + p2``, matching
:class:`repro.machine.topology.Grid2D`.  Sections are reported as sorted
0-based **flat** indices in C order, so a rank's local values of a global
array ``a`` are ``a.reshape(-1)[local_indices(...)]``.
"""

from __future__ import annotations

from functools import lru_cache
from math import prod

import numpy as np

from repro.distribution.function import Dist1D, Kind
from repro.distribution.schemes import ArrayPlacement
from repro.errors import DistributionError


def grid_coords(rank: int, grid: tuple[int, int]) -> tuple[int, int]:
    """Grid coordinates ``(p1, p2)`` of *rank* (row-major, like Grid2D)."""
    n1, n2 = grid
    if not (0 <= rank < n1 * n2):
        raise DistributionError(f"rank {rank} outside grid {n1}x{n2}")
    return divmod(rank, n2)


def grid_rank(p1: int, p2: int, grid: tuple[int, int]) -> int:
    """Inverse of :func:`grid_coords`."""
    n1, n2 = grid
    if not (0 <= p1 < n1 and 0 <= p2 < n2):
        raise DistributionError(f"({p1}, {p2}) outside grid {n1}x{n2}")
    return p1 * n2 + p2


def groups_along(grid: tuple[int, int], g: int) -> list[tuple[int, ...]]:
    """All rank groups that vary only along grid dimension *g*, in order.

    Mirrors :meth:`repro.machine.topology.Grid2D.dim_group`: for ``g == 1``
    a group is one grid column (``p2`` fixed), for ``g == 2`` one grid row.
    """
    n1, n2 = grid
    if g == 1:
        return [tuple(grid_rank(p1, p2, grid) for p1 in range(n1)) for p2 in range(n2)]
    if g == 2:
        return [tuple(grid_rank(p1, p2, grid) for p2 in range(n2)) for p1 in range(n1)]
    raise DistributionError(f"grid dimension must be 1 or 2, got {g}")


def dim_distribution(
    placement: ArrayPlacement, d: int, extent: int, grid: tuple[int, int]
) -> Dist1D:
    """The concrete 1-D distribution of array dimension *d* (paper §2.1)."""
    g = placement.dim_map[d]
    if g is None:
        return Dist1D.replicated(extent)
    n = grid[g - 1]
    if placement.kinds[d] is Kind.CYCLIC:
        return Dist1D.cyclic_dist(extent, n, grid_dim=g)
    return Dist1D.block_dist(extent, n, grid_dim=g)


def _owner_vectors(
    placement: ArrayPlacement, extents: tuple[int, ...], grid: tuple[int, int]
) -> tuple[np.ndarray, ...]:
    """Per-dimension owner vectors (−1 where the dimension is unsplit)."""
    out = []
    for d, extent in enumerate(extents):
        dist = dim_distribution(placement, d, extent, grid)
        out.append(dist.owners())
    return tuple(out)


@lru_cache(maxsize=512)
def _section_table_cached(
    placement: ArrayPlacement, extents: tuple[int, ...], grid: tuple[int, int]
) -> tuple[np.ndarray, ...]:
    if len(extents) != placement.rank:
        raise DistributionError(
            f"{placement.array}: placement rank {placement.rank} but extents {extents}"
        )
    if placement.rank not in (1, 2):
        raise DistributionError(
            f"{placement.array}: only rank 1 and 2 arrays supported, got {placement.rank}"
        )
    n1, n2 = grid
    owners = _owner_vectors(placement, extents, grid)
    used = placement.grid_dims()
    sections: list[np.ndarray] = []
    for rank in range(n1 * n2):
        coords = grid_coords(rank, grid)
        # A grid dimension used by no array dimension is governed by `rest`:
        # fixed pins the copy at coordinate 0 of that dimension.
        empty = False
        for g in (1, 2):
            if g in used or grid[g - 1] <= 1:
                continue
            if placement.rest == "fixed" and coords[g - 1] != 0:
                empty = True
        if empty:
            sections.append(np.empty(0, dtype=np.int64))
            continue
        masks = []
        for d in range(placement.rank):
            g = placement.dim_map[d]
            if g is None:
                masks.append(np.ones(extents[d], dtype=bool))
            else:
                masks.append(owners[d] == coords[g - 1])
        if placement.rank == 1:
            flat = np.flatnonzero(masks[0])
        else:
            flat = np.flatnonzero(np.outer(masks[0], masks[1]).reshape(-1))
        sections.append(flat.astype(np.int64))
    return tuple(sections)


def section_table(
    placement: ArrayPlacement, extents: tuple[int, ...], grid: tuple[int, int]
) -> tuple[np.ndarray, ...]:
    """Per-rank local sections: sorted flat indices, one array per rank.

    The returned arrays are shared and cached — treat them as read-only.
    """
    return _section_table_cached(placement, tuple(extents), tuple(grid))


def local_indices(
    placement: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
    rank: int,
) -> np.ndarray:
    """Sorted flat global indices stored at *rank* under *placement*."""
    return section_table(placement, extents, grid)[rank]


def pack_section(
    values: np.ndarray,
    placement: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
    rank: int,
) -> np.ndarray:
    """Local values of *rank*: the global array filtered to its section."""
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    if flat.size != prod(extents):
        raise DistributionError(
            f"{placement.array}: array has {flat.size} elements, extents say {prod(extents)}"
        )
    return flat[local_indices(placement, extents, grid, rank)]


def assemble(
    sections: dict[int, np.ndarray],
    placement: ArrayPlacement,
    extents: tuple[int, ...],
    grid: tuple[int, int],
) -> np.ndarray:
    """Rebuild the full (flat) global array from per-rank local values.

    Raises :class:`DistributionError` when the sections do not cover the
    array (a partition must; a fixed placement needs every holder present).
    """
    total = prod(extents)
    out = np.zeros(total, dtype=np.float64)
    have = np.zeros(total, dtype=bool)
    table = section_table(placement, extents, grid)
    for rank, local in sections.items():
        idx = table[rank]
        if len(local) != len(idx):
            raise DistributionError(
                f"{placement.array}: rank {rank} supplied {len(local)} values "
                f"for a section of {len(idx)}"
            )
        out[idx] = local
        have[idx] = True
    if not have.all():
        raise DistributionError(
            f"{placement.array}: sections cover {int(have.sum())}/{total} elements"
        )
    return out
