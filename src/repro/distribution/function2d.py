"""2-D distribution functions (paper §2.1, Case 2).

The paper generalizes prior work by allowing the two dimensions of a 2-D
distribution to be *dependent*::

    f_A(i, j) = (z1, z2)                               independent
    f_A(i, j) = (z1, (d1*z1 + d2*z2) mod N_map(A2))    A2 rotated by A1
    f_A(i, j) = ((d1*z1 + d2*z2) mod N_map(A1), z2)    A1 rotated by A2

where ``z1``/``z2`` come from 1-D distribution functions and
``d1, d2 in {-1, +1}``.  Rotation expresses Cannon-style skewed layouts
(Fig 1 (b), (c)) that an independent-per-dimension model cannot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import DistributionError
from repro.distribution.function import Dist1D, Kind


class Coupling(enum.Enum):
    INDEPENDENT = "independent"
    ROTATE_DIM2 = "rotate-dim2"  # second coordinate skewed by the first
    ROTATE_DIM1 = "rotate-dim1"  # first coordinate skewed by the second


@dataclass(frozen=True)
class Dist2D:
    """Distribution of a 2-D array ``A(i, j)``, ``1 <= i, j <= extents``."""

    rows: Dist1D
    cols: Dist1D
    coupling: Coupling = Coupling.INDEPENDENT
    d1: int = 1
    d2: int = 1

    def __post_init__(self) -> None:
        if self.d1 not in (1, -1) or self.d2 not in (1, -1):
            raise DistributionError("rotation signs d1, d2 must be +-1")
        if self.coupling is not Coupling.INDEPENDENT:
            if self.rows.is_replicated or self.cols.is_replicated:
                raise DistributionError("rotated distributions require both dims partitioned")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def block_block(m: int, n: int, n1: int, n2: int) -> "Dist2D":
        """Fig 1 (a): independent contiguous blocks on an n1 x n2 grid."""
        return Dist2D(
            rows=Dist1D.block_dist(m, n1, grid_dim=1),
            cols=Dist1D.block_dist(n, n2, grid_dim=2),
        )

    @staticmethod
    def row_blocks(m: int, n: int, n1: int) -> "Dist2D":
        """Fig 1 (d): rows partitioned on dim 1, columns replicated."""
        return Dist2D(
            rows=Dist1D.block_dist(m, n1, grid_dim=1),
            cols=Dist1D.replicated(n),
        )

    @staticmethod
    def col_blocks(m: int, n: int, n2: int) -> "Dist2D":
        """Columns partitioned on dim 2, rows replicated (SOR layout)."""
        return Dist2D(
            rows=Dist1D.replicated(m),
            cols=Dist1D.block_dist(n, n2, grid_dim=2),
        )

    @property
    def n1(self) -> int:
        return 1 if self.rows.is_replicated else self.rows.nprocs

    @property
    def n2(self) -> int:
        return 1 if self.cols.is_replicated else self.cols.nprocs

    @property
    def extents(self) -> tuple[int, int]:
        return (self.rows.extent, self.cols.extent)

    # -- the distribution function ----------------------------------------
    def owner(self, i: int, j: int) -> tuple[int | None, int | None]:
        """``f_A(i, j)``: (grid-dim-1, grid-dim-2) coordinates of A(i, j)."""
        z1 = self.rows.owner(i)
        z2 = self.cols.owner(j)
        if self.coupling is Coupling.INDEPENDENT:
            return (z1, z2)
        assert z1 is not None and z2 is not None
        mix = self.d1 * z1 + self.d2 * z2
        if self.coupling is Coupling.ROTATE_DIM2:
            return (z1, mix % self.cols.nprocs)
        return (mix % self.rows.nprocs, z2)

    @cached_property
    def owner_grids(self) -> tuple[np.ndarray, np.ndarray]:
        """(P1, P2) integer grids over the full array (-1 = replicated)."""
        m, n = self.extents
        z1 = self.rows.owners()[:, None] * np.ones((1, n), dtype=np.int64)
        z2 = np.ones((m, 1), dtype=np.int64) * self.cols.owners()[None, :]
        if self.coupling is Coupling.INDEPENDENT:
            return (z1, z2)
        mix = self.d1 * z1 + self.d2 * z2
        if self.coupling is Coupling.ROTATE_DIM2:
            return (z1, np.mod(mix, self.cols.nprocs))
        return (np.mod(mix, self.rows.nprocs), z2)

    def indices_of(self, p1: int, p2: int) -> list[tuple[int, int]]:
        """All (i, j) subscript pairs stored at processor (p1, p2)."""
        g1, g2 = self.owner_grids
        mask = np.ones(g1.shape, dtype=bool)
        if not self.rows.is_replicated or self.coupling is not Coupling.INDEPENDENT:
            mask &= (g1 == p1) | (g1 == -1)
        if not self.cols.is_replicated or self.coupling is not Coupling.INDEPENDENT:
            mask &= (g2 == p2) | (g2 == -1)
        ii, jj = np.nonzero(mask)
        return [(int(i) + 1, int(j) + 1) for i, j in zip(ii, jj)]

    def local_count(self, p1: int, p2: int) -> int:
        return len(self.indices_of(p1, p2))

    def is_partition(self) -> bool:
        """True when every element has exactly one owner (no replication)."""
        return not (self.rows.is_replicated or self.cols.is_replicated)

    def __str__(self) -> str:
        base = f"rows[{self.rows}] x cols[{self.cols}]"
        if self.coupling is Coupling.INDEPENDENT:
            return base
        return f"{base}, {self.coupling.value}(d1={self.d1:+d}, d2={self.d2:+d})"


def cannon_a_layout(n: int, p: int) -> Dist2D:
    """The initially-skewed layout of A in Cannon's algorithm (Fig 1 (b)).

    Block row ``z1`` is rotated left by ``z1`` positions:
    ``f(i, j) = (z1, (z2 - z1) mod p)`` — stored *at* processor
    ``(z1, (z2 - z1) mod p)`` so the paper's form with ``d1 = d2 = -1``
    applied to the *home* coordinate gives the same picture read as "which
    block sits on processor column c".
    """
    return Dist2D(
        rows=Dist1D.block_dist(n, p, grid_dim=1),
        cols=Dist1D.block_dist(n, p, grid_dim=2),
        coupling=Coupling.ROTATE_DIM2,
        d1=-1,
        d2=1,
    )


def cannon_b_layout(n: int, p: int) -> Dist2D:
    """The initially-skewed layout of B in Cannon: column-wise rotation.

    ``f(i, j) = ((z1 - z2) mod p, z2)`` — block column ``z2`` rotated up by
    ``z2`` positions (Fig 1 (c) mirror).
    """
    return Dist2D(
        rows=Dist1D.block_dist(n, p, grid_dim=1),
        cols=Dist1D.block_dist(n, p, grid_dim=2),
        coupling=Coupling.ROTATE_DIM1,
        d1=1,
        d2=-1,
    )
