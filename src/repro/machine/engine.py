"""Discrete-event SPMD engine.

An SPMD program is a generator function ``def prog(p: Proc, *args)``.
Each of the ``P`` logical processors runs one instance of the program.
Local computation is accounted with :meth:`Proc.compute`; communication
uses :meth:`Proc.send` (plain call, buffered/non-blocking, like the
paper's ``send_to_right``) and :meth:`Proc.recv` (blocking, must be
invoked as ``value = yield from p.recv(src)``).

Clock semantics (see :mod:`repro.machine.model`):

* ``compute(flops)`` advances the local clock by ``flops * tf``;
* ``send`` advances the sender by its occupancy and stamps the message
  with its availability time;
* ``recv`` waits (in simulated time) until the message is available,
  then pays the receiver occupancy.

Because sends never block and receives name their source, the simulated
timestamps and all numeric results are independent of the engine's
scheduling order — the simulation is deterministic.

The engine detects deadlock (every live processor blocked on an empty
channel) and raises :class:`repro.errors.DeadlockError`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import CommunicationError, DeadlockError, MachineError
from repro.machine.metrics import Metrics
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.machine.trace import TraceEvent

Channel = tuple[int, int, int]  # (source, dest, tag)


def _payload_words(data: Any) -> int:
    """Number of machine words a payload occupies on the wire."""
    if isinstance(data, np.ndarray):
        return int(data.size)
    if isinstance(data, (int, float, complex, np.integer, np.floating)):
        return 1
    if isinstance(data, (tuple, list)):
        return sum(_payload_words(item) for item in data)
    if data is None:
        return 0
    raise CommunicationError(
        f"cannot infer word count for payload of type {type(data).__name__}; pass words="
    )


def _payload_copy(data: Any) -> Any:
    """Snapshot a payload so later sender-side mutation cannot corrupt it."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, list):
        return [_payload_copy(item) for item in data]
    if isinstance(data, tuple):
        return tuple(_payload_copy(item) for item in data)
    return data


@dataclass
class _Message:
    data: Any
    words: int
    available: float  # simulated time at which the receiver may consume it
    sent_at: float
    source: int
    dest: int
    tag: int


@dataclass
class RunResult:
    """Outcome of an SPMD run.

    Attributes
    ----------
    values:
        Per-rank return value of the program generator.
    finish_times:
        Per-rank simulated clock at termination.
    makespan:
        ``max(finish_times)`` — the paper's "total execution time".
    message_count / message_words:
        Aggregate communication volume.
    trace:
        Per-rank event lists (only when tracing was enabled).
    metrics:
        Aggregated per-rank / per-tag / per-collective counters
        (:class:`repro.machine.metrics.Metrics`), always populated.
    """

    values: list[Any]
    finish_times: list[float]
    message_count: int
    message_words: int
    trace: list[list[TraceEvent]] | None = None
    metrics: Metrics | None = None

    @property
    def makespan(self) -> float:
        return max(self.finish_times) if self.finish_times else 0.0

    def value(self, rank: int = 0) -> Any:
        return self.values[rank]


class Proc:
    """Handle through which an SPMD program interacts with the machine."""

    def __init__(self, engine: "Engine", rank: int) -> None:
        self._engine = engine
        self.rank = rank
        self.clock = 0.0
        self.scope = ""  # active collective label stack (see scoped())

    # -- identity -------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self._engine.topology.size

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    @property
    def model(self) -> MachineModel:
        return self._engine.model

    def __repr__(self) -> str:
        return f"Proc(rank={self.rank}, clock={self.clock:.3f})"

    @contextmanager
    def scoped(self, label: str) -> Iterator["Proc"]:
        """Label every event recorded inside the block with *label*.

        Nested scopes join with ``/`` (``allreduce/reduce``), so metrics
        can attribute time and volume to the primitive that caused it.
        """
        prev = self.scope
        self.scope = f"{prev}/{label}" if prev else label
        try:
            yield self
        finally:
            self.scope = prev

    # -- local work -------------------------------------------------------
    def compute(self, flops: float, label: str = "") -> None:
        """Account *flops* floating-point operations of local work."""
        if flops < 0:
            raise MachineError(f"negative flops: {flops}")
        start = self.clock
        self.clock += self._engine.model.flops(flops)
        self._engine.record(
            self.rank, "compute", start, self.clock, detail=label, words=0, scope=self.scope
        )

    def delay(self, seconds: float, label: str = "") -> None:
        """Advance the local clock by raw simulated seconds."""
        if seconds < 0:
            raise MachineError(f"negative delay: {seconds}")
        start = self.clock
        self.clock += seconds
        self._engine.record(
            self.rank, "delay", start, self.clock, detail=label, words=0, scope=self.scope
        )

    # -- point-to-point ---------------------------------------------------
    def send(self, dest: int, data: Any, words: int | None = None, tag: int = 0) -> None:
        """Buffered non-blocking send (plain call — do *not* ``yield from``)."""
        self._engine.topology.check_rank(dest)
        if dest == self.rank:
            raise CommunicationError(f"P{self.rank} attempted to send to itself")
        nwords = _payload_words(data) if words is None else int(words)
        if nwords < 0:
            raise CommunicationError(f"negative message size {nwords}")
        model = self._engine.model
        start = self.clock
        self.clock += model.send_occupancy(nwords)
        hops = self._engine.topology.hops(self.rank, dest)
        available = self.clock + model.wire_latency(nwords, hops)
        msg = _Message(
            data=_payload_copy(data),
            words=nwords,
            available=available,
            sent_at=start,
            source=self.rank,
            dest=dest,
            tag=tag,
        )
        self._engine.deliver(msg)
        self._engine.record(
            self.rank, "send", start, self.clock, peer=dest, words=nwords, tag=tag,
            scope=self.scope,
        )

    def recv(self, source: int, tag: int = 0) -> Generator[Any, None, Any]:
        """Blocking receive — use as ``value = yield from p.recv(source)``.

        Accounting is split: the interval from blocking until the message
        became available is recorded as an idle ``wait`` event (omitted
        when the message was already there), and only the receiver
        occupancy (drain) is recorded as the ``recv`` event.
        """
        self._engine.topology.check_rank(source)
        if source == self.rank:
            raise CommunicationError(f"P{self.rank} attempted to receive from itself")
        channel: Channel = (source, self.rank, tag)
        block_start = self.clock
        while True:
            msg = self._engine.try_pop(channel)
            if msg is not None:
                break
            yield channel  # parked by the engine until a send arrives
        model = self._engine.model
        arrival = max(block_start, msg.available)
        if arrival > block_start:
            self._engine.record(
                self.rank, "wait", block_start, arrival, peer=source, words=msg.words,
                tag=tag, scope=self.scope,
            )
        self.clock = arrival + model.recv_occupancy(msg.words)
        self._engine.record(
            self.rank, "recv", arrival, self.clock, peer=source, words=msg.words, tag=tag,
            scope=self.scope,
        )
        return msg.data

    def probe(self, source: int, tag: int = 0) -> bool:
        """True when a matching message is already queued (no time cost)."""
        return self._engine.has_message((source, self.rank, tag))


class Engine:
    """Owns processor state, message queues and the scheduler."""

    def __init__(
        self,
        topology: Topology,
        model: MachineModel | None = None,
        trace: bool = False,
    ) -> None:
        self.topology = topology
        self.model = model or MachineModel()
        self.procs = [Proc(self, r) for r in range(topology.size)]
        self._queues: dict[Channel, deque[_Message]] = {}
        self._waiting: dict[Channel, int] = {}  # channel -> parked rank
        self.message_count = 0
        self.message_words = 0
        self._tracing = trace
        self.trace: list[list[TraceEvent]] = [[] for _ in range(topology.size)]
        self.metrics = Metrics(topology.size)

    def _reset_run_state(self) -> None:
        """Start every :meth:`run` from a clean slate.

        Clocks, message counters, queues and trace lanes used to leak
        across repeated ``run()`` calls on the same engine; new lists are
        bound (not cleared) so results returned from earlier runs stay
        valid.
        """
        for proc in self.procs:
            proc.clock = 0.0
            proc.scope = ""
        self._queues = {}
        self._waiting = {}
        self.message_count = 0
        self.message_words = 0
        self.trace = [[] for _ in self.procs]
        self.metrics = Metrics(self.topology.size)

    # -- messaging ------------------------------------------------------
    def deliver(self, msg: _Message) -> None:
        channel: Channel = (msg.source, msg.dest, msg.tag)
        self._queues.setdefault(channel, deque()).append(msg)
        self.message_count += 1
        self.message_words += msg.words
        parked = self._waiting.pop(channel, None)
        if parked is not None:
            self._runnable.append(parked)

    def try_pop(self, channel: Channel) -> _Message | None:
        queue = self._queues.get(channel)
        if not queue:
            return None
        return queue.popleft()

    def has_message(self, channel: Channel) -> bool:
        queue = self._queues.get(channel)
        return bool(queue)

    def record(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        peer: int | None = None,
        words: int = 0,
        tag: int = 0,
        detail: str = "",
        scope: str = "",
    ) -> None:
        self.metrics.observe(
            rank, kind, start, end, peer=peer, words=words, tag=tag, scope=scope
        )
        if self._tracing:
            self.trace[rank].append(
                TraceEvent(
                    rank=rank,
                    kind=kind,
                    start=start,
                    end=end,
                    peer=peer,
                    words=words,
                    tag=tag,
                    detail=detail,
                    scope=scope,
                )
            )

    # -- scheduler --------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator],
        args: tuple = (),
        kwargs: dict | None = None,
        per_rank_args: list[tuple] | None = None,
    ) -> RunResult:
        """Run one instance of *program* per rank to completion."""
        self._reset_run_state()
        kwargs = kwargs or {}
        gens: list[Generator | None] = []
        values: list[Any] = [None] * len(self.procs)
        for proc in self.procs:
            rank_args = per_rank_args[proc.rank] if per_rank_args is not None else args
            result = program(proc, *rank_args, **kwargs)
            if not isinstance(result, Generator):
                # Pure-compute programs may be plain functions.
                values[proc.rank] = result
                gens.append(None)
            else:
                gens.append(result)

        self._runnable: deque[int] = deque(
            rank for rank, gen in enumerate(gens) if gen is not None
        )
        live = len(self._runnable)

        while live:
            if not self._runnable:
                blocked = {
                    rank: f"recv(source={ch[0]}, tag={ch[2]})"
                    for ch, rank in self._waiting.items()
                }
                raise DeadlockError(blocked)
            rank = self._runnable.popleft()
            gen = gens[rank]
            assert gen is not None
            try:
                channel = next(gen)
            except StopIteration as stop:
                values[rank] = stop.value
                gens[rank] = None
                live -= 1
                continue
            if self.has_message(channel):
                # Message raced in while the generator was yielding: retry.
                self._runnable.append(rank)
            else:
                if channel in self._waiting:
                    raise CommunicationError(
                        f"two processors waiting on the same channel {channel}"
                    )
                self._waiting[channel] = rank

        return RunResult(
            values=values,
            finish_times=[p.clock for p in self.procs],
            message_count=self.message_count,
            message_words=self.message_words,
            trace=self.trace if self._tracing else None,
            metrics=self.metrics,
        )


def run_spmd(
    program: Callable[..., Generator],
    topology: Topology,
    model: MachineModel | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    per_rank_args: list[tuple] | None = None,
    trace: bool = False,
) -> RunResult:
    """Convenience front end: build an :class:`Engine` and run *program*.

    Parameters
    ----------
    program:
        Generator function ``def program(p: Proc, *args, **kwargs)``.
    per_rank_args:
        Optional per-rank positional arguments (e.g. scattered input
        blocks); overrides *args* when given.
    """
    engine = Engine(topology, model=model, trace=trace)
    return engine.run(program, args=args, kwargs=kwargs, per_rank_args=per_rank_args)
