"""Discrete-event SPMD engine.

An SPMD program is a generator function ``def prog(p: Proc, *args)``.
Each of the ``P`` logical processors runs one instance of the program.
Local computation is accounted with :meth:`Proc.compute`; communication
uses :meth:`Proc.send` (plain call, buffered/non-blocking, like the
paper's ``send_to_right``) and :meth:`Proc.recv` (blocking, must be
invoked as ``value = yield from p.recv(src)``).

Clock semantics (see :mod:`repro.machine.model`):

* ``compute(flops)`` advances the local clock by ``flops * tf``;
* ``send`` advances the sender by its occupancy and stamps the message
  with its availability time;
* ``recv`` waits (in simulated time) until the message is available,
  then pays the receiver occupancy.

Because sends never block and receives name their source, the simulated
timestamps and all numeric results are independent of the engine's
scheduling order — the simulation is deterministic.  Fault injection
(:mod:`repro.machine.faults`) preserves this: message fates are pure
functions of ``(seed, channel, attempt)``, so a seeded crash-free plan
moves clocks but never payloads.

The scheduler is an indexed event calendar (:class:`EventCalendar`):
one heap holding ready events (FIFO by a monotonic sequence number) and
timed-receive deadlines (ordered by ``(deadline, rank)``), plus reverse
indexes from parked ranks to their channels and from source ranks to
the nonblocking waiters listening on them.  Every scheduler step is
O(log N) or better — no full scans — while reproducing the historic
deque scheduler's event order bit-exactly (see ``docs/ENGINE.md`` for
the tie-break contract and the parity goldens that pin it).

The engine detects deadlock (every live processor blocked on an empty
channel) and raises :class:`repro.errors.DeadlockError` carrying a
:class:`repro.machine.forensics.DeadlockReport`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any

import numpy as np

from repro.errors import (
    CommunicationError,
    DeadlockError,
    MachineError,
    RankCrashedError,
)
from repro.machine.faults import FaultPlan, FaultState
from repro.machine.forensics import RECENT_EVENTS, build_report
from repro.machine.metrics import Metrics
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.machine.trace import TraceLane
from repro.obs.context import stamp_current

Channel = tuple[int, int, int]  # (source, dest, tag)


def park_channels(parked: Any) -> tuple[Channel, ...]:
    """Normalize a scheduler park request to a tuple of channels.

    A blocked receive yields one ``(source, dest, tag)`` channel; a
    ``waitany`` (:mod:`repro.machine.nonblocking`) yields a tuple of
    them, meaning "wake me when a message arrives on *any*".  Both engine
    backends share this normalization.
    """
    if parked and isinstance(parked[0], tuple):
        return tuple(parked)
    return (parked,)

#: Tag offset for engine-synthesized acknowledgements of reliable sends.
#: Program tags must stay below this; the reliable layer listens on
#: ``ACK_TAG_BASE + tag`` for the ack of a data message sent on ``tag``.
ACK_TAG_BASE = 1 << 20


class _TimedOut:
    """Singleton sentinel returned by :meth:`Proc.recv_deadline` on timeout."""

    _instance = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMED_OUT"

    def __bool__(self) -> bool:
        return False


TIMED_OUT = _TimedOut()


#: Heap time of a ready event.  Every timed-receive deadline is clamped
#: to the (nonnegative) local clock, so READY sorts strictly before any
#: deadline: ready work always drains before a timeout may fire.
READY = -1.0


class EventCalendar:
    """Indexed event calendar: one heap of ``(time, a, b)`` entries.

    Two entry shapes share the heap:

    * ready events ``(READY, seq, rank)`` — *seq* is a monotonically
      increasing counter, so among ready events the heap pops in exact
      FIFO push order (the historic deque scheduler's order);
    * timeout events ``(deadline, rank, gen)`` — among due timeouts the
      heap pops the smallest ``(deadline, rank)``, the historic
      ``min(self._timed, ...)`` tie-break, reproduced bit-exactly.

    Timeout entries are invalidated lazily: cancelling (or re-arming) a
    rank's deadline bumps its generation counter and the stale heap entry
    is discarded when it surfaces.  ``timed`` is the live rank → deadline
    view (consumed by the deadlock forensics report).
    """

    __slots__ = ("_heap", "_seq", "timed", "_gen")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self.timed: dict[int, float] = {}
        self._gen: dict[int, int] = {}

    def push_ready(self, rank: int) -> None:
        self._seq += 1
        heappush(self._heap, (READY, self._seq, rank))

    def push_timeout(self, rank: int, deadline: float) -> None:
        self.timed[rank] = deadline
        gen = self._gen.get(rank, 0) + 1
        self._gen[rank] = gen
        heappush(self._heap, (deadline, rank, gen))

    def cancel_timeout(self, rank: int) -> None:
        if self.timed.pop(rank, None) is not None:
            self._gen[rank] += 1  # the heap entry is now stale

    def pop_ready(self) -> int | None:
        """Next runnable rank in FIFO order, or ``None`` when drained."""
        heap = self._heap
        if heap and heap[0][0] == READY:
            return heappop(heap)[2]
        return None

    def pop_due_timeout(self) -> int | None:
        """Disarm and return the earliest live timed waiter, if any."""
        heap = self._heap
        gen = self._gen
        while heap:
            time, rank, g = heap[0]
            if time == READY:
                return None
            heappop(heap)
            if gen.get(rank) == g:
                del self.timed[rank]
                return rank
        return None


def _payload_words(data: Any, path: str = "payload") -> int:
    """Number of machine words a payload occupies on the wire.

    *path* names the location inside a nested container so that a
    failure message can point at the offending key or index.
    """
    if isinstance(data, np.ndarray):
        if data.dtype == object:
            # An object array (e.g. a ragged list of gather index
            # vectors) stores references; count the referents.
            return sum(
                _payload_words(item, f"{path}[{i}]")
                for i, item in enumerate(data.flat)
            )
        if data.dtype.names:
            # Structured gather payloads: .size counts records, not
            # fields — charge each named field's column separately.
            return sum(
                _payload_words(data[name], f"{path}[{name!r}]")
                for name in data.dtype.names
            )
        return int(data.size)
    if isinstance(data, (bool, np.bool_)):
        return 1
    if isinstance(data, (int, float, complex, np.integer, np.floating)):
        return 1
    if isinstance(data, np.void):
        # One record of a structured array (e.g. msg[0]): per-field.
        return sum(
            _payload_words(data[name], f"{path}[{name!r}]")
            for name in data.dtype.names or ()
        )
    if isinstance(data, dict):
        return sum(_payload_words(v, f"{path}[{k!r}]") for k, v in data.items())
    if isinstance(data, (tuple, list)):
        return sum(_payload_words(item, f"{path}[{i}]") for i, item in enumerate(data))
    if data is None:
        return 0
    raise CommunicationError(
        f"cannot infer word count for {path} of type {type(data).__name__}; pass words="
    )


def _payload_copy(data: Any) -> Any:
    """Snapshot a payload so later sender-side mutation cannot corrupt it."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, dict):
        return {key: _payload_copy(value) for key, value in data.items()}
    if isinstance(data, list):
        return [_payload_copy(item) for item in data]
    if isinstance(data, tuple):
        return tuple(_payload_copy(item) for item in data)
    return data


@dataclass(slots=True)
class _Message:
    data: Any
    words: int
    available: float  # simulated time at which the receiver may consume it
    sent_at: float
    source: int
    dest: int
    tag: int
    seq: int | None = None  # sequence number of reliable transfers
    system: bool = False  # engine-synthesized (acks): excluded from counters


@dataclass
class RunResult:
    """Outcome of an SPMD run.

    Attributes
    ----------
    values:
        Per-rank return value of the program generator.
    finish_times:
        Per-rank simulated clock at termination.
    makespan:
        ``max(finish_times)`` — the paper's "total execution time".
    message_count / message_words:
        Aggregate communication volume (program messages only; the acks
        synthesized for reliable transfers are accounted in
        ``metrics.faults`` instead).
    trace:
        Per-rank event lanes (only when tracing was enabled).  Lanes are
        :class:`repro.machine.trace.TraceLane` sequences that materialize
        :class:`~repro.machine.trace.TraceEvent` objects lazily.
    metrics:
        Aggregated per-rank / per-tag / per-collective counters
        (:class:`repro.machine.metrics.Metrics`), always populated.
    """

    values: list[Any]
    finish_times: list[float]
    message_count: int
    message_words: int
    trace: list[TraceLane] | None = None
    metrics: Metrics | None = None

    @property
    def makespan(self) -> float:
        return max(self.finish_times) if self.finish_times else 0.0

    def value(self, rank: int = 0) -> Any:
        return self.values[rank]


class Proc:
    """Handle through which an SPMD program interacts with the machine."""

    def __init__(self, engine: "Engine", rank: int) -> None:
        self._engine = engine
        self.rank = rank
        self.clock = 0.0
        self.scope = ""  # active collective label stack (see scoped())
        # Channel endpoints already validated by _check_channel; endpoint
        # validity is stateless, so successes are cached per direction.
        self._ok_send: set[tuple[int, int]] = set()
        self._ok_recv: set[tuple[int, int]] = set()

    # -- identity -------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self._engine.topology.size

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    @property
    def model(self) -> MachineModel:
        return self._engine.model

    def __repr__(self) -> str:
        return f"Proc(rank={self.rank}, clock={self.clock:.3f})"

    @contextmanager
    def scoped(self, label: str) -> Iterator["Proc"]:
        """Label every event recorded inside the block with *label*.

        Nested scopes join with ``/`` (``allreduce/reduce``), so metrics
        can attribute time and volume to the primitive that caused it.
        """
        prev = self.scope
        self.scope = f"{prev}/{label}" if prev else label
        try:
            yield self
        finally:
            self.scope = prev

    # -- fault hooks ------------------------------------------------------
    def _scaled(self, seconds: float) -> float:
        """Apply this rank's injected slowdown factor to a local duration."""
        faults = self._engine.faults
        return seconds if faults is None else seconds * faults.slowdown(self.rank)

    def _maybe_crash(self) -> None:
        """Fire a pending injected crash once the local clock reaches it."""
        faults = self._engine.faults
        if faults is None:
            return
        crash = faults.crash_due(self.rank, self.clock)
        if crash is not None:
            self._engine.record(
                self.rank, "fault", self.clock, self.clock, detail="crash",
                scope=self.scope,
            )
            raise RankCrashedError(crash.rank, crash.at_time)

    def mark(self, detail: str, peer: int | None = None, tag: int = 0) -> None:
        """Record a zero-duration resilience marker (``fault`` event).

        Used by the reliable-transfer and checkpoint layers to surface
        ``retry`` / ``checkpoint`` / ``restore`` events into
        :attr:`Metrics.faults` and the Chrome-trace export.
        """
        self._engine.record(
            self.rank, "fault", self.clock, self.clock, peer=peer, tag=tag,
            detail=detail, scope=self.scope,
        )

    # -- local work -------------------------------------------------------
    def compute(self, flops: float, label: str = "") -> None:
        """Account *flops* floating-point operations of local work."""
        if flops < 0:
            raise MachineError(f"negative flops: {flops}")
        engine = self._engine
        start = self.clock
        seconds = engine.model.flops(flops)
        faults = engine.faults
        if faults is not None:
            seconds *= faults.slowdown(self.rank)
        self.clock = start + seconds
        engine.record(
            self.rank, "compute", start, self.clock, None, 0, 0, label, self.scope
        )
        if faults is not None:
            self._maybe_crash()

    def delay(self, seconds: float, label: str = "") -> None:
        """Advance the local clock by raw simulated seconds."""
        if seconds < 0:
            raise MachineError(f"negative delay: {seconds}")
        engine = self._engine
        start = self.clock
        faults = engine.faults
        if faults is not None:
            seconds = seconds * faults.slowdown(self.rank)
        self.clock = start + seconds
        engine.record(
            self.rank, "delay", start, self.clock, None, 0, 0, label, self.scope
        )
        if faults is not None:
            self._maybe_crash()

    # -- point-to-point ---------------------------------------------------
    def _check_channel(self, peer: int, tag: int, sending: bool) -> None:
        """Validate a point-to-point endpoint; identical in both backends."""
        verb = "send to" if sending else "receive from"
        if isinstance(peer, bool) or not isinstance(peer, (int, np.integer)):
            raise CommunicationError(
                f"P{self.rank} cannot {verb} rank {peer!r}: rank must be an integer"
            )
        nprocs = self._engine.topology.size
        if not 0 <= peer < nprocs:
            raise CommunicationError(
                f"P{self.rank} cannot {verb} rank {int(peer)}: "
                f"valid ranks are 0..{nprocs - 1}"
            )
        if peer == self.rank:
            raise CommunicationError(f"P{self.rank} attempted to {verb} itself")
        if tag < 0:
            raise CommunicationError(
                f"P{self.rank} cannot {verb} P{int(peer)} with negative tag {tag}"
            )

    def send(
        self,
        dest: int,
        data: Any,
        words: int | None = None,
        tag: int = 0,
        *,
        seq: int | None = None,
        posted: bool = False,
    ) -> None:
        """Buffered non-blocking send (plain call — do *not* ``yield from``).

        *seq* marks the message as reliable traffic: the engine assigns
        sequence-number deduplication and synthesizes an ack on
        ``ACK_TAG_BASE + tag`` (see :mod:`repro.machine.resilient`).

        *posted* injects the message through the nonblocking path
        (:mod:`repro.machine.nonblocking`): the sender pays only the
        per-message startup (:meth:`MachineModel.post_occupancy`) and the
        NIC streams the body concurrently
        (:meth:`MachineModel.posted_wire_latency`); the event is recorded
        as ``isend`` instead of ``send``.
        """
        engine = self._engine
        if (dest, tag) not in self._ok_send:
            self._check_channel(dest, tag, sending=True)
            self._ok_send.add((dest, tag))
        nwords = _payload_words(data) if words is None else int(words)
        if nwords < 0:
            raise CommunicationError(f"negative message size {nwords}")
        model = engine.model
        faults = engine.faults
        start = self.clock
        hops_cache = engine._hops
        key = (self.rank, dest)
        hops = hops_cache.get(key)
        if hops is None:
            hops = hops_cache[key] = engine.topology.hops(self.rank, dest)
        if posted:
            occupancy = model.post_occupancy(nwords)
            if faults is not None:
                occupancy *= faults.slowdown(self.rank)
            self.clock = start + occupancy
            available = self.clock + model.posted_wire_latency(nwords, hops)
            kind = "isend"
        else:
            occupancy = model.send_occupancy(nwords)
            if faults is not None:
                occupancy *= faults.slowdown(self.rank)
            self.clock = start + occupancy
            available = self.clock + model.wire_latency(nwords, hops)
            kind = "send"
        msg = _Message(
            _payload_copy(data), nwords, available, start, self.rank, dest, tag, seq
        )
        # Record the send before dispatching: dispatch may append
        # zero-duration fault markers at the send's end time, and lanes
        # must stay time-ordered for the critical-path walker.
        engine.record(
            self.rank, kind, start, self.clock, dest, nwords, tag, "", self.scope
        )
        if faults is None and seq is None:
            engine.deliver(msg)  # fast path: nothing to inject or ack
        else:
            self._dispatch(msg)
            self._maybe_crash()

    def _dispatch(self, msg: _Message) -> None:
        """Route one message copy through the fault plan, then commit it.

        Runs entirely on the sending rank (synchronously inside ``send``),
        so the per-channel attempt counters and dedup state the engine
        keeps are confined to one thread per channel — no locks needed
        beyond the engine's own delivery lock in the threaded backend.
        """
        engine = self._engine
        faults = engine.faults
        if faults is None:
            self._commit(msg)
            return
        channel: Channel = (msg.source, msg.dest, msg.tag)
        attempt = engine.next_attempt(channel)
        fate = faults.fate(
            msg.source, msg.dest, msg.tag, attempt,
            reliable=msg.seq is not None, is_ack=msg.system,
        )
        prefix = "ack-" if msg.system else ""
        if fate.drop:
            engine.record(
                self.rank, "fault", self.clock, self.clock, peer=msg.dest,
                tag=msg.tag, detail=f"{prefix}drop", scope=self.scope,
            )
            return
        if fate.delay > 0.0:
            msg.available += fate.delay
            engine.record(
                self.rank, "fault", self.clock, self.clock, peer=msg.dest,
                tag=msg.tag, detail=f"{prefix}delay", scope=self.scope,
            )
        self._commit(msg)
        if fate.duplicate:
            engine.record(
                self.rank, "fault", self.clock, self.clock, peer=msg.dest,
                tag=msg.tag, detail="duplicate", scope=self.scope,
            )
            self._commit(replace(msg, data=_payload_copy(msg.data)))

    def _commit(self, msg: _Message) -> None:
        """Deliver one surviving copy, with receiver-side dedup and acks.

        Reliable data messages (``seq`` set, not system) are deduplicated
        per channel; a suppressed duplicate is still re-acked, otherwise a
        sender whose ack was dropped would retry forever.
        """
        engine = self._engine
        if msg.seq is None or msg.system:
            engine.deliver(msg)
            return
        channel: Channel = (msg.source, msg.dest, msg.tag)
        last = engine._reliable_last.get(channel, -1)
        if msg.seq <= last:
            engine.record(
                self.rank, "fault", self.clock, self.clock, peer=msg.dest,
                tag=msg.tag, detail="dup-suppressed", scope=self.scope,
            )
        else:
            engine._reliable_last[channel] = msg.seq
            engine.deliver(msg)
        self._ack(msg)

    def _ack(self, data_msg: _Message) -> None:
        """Synthesize the hardware-level ack for a reliable data message.

        The ack is a *system* message: it models the NIC acknowledging
        receipt, costs no occupancy on either rank, is excluded from the
        program's message counters, and becomes available one word-time
        after the data did.  Acks themselves pass through the fault plan
        (droppable, delayable) but are never duplicated or deduplicated.

        A machine that the fault plan has killed by the time the data
        lands does not ack: the sender's retries go unanswered and it
        raises :class:`repro.errors.RetryExhaustedError`, the crash
        symptom the resilient supervisor restarts on.  (The check uses
        the *plan*, not the fired state, so it is independent of how far
        the doomed rank's thread has actually progressed.)
        """
        model = self._engine.model
        faults = self._engine.faults
        if faults is not None and faults.crashed_by(
            data_msg.dest, data_msg.available
        ) is not None:
            self._engine.record(
                self.rank, "fault", self.clock, self.clock, peer=data_msg.dest,
                tag=data_msg.tag, detail="ack-dead", scope=self.scope,
            )
            return
        ack = _Message(
            data=data_msg.seq,
            words=1,
            available=data_msg.available + model.words(1),
            sent_at=data_msg.available,
            source=data_msg.dest,
            dest=data_msg.source,
            tag=ACK_TAG_BASE + data_msg.tag,
            seq=data_msg.seq,
            system=True,
        )
        self._engine.record(
            self.rank, "fault", self.clock, self.clock, peer=data_msg.dest,
            tag=data_msg.tag, detail="ack", scope=self.scope,
        )
        self._dispatch(ack)

    def _timeout(
        self, block_start: float, source: int, tag: int, deadline: float
    ) -> Any:
        """Account a timed receive that expired: idle until the deadline."""
        engine = self._engine
        if deadline > block_start:
            engine.record(
                self.rank, "wait", block_start, deadline, peer=source, words=0,
                tag=tag, scope=self.scope,
            )
        self.clock = max(self.clock, deadline)
        engine.record(
            self.rank, "fault", self.clock, self.clock, peer=source, tag=tag,
            detail="timeout", scope=self.scope,
        )
        self._maybe_crash()
        return TIMED_OUT

    def _recv_impl(
        self, source: int, tag: int, deadline: float | None
    ) -> Generator[Any, None, Any]:
        """Shared receive loop; parks by yielding ``(channel, deadline)``."""
        channel: Channel = (source, self.rank, tag)
        block_start = self.clock
        engine = self._engine
        if deadline is None:
            msg = engine.try_pop(channel)
            while msg is None:
                yield (channel, None)  # parked by the engine until a send arrives
                msg = engine.try_pop(channel)
        else:
            msg = None
            while msg is None:
                if engine.consume_timeout(self.rank):
                    return self._timeout(block_start, source, tag, deadline)
                status, popped = engine.try_pop_before(channel, deadline)
                if status == "msg":
                    msg = popped
                    break
                if status == "late":
                    # A message exists but arrives after the deadline:
                    # the timeout fires first in simulated time.
                    return self._timeout(block_start, source, tag, deadline)
                yield (channel, deadline)
        arrival = msg.available
        if arrival > block_start:
            engine.record(
                self.rank, "wait", block_start, arrival, source, msg.words, tag,
                "", self.scope,
            )
        else:
            arrival = block_start
        occupancy = engine.model.recv_occupancy(msg.words)
        faults = engine.faults
        if faults is not None:
            occupancy *= faults.slowdown(self.rank)
        self.clock = arrival + occupancy
        engine.record(
            self.rank, "recv", arrival, self.clock, source, msg.words, tag,
            "", self.scope,
        )
        if faults is not None:
            self._maybe_crash()
        return msg.data

    def recv(self, source: int, tag: int = 0) -> Generator[Any, None, Any]:
        """Blocking receive — use as ``value = yield from p.recv(source)``.

        Accounting is split: the interval from blocking until the message
        became available is recorded as an idle ``wait`` event (omitted
        when the message was already there), and only the receiver
        occupancy (drain) is recorded as the ``recv`` event.

        (A plain function returning the receive generator — one generator
        per receive instead of a delegating pair, and endpoint errors
        surface at the call site.)
        """
        if (source, tag) not in self._ok_recv:
            self._check_channel(source, tag, sending=False)
            self._ok_recv.add((source, tag))
        return self._recv_impl(source, tag, None)

    def recv_deadline(
        self, source: int, tag: int = 0, *, deadline: float
    ) -> Generator[Any, None, Any]:
        """Receive with a simulated-time deadline.

        Returns the payload, or the :data:`TIMED_OUT` sentinel if no
        matching message becomes available by *deadline* — in which case
        the local clock advances to the deadline.  This is the primitive
        the reliable-transfer layer builds ack-wait/retry on.
        """
        if (source, tag) not in self._ok_recv:
            self._check_channel(source, tag, sending=False)
            self._ok_recv.add((source, tag))
        if deadline < self.clock:
            deadline = self.clock
        return self._recv_impl(source, tag, deadline)

    def probe(self, source: int, tag: int = 0) -> bool:
        """True when a matching message has *arrived* (no time cost).

        A message counts as arrived only once its availability time —
        which includes any :class:`~repro.machine.faults.FaultPlan`
        injected delay — is at or before this rank's local clock, so a
        delayed message stays invisible until its delayed arrival on both
        backends.  (Channels are FIFO: only the head is considered, a
        receive would have to drain it first anyway.)
        """
        if (source, tag) not in self._ok_recv:
            self._check_channel(source, tag, sending=False)
            self._ok_recv.add((source, tag))
        return self._engine.has_arrived((source, self.rank, tag), self.clock)


class Engine:
    """Owns processor state, message queues and the event calendar."""

    def __init__(
        self,
        topology: Topology,
        model: MachineModel | None = None,
        trace: bool = False,
        faults: FaultPlan | None = None,
    ) -> None:
        self.topology = topology
        self.model = model or MachineModel()
        self.procs = [Proc(self, r) for r in range(topology.size)]
        self._queues: dict[Channel, deque[_Message]] = {}
        self._waiting: dict[Channel, int] = {}  # channel -> parked rank
        self._parked_channels: dict[int, tuple[Channel, ...]] = {}
        self._nb_parked: set[int] = set()  # ranks parked by a nonblocking wait
        self._nb_by_source: dict[int, set[int]] = {}  # source -> nb listeners
        self._calendar = EventCalendar()
        self.message_count = 0
        self.message_words = 0
        self._tracing = trace
        self.trace: list[TraceLane] = [TraceLane() for _ in range(topology.size)]
        self.metrics = Metrics(topology.size)
        self.fault_plan = faults
        self.faults: FaultState | None = None
        self._timeout_fired: set[int] = set()
        self._send_attempts: dict[Channel, int] = {}
        self._reliable_last: dict[Channel, int] = {}
        self._hops: dict[tuple[int, int], int] = {}
        self._recent: list[deque] = [
            deque(maxlen=RECENT_EVENTS) for _ in range(topology.size)
        ]

    def _reset_run_state(self) -> None:
        """Start every :meth:`run` from a clean slate.

        Clocks, message counters, queues and trace lanes used to leak
        across repeated ``run()`` calls on the same engine; new lists are
        bound (not cleared) so results returned from earlier runs stay
        valid.
        """
        for proc in self.procs:
            proc.clock = 0.0
            proc.scope = ""
        self._queues = {}
        self._waiting = {}
        self._parked_channels = {}
        self._nb_parked = set()
        self._nb_by_source = {}
        self._calendar = EventCalendar()
        self.message_count = 0
        self.message_words = 0
        self.trace = [TraceLane() for _ in self.procs]
        self.metrics = Metrics(self.topology.size)
        self.faults = (
            FaultState(self.fault_plan) if self.fault_plan is not None else None
        )
        self._timeout_fired = set()
        self._send_attempts = {}
        self._reliable_last = {}
        self._recent = [deque(maxlen=RECENT_EVENTS) for _ in self.procs]

    # -- messaging ------------------------------------------------------
    def _unpark(self, rank: int) -> None:
        """Drop every park registration of *rank* (O(channels of rank)).

        A waitany park registers several channels for one rank: waking it
        must clear every registration, or a later send on a sibling
        channel would "wake" a rank that is long gone.
        """
        chans = self._parked_channels.pop(rank, ())
        waiting = self._waiting
        for ch in chans:
            waiting.pop(ch, None)
        if rank in self._nb_parked:
            self._nb_parked.discard(rank)
            by_source = self._nb_by_source
            for ch in chans:
                listeners = by_source.get(ch[0])
                if listeners is not None:
                    listeners.discard(rank)
        self._calendar.cancel_timeout(rank)

    def deliver(self, msg: _Message) -> None:
        channel: Channel = (msg.source, msg.dest, msg.tag)
        queues = self._queues
        queue = queues.get(channel)
        if queue is None:
            queue = queues[channel] = deque()
        queue.append(msg)
        if not msg.system:
            self.message_count += 1
            self.message_words += msg.words
        parked = self._waiting.get(channel)
        if parked is not None:
            self._unpark(parked)
            self._calendar.push_ready(parked)

    def try_pop(self, channel: Channel) -> _Message | None:
        queue = self._queues.get(channel)
        if not queue:
            return None
        return queue.popleft()

    def try_pop_before(
        self, channel: Channel, deadline: float
    ) -> tuple[str, _Message | None]:
        """Pop the FIFO head only if it arrives by *deadline*.

        Returns ``("msg", message)``, ``("empty", None)`` when nothing is
        queued, or ``("late", None)`` when the head exists but becomes
        available only after the deadline — in simulated time the timeout
        fires first, so the receiver must not consume it yet.
        """
        queue = self._queues.get(channel)
        if not queue:
            return "empty", None
        if queue[0].available <= deadline:
            return "msg", queue.popleft()
        return "late", None

    def has_message(self, channel: Channel) -> bool:
        queue = self._queues.get(channel)
        return bool(queue)

    def peek_available(self, channel: Channel) -> float | None:
        """Availability time of the FIFO head, or ``None`` when empty."""
        queue = self._queues.get(channel)
        if not queue:
            return None
        return queue[0].available

    def has_arrived(self, channel: Channel, now: float) -> bool:
        """True when the FIFO head exists and is available by *now*."""
        avail = self.peek_available(channel)
        return avail is not None and avail <= now

    # -- fault bookkeeping ----------------------------------------------
    def next_attempt(self, channel: Channel) -> int:
        """Per-channel attempt counter feeding the fault plan's RNG."""
        attempt = self._send_attempts.get(channel, 0)
        self._send_attempts[channel] = attempt + 1
        return attempt

    def consume_timeout(self, rank: int) -> bool:
        """Check-and-clear the 'your timed receive expired' flag."""
        if rank in self._timeout_fired:
            self._timeout_fired.discard(rank)
            return True
        return False

    def record(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        peer: int | None = None,
        words: int = 0,
        tag: int = 0,
        detail: str = "",
        scope: str = "",
    ) -> None:
        self.metrics.observe(rank, kind, start, end, peer, words, tag, scope, detail)
        self._recent[rank].append((kind, start, end, peer, tag, detail))
        if self._tracing:
            self.trace[rank].append_raw(
                (rank, kind, start, end, peer, words, tag, detail, scope)
            )

    # -- forensics -------------------------------------------------------
    @property
    def _timed(self) -> dict[int, float]:
        """Live rank → deadline view of the calendar (forensics, tests)."""
        return self._calendar.timed

    def _deadlock(self) -> DeadlockError:
        blocked = {
            rank: f"recv(source={ch[0]}, tag={ch[2]})"
            for ch, rank in self._waiting.items()
        }
        report = build_report(
            nprocs=len(self.procs),
            waiting=self._waiting,
            clocks=[p.clock for p in self.procs],
            timed=dict(self._calendar.timed),
            recent=self._recent,
        )
        return DeadlockError(blocked, report=report)

    def _fire_earliest_timeout(self) -> bool:
        """Wake the timed waiter with the smallest deadline, if any.

        Only called when the machine has globally stalled, so no future
        send can beat the deadline — firing the earliest timeout is then
        the unique next event in simulated time, which keeps the timeout
        semantics identical across backends and scheduling orders.  The
        waiter comes straight off the calendar heap (O(log N)), in the
        same ``(deadline, rank)`` order the historic scan produced.
        """
        rank = self._calendar.pop_due_timeout()
        if rank is None:
            return False
        self._unpark(rank)
        self._timeout_fired.add(rank)
        self._calendar.push_ready(rank)
        return True

    def _wake_crashed_nb(self) -> bool:
        """Wake nonblocking waiters parked on a crashed peer's channel.

        Only nonblocking parks are woken: their wait loop re-checks the
        fault state before re-parking and raises
        :class:`repro.errors.PeerCrashedError` with the crash as context.
        (A plain blocked ``recv`` has no such check, so waking it would
        spin; it surfaces as a deadlock instead, exactly as before.)

        The ``_nb_by_source`` reverse index maps each fired crash straight
        to its listeners; wakeups happen in ascending rank order, the same
        deterministic order the historic sorted scan produced.
        """
        if self.faults is None or not self._nb_parked:
            return False
        candidates: set[int] = set()
        for crash in self.faults.fired_crashes:
            listeners = self._nb_by_source.get(crash.rank)
            if listeners:
                candidates |= listeners
        if not candidates:
            return False
        for rank in sorted(candidates):
            self._unpark(rank)
            self._calendar.push_ready(rank)
        return True

    # -- scheduler --------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator],
        args: tuple = (),
        kwargs: dict | None = None,
        per_rank_args: list[tuple] | None = None,
    ) -> RunResult:
        """Run one instance of *program* per rank to completion."""
        self._reset_run_state()
        kwargs = kwargs or {}
        gens: list[Generator | None] = []
        values: list[Any] = [None] * len(self.procs)
        for proc in self.procs:
            rank_args = per_rank_args[proc.rank] if per_rank_args is not None else args
            result = program(proc, *rank_args, **kwargs)
            if not isinstance(result, Generator):
                # Pure-compute programs may be plain functions.
                values[proc.rank] = result
                gens.append(None)
            else:
                gens.append(result)

        calendar = self._calendar
        live = 0
        for rank, gen in enumerate(gens):
            if gen is not None:
                calendar.push_ready(rank)
                live += 1

        queues = self._queues
        waiting = self._waiting
        while live:
            rank = calendar.pop_ready()
            if rank is None:
                # Global stall: the only ways forward are a nonblocking
                # waiter whose peer crashed (it must fail, not hang) or an
                # expired timed receive; with neither pending this is a
                # true deadlock.
                if not self._wake_crashed_nb() and not self._fire_earliest_timeout():
                    raise self._deadlock()
                continue
            gen = gens[rank]
            assert gen is not None
            try:
                channel, deadline = next(gen)
            except StopIteration as stop:
                values[rank] = stop.value
                gens[rank] = None
                live -= 1
                continue
            nb_park = bool(channel) and isinstance(channel[0], tuple)
            channels = park_channels(channel)
            raced = False
            for ch in channels:
                if queues.get(ch):
                    raced = True
                    break
            if raced:
                # Message raced in while the generator was yielding: retry.
                calendar.push_ready(rank)
            else:
                for ch in channels:
                    if ch in waiting:
                        raise CommunicationError(
                            f"two processors waiting on the same channel {ch}"
                        )
                    waiting[ch] = rank
                self._parked_channels[rank] = channels
                if nb_park:
                    self._nb_parked.add(rank)
                    by_source = self._nb_by_source
                    for ch in channels:
                        listeners = by_source.get(ch[0])
                        if listeners is None:
                            listeners = by_source[ch[0]] = set()
                        listeners.add(rank)
                if deadline is not None:
                    calendar.push_timeout(rank, deadline)

        # Correlate this run with the compile request that produced it
        # (docs/OBSERVABILITY.md) — a no-op outside any trace context.
        stamp_current(self.metrics)
        return RunResult(
            values=values,
            finish_times=[p.clock for p in self.procs],
            message_count=self.message_count,
            message_words=self.message_words,
            trace=self.trace if self._tracing else None,
            metrics=self.metrics,
        )


def run_spmd(
    program: Callable[..., Generator],
    topology: Topology,
    model: MachineModel | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    per_rank_args: list[tuple] | None = None,
    trace: bool = False,
    faults: FaultPlan | None = None,
) -> RunResult:
    """Convenience front end: build an :class:`Engine` and run *program*.

    Parameters
    ----------
    program:
        Generator function ``def program(p: Proc, *args, **kwargs)``.
    per_rank_args:
        Optional per-rank positional arguments (e.g. scattered input
        blocks); overrides *args* when given.
    faults:
        Optional :class:`repro.machine.faults.FaultPlan` injected at the
        send/deliver layer (see ``docs/RESILIENCE.md``).
    """
    engine = Engine(topology, model=model, trace=trace, faults=faults)
    return engine.run(program, args=args, kwargs=kwargs, per_rank_args=per_rank_args)
