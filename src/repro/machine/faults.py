"""Seeded, declarative fault injection for the SPMD machine.

The paper's compiled programs assume a perfect machine; this module is
the opposite.  A :class:`FaultPlan` describes, declaratively, how the
machine misbehaves:

* **message faults** — ``delay`` (extra wire latency), ``drop`` (the
  message never arrives) and ``duplicate`` (two copies arrive).  Drops
  and duplicates target *reliable* (sequence-numbered) traffic by
  default, because an unsequenced program has no retransmit path — set
  ``include_plain=True`` to chaos-test plain programs into a forensic
  deadlock on purpose;
* **rank slowdown** — a per-rank factor ``>= 1`` that stretches every
  local duration (compute, send/recv occupancy), perturbing the
  effective ``tf``/``tc`` of that processor;
* **crashes** — ``CrashFault(rank, at_time)`` kills the rank the first
  time its local clock reaches ``at_time``
  (:class:`repro.errors.RankCrashedError`).

Both engine backends consume the same plan at the ``send``/``deliver``
layer of :class:`repro.machine.engine.Proc`, so no program code changes.

Determinism contract
--------------------
Every per-message decision is drawn from a private RNG seeded by
``(plan.seed, source, dest, tag, attempt)`` — *not* from shared RNG
state — so the fate of a message is independent of scheduling order.
Consequently a seeded, crash-free plan yields bit-identical numeric
results on both the deterministic and the threaded backend, and
identical results to the fault-free run (faults move clocks, never
payloads; see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import FaultError


@dataclass(frozen=True)
class CrashFault:
    """Kill *rank* the first time its local clock reaches *at_time*."""

    rank: int
    at_time: float


@dataclass(frozen=True)
class MessageFate:
    """The plan's verdict for one message copy."""

    delay: float = 0.0
    drop: bool = False
    duplicate: bool = False

    @property
    def clean(self) -> bool:
        return self.delay == 0.0 and not self.drop and not self.duplicate


def _normalize_slowdown(
    slowdown: Mapping[int, float] | tuple[tuple[int, float], ...],
) -> tuple[tuple[int, float], ...]:
    items = sorted(dict(slowdown).items()) if slowdown else []
    for rank, factor in items:
        if rank < 0:
            raise FaultError(f"slowdown rank must be nonnegative, got {rank}")
        if factor < 1.0:
            raise FaultError(
                f"slowdown factor for P{rank} must be >= 1, got {factor}"
            )
    return tuple(items)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of how the machine misbehaves.

    ``slowdown`` accepts a ``{rank: factor}`` mapping (normalized to a
    sorted tuple so plans stay hashable).  Probabilities are per message
    attempt; ``delay_max`` is the upper bound of the uniform extra
    latency, in simulated seconds.
    """

    seed: int = 0
    delay_prob: float = 0.0
    delay_max: float = 0.0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    slowdown: tuple[tuple[int, float], ...] = field(default=())
    crashes: tuple[CrashFault, ...] = ()
    include_plain: bool = False

    def __post_init__(self) -> None:
        for name in ("delay_prob", "drop_prob", "duplicate_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be a probability, got {value}")
        if self.delay_max < 0:
            raise FaultError(f"delay_max must be nonnegative, got {self.delay_max}")
        object.__setattr__(self, "slowdown", _normalize_slowdown(self.slowdown))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for crash in self.crashes:
            if crash.rank < 0:
                raise FaultError(f"crash rank must be nonnegative, got {crash.rank}")
            if crash.at_time < 0:
                raise FaultError(
                    f"crash time must be nonnegative, got {crash.at_time}"
                )

    # -- queries ---------------------------------------------------------
    @property
    def crash_free(self) -> bool:
        return not self.crashes

    @property
    def quiet(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.crash_free
            and not self.slowdown
            and self.delay_prob == self.drop_prob == self.duplicate_prob == 0.0
        )

    def slowdown_factor(self, rank: int) -> float:
        for r, factor in self.slowdown:
            if r == rank:
                return factor
        return 1.0

    # -- derivation ------------------------------------------------------
    def with_crash(self, rank: int, at_time: float) -> "FaultPlan":
        from dataclasses import replace

        return replace(self, crashes=self.crashes + (CrashFault(rank, at_time),))

    def without_crash(self, rank: int, at_time: float) -> "FaultPlan":
        """The same plan minus one crash — used across restarts."""
        from dataclasses import replace

        kept = tuple(
            c for c in self.crashes if not (c.rank == rank and c.at_time == at_time)
        )
        return replace(self, crashes=kept)


class FaultState:
    """Per-run instantiation of a :class:`FaultPlan`.

    Owns the fired-crash bookkeeping (a crash fires once) and derives
    message fates.  Message-fate queries are pure functions of
    ``(seed, source, dest, tag, attempt)`` so they are thread-safe and
    scheduling-independent; crash state is only touched by the owning
    rank's thread.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # At most one pending crash per rank: the earliest wins.
        pending: dict[int, CrashFault] = {}
        for crash in plan.crashes:
            cur = pending.get(crash.rank)
            if cur is None or crash.at_time < cur.at_time:
                pending[crash.rank] = crash
        self._pending = pending
        self._initial = dict(pending)
        self._fired: list[CrashFault] = []

    # -- crashes ---------------------------------------------------------
    def crash_due(self, rank: int, clock: float) -> CrashFault | None:
        crash = self._pending.get(rank)
        if crash is not None and clock >= crash.at_time:
            del self._pending[rank]
            self._fired.append(crash)
            return crash
        return None

    @property
    def fired_crashes(self) -> tuple[CrashFault, ...]:
        return tuple(self._fired)

    def fired_crash(self, rank: int) -> CrashFault | None:
        """The fired crash that killed *rank*, or ``None`` if it is alive.

        Used by the nonblocking layer to fail a request against a dead
        peer with the crash as context instead of letting it wedge into a
        deadlock (list reads are GIL-atomic, so this is safe from any
        thread of the threaded backend).
        """
        for crash in self._fired:
            if crash.rank == rank:
                return crash
        return None

    def crashed_by(self, rank: int, time: float) -> CrashFault | None:
        """The plan's crash that has killed *rank* by simulated *time*.

        Unlike :meth:`fired_crash` this is a pure function of the plan —
        it does not depend on whether the doomed rank's thread has
        actually reached its crash point yet — so scheduling-sensitive
        decisions (e.g. whether a message gets hardware-acked) stay
        deterministic across backends.
        """
        crash = self._initial.get(rank)
        if crash is not None and time >= crash.at_time:
            return crash
        return None

    # -- slowdown --------------------------------------------------------
    def slowdown(self, rank: int) -> float:
        return self.plan.slowdown_factor(rank)

    # -- message fates ---------------------------------------------------
    def fate(
        self,
        source: int,
        dest: int,
        tag: int,
        attempt: int,
        reliable: bool,
        is_ack: bool = False,
    ) -> MessageFate:
        """Deterministic verdict for one message attempt on one channel."""
        plan = self.plan
        rng = random.Random(
            f"{plan.seed}|{source}|{dest}|{tag}|{attempt}|{int(is_ack)}"
        )
        # Draw in a fixed order so verdicts never depend on branch shape.
        r_delay, r_mag, r_drop, r_dup = (rng.random() for _ in range(4))
        delay = r_mag * plan.delay_max if r_delay < plan.delay_prob else 0.0
        droppable = reliable or is_ack or plan.include_plain
        drop = droppable and r_drop < plan.drop_prob
        duplicable = (reliable and not is_ack) or (plan.include_plain and not is_ack)
        duplicate = duplicable and r_dup < plan.duplicate_prob
        return MessageFate(delay=delay, drop=drop, duplicate=duplicate)
