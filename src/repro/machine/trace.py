"""Event traces and schedule rendering (Fig 5-style step tables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.util.tables import Table

#: Event kinds in glyph-priority order (highest first): when two events
#: share a gantt cell, the earlier kind in this tuple wins.  ``fault``
#: events are zero-duration markers emitted by the fault-injection layer
#: (drops, delays, retries, crashes — see :mod:`repro.machine.faults`).
KINDS = ("fault", "compute", "delay", "send", "isend", "recv", "irecv", "wait")


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timed event on one processor.

    ``kind`` is one of ``compute``, ``delay``, ``send``, ``recv`` or
    ``wait``.  For communication events, ``peer`` is the other endpoint
    and ``words`` the message size.  ``start``/``end`` are simulated
    times.  A blocking receive produces up to two events: a ``wait``
    covering the idle interval from the moment the processor blocked to
    the moment the message became available (omitted when zero), then a
    ``recv`` covering only the receiver occupancy (drain).  ``scope`` is
    the collective label stack (e.g. ``"bcast"``, ``"allreduce/reduce"``)
    active when the event was recorded, empty for bare point-to-point.
    """

    rank: int
    kind: str
    start: float
    end: float
    peer: int | None = None
    words: int = 0
    tag: int = 0
    detail: str = ""
    scope: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-ready form (the shape stored by ``repro.obs.TraceStore``)."""
        return {
            "rank": self.rank, "kind": self.kind,
            "start": self.start, "end": self.end,
            "peer": self.peer, "words": self.words, "tag": self.tag,
            "detail": self.detail, "scope": self.scope,
        }

    def label(self) -> str:
        if self.kind == "compute":
            return self.detail or "compute"
        if self.kind == "delay":
            return self.detail or "delay"
        if self.kind == "send":
            return f"send->{self.peer}({self.words}w)"
        if self.kind == "isend":
            return f"isend->{self.peer}({self.words}w)"
        if self.kind == "recv":
            return f"recv<-{self.peer}({self.words}w)"
        if self.kind == "irecv":
            return f"irecv<-{self.peer}"
        if self.kind == "wait":
            return f"wait<-{self.peer}"
        if self.kind == "fault":
            return f"fault:{self.detail or '?'}"
        return self.kind


class TraceLane:
    """One rank's event lane with lazily materialized :class:`TraceEvent`\\ s.

    The engine's hot path appends raw tuples (the ``TraceEvent``
    constructor arguments, in field order) — a tuple append instead of a
    dataclass allocation per recorded event, which is what makes tracing
    affordable at N=1024+.  Consumers see a normal read-only sequence of
    ``TraceEvent`` objects: events are built on first access and cached,
    so repeated iteration returns the *same* objects (the critical-path
    walker keys its maps by ``id(event)`` and relies on this).
    """

    __slots__ = ("_raw", "_cache")

    def __init__(self, events: list[TraceEvent] | None = None) -> None:
        self._raw: list[tuple] = []
        self._cache: list[TraceEvent] = []
        if events:
            for e in events:
                self.append(e)

    def append_raw(self, row: tuple) -> None:
        """Record one event as its constructor-argument tuple (hot path)."""
        self._raw.append(row)

    def append(self, event: TraceEvent) -> None:
        """Append an already-materialized event (tests, tooling)."""
        self._materialize().append(event)
        self._raw.append(
            (event.rank, event.kind, event.start, event.end, event.peer,
             event.words, event.tag, event.detail, event.scope)
        )

    def _materialize(self) -> list[TraceEvent]:
        cache = self._cache
        raw = self._raw
        if len(cache) < len(raw):
            cache.extend(TraceEvent(*row) for row in raw[len(cache):])
        return cache

    def __len__(self) -> int:
        return len(self._raw)

    def __bool__(self) -> bool:
        return bool(self._raw)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index: Any) -> Any:
        return self._materialize()[index]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, TraceLane):
            return self._materialize() == other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"TraceLane({self._materialize()!r})"


def busy_time(events: list[TraceEvent], kinds: tuple[str, ...] = ("compute",)) -> float:
    """Total duration of the given event kinds."""
    return sum(e.duration for e in events if e.kind in kinds)


def comm_time(events: list[TraceEvent]) -> float:
    """Total time spent transferring data (send + recv occupancy).

    Blocked waiting is *not* included — it is recorded as separate
    ``wait`` events; see :func:`wait_time`.
    """
    return busy_time(events, ("send", "isend", "recv"))


def wait_time(events: list[TraceEvent]) -> float:
    """Total time spent idle, blocked on an empty channel."""
    return busy_time(events, ("wait",))


def trace_table(
    trace: list[list[TraceEvent]],
    kinds: tuple[str, ...] = ("compute", "send", "isend", "recv", "irecv", "wait"),
    max_events: int | None = None,
) -> str:
    """Render a per-processor event table ordered by start time."""
    table = Table(["t_start", "t_end", "proc", "event"])
    events = sorted(
        (e for lane in trace for e in lane if e.kind in kinds),
        key=lambda e: (e.start, e.rank),
    )
    if max_events is not None:
        events = events[:max_events]
    for e in events:
        table.add_row([f"{e.start:.2f}", f"{e.end:.2f}", f"P{e.rank}", e.label()])
    return table.render()


#: Gantt glyphs; priority resolves overlaps deterministically
#: (fault > compute/delay > send > recv > wait) — a fault marker must
#: stay visible even when it lands inside a busy interval.
_GANTT_GLYPHS = {
    "compute": "#", "delay": "#", "send": ">", "isend": "^", "recv": "<",
    "irecv": "v", "wait": "~", "fault": "!",
}
_GANTT_PRIORITY = {
    "compute": 4, "delay": 4, "send": 3, "isend": 3, "recv": 2, "irecv": 1,
    "wait": 1, "fault": 5,
}


def gantt(
    trace: list[list[TraceEvent]],
    width: int = 72,
    kinds: tuple[str, ...] = ("compute", "send", "isend", "recv", "irecv", "wait"),
) -> str:
    """Render an ASCII Gantt chart: one row per processor.

    ``#`` marks compute, ``>`` send, ``<`` recv (drain), ``~`` blocked
    waiting, ``.`` idle.  Useful to *see* the SOR pipeline fill and drain
    (paper Fig 5).  When several events map to the same cell the glyph
    with the highest priority wins (``compute`` > ``send`` > ``recv`` >
    ``wait``), independent of lane insertion order.
    """
    horizon = max((e.end for lane in trace for e in lane), default=0.0)
    if horizon <= 0:
        return "(empty trace)"
    scale = width / horizon
    lines = []
    for rank, lane in enumerate(trace):
        row = ["."] * width
        prio = [0] * width
        for e in lane:
            if e.kind not in kinds:
                continue
            if e.start >= horizon:
                # Zero-duration event exactly at the horizon: it occupies
                # no time, so it must not repaint the final cell.
                continue
            lo = int(e.start * scale)  # e.start < horizon => lo < width
            hi = min(width, max(lo + 1, int(e.end * scale)))
            p = _GANTT_PRIORITY.get(e.kind, 0)
            g = _GANTT_GLYPHS.get(e.kind, "?")
            for x in range(lo, hi):
                if p > prio[x]:
                    row[x] = g
                    prio[x] = p
        lines.append(f"P{rank:<3}|{''.join(row)}|")
    lines.append(f"    0{' ' * (width - 10)}{horizon:9.1f}")
    return "\n".join(lines)
