"""Event traces and schedule rendering (Fig 5-style step tables)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import Table


@dataclass(frozen=True)
class TraceEvent:
    """One timed event on one processor.

    ``kind`` is one of ``compute``, ``delay``, ``send``, ``recv``.  For
    communication events, ``peer`` is the other endpoint and ``words`` the
    message size.  ``start``/``end`` are simulated times; for a ``recv``,
    ``start`` is when the processor began waiting.
    """

    rank: int
    kind: str
    start: float
    end: float
    peer: int | None = None
    words: int = 0
    tag: int = 0
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def label(self) -> str:
        if self.kind == "compute":
            return self.detail or "compute"
        if self.kind == "delay":
            return self.detail or "delay"
        if self.kind == "send":
            return f"send->{self.peer}({self.words}w)"
        if self.kind == "recv":
            return f"recv<-{self.peer}({self.words}w)"
        return self.kind


def busy_time(events: list[TraceEvent], kinds: tuple[str, ...] = ("compute",)) -> float:
    """Total duration of the given event kinds."""
    return sum(e.duration for e in events if e.kind in kinds)


def comm_time(events: list[TraceEvent]) -> float:
    """Total time spent in send/recv (including recv waiting)."""
    return busy_time(events, ("send", "recv"))


def trace_table(
    trace: list[list[TraceEvent]],
    kinds: tuple[str, ...] = ("compute", "send", "recv"),
    max_events: int | None = None,
) -> str:
    """Render a per-processor event table ordered by start time."""
    table = Table(["t_start", "t_end", "proc", "event"])
    events = sorted(
        (e for lane in trace for e in lane if e.kind in kinds),
        key=lambda e: (e.start, e.rank),
    )
    if max_events is not None:
        events = events[:max_events]
    for e in events:
        table.add_row([f"{e.start:.2f}", f"{e.end:.2f}", f"P{e.rank}", e.label()])
    return table.render()


def gantt(
    trace: list[list[TraceEvent]],
    width: int = 72,
    kinds: tuple[str, ...] = ("compute", "send", "recv"),
) -> str:
    """Render an ASCII Gantt chart: one row per processor.

    ``#`` marks compute, ``>`` send, ``<`` recv (waiting + draining), ``.``
    idle.  Useful to *see* the SOR pipeline fill and drain (paper Fig 5).
    """
    horizon = max((e.end for lane in trace for e in lane), default=0.0)
    if horizon <= 0:
        return "(empty trace)"
    scale = width / horizon
    glyphs = {"compute": "#", "delay": "#", "send": ">", "recv": "<"}
    lines = []
    for rank, lane in enumerate(trace):
        row = ["."] * width
        for e in lane:
            if e.kind not in kinds:
                continue
            lo = min(width - 1, int(e.start * scale))
            hi = min(width, max(lo + 1, int(e.end * scale)))
            for x in range(lo, hi):
                row[x] = glyphs.get(e.kind, "?")
        lines.append(f"P{rank:<3}|{''.join(row)}|")
    lines.append(f"    0{' ' * (width - 10)}{horizon:9.1f}")
    return "\n".join(lines)
