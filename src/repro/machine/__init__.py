"""Deterministic distributed-memory machine simulator.

This package is the substrate that stands in for the paper's
iPSC/nCUBE-class hardware (see DESIGN.md §2).  SPMD programs are Python
generator functions ``def prog(p: Proc): ...`` executed by a discrete-event
engine; point-to-point messages actually carry data (so numerics are real)
while per-processor clocks advance according to a
:class:`~repro.machine.model.MachineModel` with the paper's ``tf`` (time per
flop) and ``tc`` (time per transferred word) parameters.
"""

from repro.machine.collectives import (
    PLAIN_TRANSPORT,
    Transport,
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
    shift,
)
from repro.machine.critpath import CriticalPathReport, PathStep, critical_path
from repro.machine.engine import (
    ACK_TAG_BASE,
    TIMED_OUT,
    Engine,
    Proc,
    RunResult,
    run_spmd,
)
from repro.machine.export import (
    chrome_trace_json,
    correlated_trace_json,
    match_messages,
    merge_events,
    write_chrome_trace,
)
from repro.machine.faults import CrashFault, FaultPlan, FaultState, MessageFate
from repro.machine.forensics import BlockedRank, DeadlockReport
from repro.machine.metrics import GroupStats, Metrics, RankMetrics
from repro.machine.nonblocking import (
    NBComm,
    RecvRequest,
    Request,
    SendRequest,
    waitall,
    waitany,
)
from repro.machine.resilient import (
    CheckpointStore,
    ReliableSendRequest,
    ReliableTransport,
    ResilientResult,
    RetryPolicy,
    run_resilient,
)
from repro.machine.threaded import ThreadedEngine, run_spmd_threaded
from repro.machine.model import MachineModel
from repro.machine.topology import (
    Grid2D,
    Grid3D,
    Hypercube,
    Linear,
    Ring,
    Topology,
    gray_code,
)

__all__ = [
    "Engine",
    "Proc",
    "RunResult",
    "run_spmd",
    "Metrics",
    "RankMetrics",
    "GroupStats",
    "critical_path",
    "CriticalPathReport",
    "PathStep",
    "chrome_trace_json",
    "correlated_trace_json",
    "merge_events",
    "write_chrome_trace",
    "match_messages",
    "ThreadedEngine",
    "run_spmd_threaded",
    "MachineModel",
    "Topology",
    "Ring",
    "Linear",
    "Grid2D",
    "Grid3D",
    "Hypercube",
    "gray_code",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "shift",
    "barrier",
    "Transport",
    "PLAIN_TRANSPORT",
    "ACK_TAG_BASE",
    "TIMED_OUT",
    "FaultPlan",
    "FaultState",
    "CrashFault",
    "MessageFate",
    "DeadlockReport",
    "BlockedRank",
    "ReliableTransport",
    "ReliableSendRequest",
    "RetryPolicy",
    "CheckpointStore",
    "ResilientResult",
    "run_resilient",
    "NBComm",
    "Request",
    "SendRequest",
    "RecvRequest",
    "waitall",
    "waitany",
]
