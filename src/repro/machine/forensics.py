"""Deadlock forensics: turn a stuck machine into a diagnosis.

When every live processor is blocked on an empty channel, the engines no
longer raise a bare :class:`repro.errors.DeadlockError` — they attach a
:class:`DeadlockReport` that carries, per blocked rank, the channel it
waits on, its local clock at the moment it blocked, and the last few
events it executed (kept in a small always-on ring buffer, so the report
works even with tracing disabled).  The report derives the wait-for
graph and its cycles, which is usually enough to see *which* mismatched
send/recv pair wedged the program.

Render with :meth:`DeadlockReport.describe` or
``python -m repro.tools.report --deadlock``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import Table

#: Ring-buffer depth of per-rank recent events kept for forensics.
RECENT_EVENTS = 8

#: Compact recent-event record: (kind, start, end, peer, tag, detail).
RecentEvent = tuple[str, float, float, int | None, int, str]


@dataclass(frozen=True)
class BlockedRank:
    """One processor stuck on an empty channel."""

    rank: int
    source: int  # rank it waits for
    tag: int
    since: float  # local clock when it blocked
    deadline: float | None = None  # timed waits (reliable-transfer acks)
    recent: tuple[RecentEvent, ...] = ()

    def waiting_on(self) -> str:
        extra = f", deadline={self.deadline:g}" if self.deadline is not None else ""
        return f"recv(source={self.source}, tag={self.tag}{extra})"


@dataclass(frozen=True)
class DeadlockReport:
    """Everything the engine knew when it declared a deadlock."""

    nprocs: int
    blocked: tuple[BlockedRank, ...]

    # -- graph queries ---------------------------------------------------
    def blocked_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(b.rank for b in self.blocked))

    def wait_for(self) -> dict[int, int]:
        """Edges ``waiter -> rank it needs a message from``."""
        return {b.rank: b.source for b in self.blocked}

    def cycles(self) -> list[tuple[int, ...]]:
        """Cycles of the wait-for graph, each rotated to start at its min rank."""
        edges = self.wait_for()
        seen: set[int] = set()
        out: list[tuple[int, ...]] = []
        for start in sorted(edges):
            if start in seen:
                continue
            path: list[int] = []
            index: dict[int, int] = {}
            node = start
            while node in edges and node not in index:
                if node in seen:
                    break
                index[node] = len(path)
                path.append(node)
                node = edges[node]
            else:
                if node in index:  # closed a fresh cycle
                    cycle = path[index[node]:]
                    pivot = cycle.index(min(cycle))
                    out.append(tuple(cycle[pivot:] + cycle[:pivot]))
            seen.update(path)
        return out

    # -- rendering -------------------------------------------------------
    def describe(self, recent: int = 3) -> str:
        table = Table(
            ["rank", "blocked on", "since", f"last {recent} events"],
            title=f"Deadlock forensics — {len(self.blocked)}/{self.nprocs} ranks blocked",
        )
        for b in sorted(self.blocked, key=lambda b: b.rank):
            tail = "; ".join(_fmt_event(e) for e in b.recent[-recent:]) or "(no events)"
            table.add_row([f"P{b.rank}", b.waiting_on(), f"{b.since:g}", tail])
        lines = [table.render()]
        cycles = self.cycles()
        if cycles:
            rendered = ", ".join(
                " -> ".join(f"P{r}" for r in cycle + (cycle[0],)) for cycle in cycles
            )
            lines.append(f"wait-for cycles: {rendered}")
        else:
            lines.append(
                "wait-for graph is acyclic: some rank waits on a peer that "
                "terminated (or never sent)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "nprocs": self.nprocs,
            "blocked": [
                {
                    "rank": b.rank,
                    "source": b.source,
                    "tag": b.tag,
                    "since": b.since,
                    "deadline": b.deadline,
                    "recent": [list(e) for e in b.recent],
                }
                for b in sorted(self.blocked, key=lambda b: b.rank)
            ],
            "cycles": [list(c) for c in self.cycles()],
        }


def _fmt_event(e: RecentEvent) -> str:
    kind, start, end, peer, tag, detail = e
    where = f"@{start:g}" if start == end else f"@{start:g}..{end:g}"
    if kind in ("send", "recv", "wait"):
        arrow = "->" if kind == "send" else "<-"
        return f"{kind}{arrow}P{peer}(t{tag}){where}"
    body = f"({detail})" if detail else ""
    return f"{kind}{body}{where}"


def build_report(
    nprocs: int,
    waiting: dict[tuple[int, int, int], int],
    clocks: list[float],
    timed: dict[int, float],
    recent: list,
) -> DeadlockReport:
    """Assemble a report from engine wait state.

    *waiting* maps ``(source, dest, tag)`` channels to the parked rank,
    *timed* maps ranks to ack-timeout deadlines (empty for plain waits),
    and *recent* holds the per-rank ring buffers of event tuples.
    """
    blocked = tuple(
        BlockedRank(
            rank=rank,
            source=channel[0],
            tag=channel[2],
            since=clocks[rank],
            deadline=timed.get(rank),
            recent=tuple(recent[rank]),
        )
        for channel, rank in sorted(waiting.items(), key=lambda item: item[1])
    )
    return DeadlockReport(nprocs=nprocs, blocked=blocked)
