"""Measurement registry for the SPMD machine.

The paper's method (alignment §3 and the DP over loop sequences §4)
chooses data layouts by *predicted* communication cost; this module is
the measurement side of that bargain.  A :class:`Metrics` instance is
populated automatically by :meth:`repro.machine.engine.Engine.record`
for every simulated event and aggregates:

* per-rank accounting — compute / communication / blocked-wait seconds,
  messages and words sent/received (:class:`RankMetrics`);
* per-kind, per-tag and per-collective histograms (:class:`GroupStats`)
  — collectives label their events (``bcast``, ``reduce``, ``allgather``,
  ``allreduce/reduce`` when nested, ...), so measured volumes can be
  compared against the Table 1 cost formulas primitive by primitive.

``words``/``messages`` in the histograms count *injections* (send
events) so a message is never double-counted; ``seconds`` accumulate
over send + recv + wait + labelled compute, i.e. the total simulated
time attributable to that key.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.util.tables import Table


@dataclass
class RankMetrics:
    """Aggregated accounting for one logical processor."""

    rank: int
    compute_seconds: float = 0.0
    delay_seconds: float = 0.0
    comm_seconds: float = 0.0  # send + recv occupancy (transfer only)
    wait_seconds: float = 0.0  # idle, blocked on an empty channel
    messages_sent: int = 0
    messages_received: int = 0
    words_sent: int = 0
    words_received: int = 0
    #: Nonblocking overlap accounting (populated by the request layer of
    #: :mod:`repro.machine.nonblocking`): total in-flight seconds of
    #: completed receives after their post, and the portion of that time
    #: hidden behind local work rather than exposed as blocked waiting.
    inflight_seconds: float = 0.0
    hidden_seconds: float = 0.0

    @property
    def busy_seconds(self) -> float:
        """Time the processor was doing something (not blocked waiting)."""
        return self.compute_seconds + self.delay_seconds + self.comm_seconds

    @property
    def overlap_ratio(self) -> float:
        """Fraction of nonblocking in-flight time hidden behind compute."""
        if self.inflight_seconds <= 0.0:
            return 0.0
        return self.hidden_seconds / self.inflight_seconds


@dataclass
class GroupStats:
    """One histogram bucket (per kind, per tag or per collective)."""

    events: int = 0
    seconds: float = 0.0
    messages: int = 0
    words: int = 0

    def add(self, seconds: float, messages: int = 0, words: int = 0) -> None:
        self.events += 1
        self.seconds += seconds
        self.messages += messages
        self.words += words


@dataclass
class Metrics:
    """Registry of counters for one engine run.

    Per-rank fields are only ever touched by the owning rank (thread), so
    they need no synchronization; the shared histograms take a lock when
    ``threadsafe`` is set (used by the threaded backend).
    """

    nprocs: int
    threadsafe: bool = False
    ranks: list[RankMetrics] = field(init=False)
    by_kind: dict[str, GroupStats] = field(init=False, default_factory=dict)
    by_tag: dict[int, GroupStats] = field(init=False, default_factory=dict)
    by_collective: dict[str, GroupStats] = field(init=False, default_factory=dict)
    #: Fault/resilience counters keyed by detail: ``drop``, ``delay``,
    #: ``duplicate``, ``dup-suppressed``, ``ack``, ``ack-drop``,
    #: ``ack-delay``, ``retry``, ``timeout``, ``crash``, ``checkpoint``,
    #: ``restore``, ``restart`` (see docs/RESILIENCE.md).
    faults: dict[str, int] = field(init=False, default_factory=dict)
    #: Compile-service counters stamped by
    #: :meth:`repro.service.compiler.CompileResult.run` so a run's
    #: snapshot records how its plan was served (docs/API.md): cache
    #: counters (``cache_hits``, ``cache_misses``, ``cache_evictions``,
    #: ``cache_disk_hits``, ``cache_puts``, ``cache_corrupt``,
    #: ``cache_disk_faults``) plus, when the service runs a supervised
    #: process pool, its fault counters (``pool_dispatched``,
    #: ``pool_crashes``, ``pool_respawns``, ``pool_retries``,
    #: ``pool_deadline_kills``) and ``fallbacks`` — requests that
    #: degraded to in-process compilation (docs/RESILIENCE.md).
    service: dict[str, int] = field(init=False, default_factory=dict)
    #: Sparse inspector/executor counters stamped (rank 0 only) by
    #: :func:`repro.pipeline.inspector.stamp_sparse` (docs/SPARSE.md):
    #: ``iterations``, ``gather_words_per_iter``,
    #: ``gather_messages_per_iter``, ``inspector_words``,
    #: ``inspector_runs``, ``schedule_builds``, ``schedule_reuses`` —
    #: how a run's communication schedule was obtained (built on-machine
    #: vs replayed from a warm plan cache) and what the executor moves
    #: per sweep.
    sparse: dict[str, int] = field(init=False, default_factory=dict)
    #: Correlation keys stamped by :func:`repro.obs.context.stamp_current`
    #: when the run executed under a :class:`~repro.obs.context.TraceContext`
    #: (docs/OBSERVABILITY.md): ``run_id`` plus optionally
    #: ``request_digest`` and ``parent``.  String-valued, unlike the
    #: counter groups above.
    obs: dict[str, str] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.ranks = [RankMetrics(r) for r in range(self.nprocs)]
        # None instead of a nullcontext: entering a context manager per
        # observed event is measurable on the calendar engine's hot path.
        self._lock = threading.Lock() if self.threadsafe else None

    # -- population (called by Engine.record) ---------------------------
    def observe(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        peer: int | None = None,
        words: int = 0,
        tag: int = 0,
        scope: str = "",
        detail: str = "",
    ) -> None:
        duration = end - start
        lock = self._lock
        if kind == "fault":
            key = detail or "fault"
            if lock is not None:
                with lock:
                    self.faults[key] = self.faults.get(key, 0) + 1
                    self.by_kind.setdefault(kind, GroupStats()).add(duration)
            else:
                self.faults[key] = self.faults.get(key, 0) + 1
                self.by_kind.setdefault(kind, GroupStats()).add(duration)
            return
        # Per-rank fields are thread-confined; histogram keys are ordered
        # by hot-path frequency.  The float sums accumulate in the same
        # order as always (rank fields, by_kind, by_tag, by_collective),
        # so serialized metrics stay bit-identical.
        r = self.ranks[rank]
        if kind == "send" or kind == "isend":
            r.comm_seconds += duration
            r.messages_sent += 1
            r.words_sent += words
            messages = 1
            nwords = words
            comm = True
        elif kind == "recv":
            r.comm_seconds += duration
            r.messages_received += 1
            r.words_received += words
            messages = 0
            nwords = 0
            comm = True
        elif kind == "wait":
            r.wait_seconds += duration
            messages = 0
            nwords = 0
            comm = False
        elif kind == "compute":
            r.compute_seconds += duration
            messages = 0
            nwords = 0
            comm = False
        else:
            if kind == "delay":
                r.delay_seconds += duration
            messages = 0
            nwords = 0
            comm = False
        if lock is not None:
            with lock:
                self._fold(kind, tag, scope, duration, messages, nwords, comm)
            return
        by_kind = self.by_kind
        stats = by_kind.get(kind)
        if stats is None:
            stats = by_kind[kind] = GroupStats()
        stats.events += 1
        stats.seconds += duration
        stats.messages += messages
        stats.words += nwords
        if comm:
            by_tag = self.by_tag
            stats = by_tag.get(tag)
            if stats is None:
                stats = by_tag[tag] = GroupStats()
            stats.events += 1
            stats.seconds += duration
            stats.messages += messages
            stats.words += nwords
        if scope:
            by_collective = self.by_collective
            stats = by_collective.get(scope)
            if stats is None:
                stats = by_collective[scope] = GroupStats()
            stats.events += 1
            stats.seconds += duration
            stats.messages += messages
            stats.words += nwords

    def _fold(
        self,
        kind: str,
        tag: int,
        scope: str,
        duration: float,
        messages: int,
        nwords: int,
        comm: bool,
    ) -> None:
        """Locked histogram fold (threaded backend; must hold ``_lock``)."""
        self.by_kind.setdefault(kind, GroupStats()).add(duration, messages, nwords)
        if comm:
            self.by_tag.setdefault(tag, GroupStats()).add(duration, messages, nwords)
        if scope:
            self.by_collective.setdefault(scope, GroupStats()).add(
                duration, messages, nwords
            )

    def observe_overlap(self, rank: int, inflight: float, hidden: float) -> None:
        """Fold one completed nonblocking receive into the overlap stats.

        Called by :class:`repro.machine.nonblocking.RecvRequest` at
        completion time; per-rank fields are thread-confined, so no lock
        is needed even on the threaded backend.
        """
        r = self.ranks[rank]
        r.inflight_seconds += inflight
        r.hidden_seconds += hidden

    # -- aggregates ------------------------------------------------------
    @property
    def message_count(self) -> int:
        return sum(r.messages_sent for r in self.ranks)

    @property
    def message_words(self) -> int:
        return sum(r.words_sent for r in self.ranks)

    @property
    def compute_seconds(self) -> float:
        return sum(r.compute_seconds for r in self.ranks)

    @property
    def comm_seconds(self) -> float:
        return sum(r.comm_seconds for r in self.ranks)

    @property
    def wait_seconds(self) -> float:
        return sum(r.wait_seconds for r in self.ranks)

    def slack(self, makespan: float) -> list[float]:
        """Per-rank idle time: makespan minus the rank's busy seconds."""
        return [makespan - r.busy_seconds for r in self.ranks]

    def scope_totals(self, prefix: str) -> GroupStats:
        """Aggregate stats over every collective scope under *prefix*.

        Scopes nest with ``/`` (``redist/bcast``), so the traffic of one
        labelled phase — e.g. a ``redistribute(..., label="redist")``
        call — is the sum over the label itself and everything nested
        inside it.  Only top-level matches count: ``allreduce/reduce``
        is *not* part of prefix ``reduce``.
        """
        out = GroupStats()
        needle = prefix + "/"
        for key, s in self.by_collective.items():
            if key == prefix or key.startswith(needle):
                out.events += s.events
                out.seconds += s.seconds
                out.messages += s.messages
                out.words += s.words
        return out

    # -- reporting -------------------------------------------------------
    def rank_table(self) -> str:
        table = Table(
            ["rank", "compute", "comm", "wait", "msgs out", "msgs in", "words out"],
            title="Per-rank accounting (simulated seconds)",
        )
        for r in self.ranks:
            table.add_row(
                [
                    f"P{r.rank}",
                    f"{r.compute_seconds:g}",
                    f"{r.comm_seconds:g}",
                    f"{r.wait_seconds:g}",
                    r.messages_sent,
                    r.messages_received,
                    r.words_sent,
                ]
            )
        return table.render()

    def collective_table(self) -> str:
        table = Table(
            ["collective", "events", "seconds", "messages", "words"],
            title="Per-collective accounting",
        )
        for key in sorted(self.by_collective):
            s = self.by_collective[key]
            table.add_row([key, s.events, f"{s.seconds:g}", s.messages, s.words])
        return table.render()

    def tag_table(self) -> str:
        table = Table(
            ["tag", "events", "seconds", "messages", "words"],
            title="Per-tag accounting",
        )
        for key in sorted(self.by_tag):
            s = self.by_tag[key]
            table.add_row([key, s.events, f"{s.seconds:g}", s.messages, s.words])
        return table.render()

    def overlap_table(self) -> str:
        table = Table(
            ["rank", "inflight", "hidden", "overlap ratio"],
            title="Nonblocking overlap (simulated seconds)",
        )
        for r in self.ranks:
            table.add_row(
                [
                    f"P{r.rank}",
                    f"{r.inflight_seconds:g}",
                    f"{r.hidden_seconds:g}",
                    f"{r.overlap_ratio:.3f}",
                ]
            )
        return table.render()

    def fault_table(self) -> str:
        table = Table(
            ["fault", "count"],
            title="Fault / resilience events",
        )
        for key in sorted(self.faults):
            table.add_row([key, self.faults[key]])
        return table.render()

    def service_table(self) -> str:
        table = Table(
            ["counter", "count"],
            title="Compile-service cache",
        )
        for key in sorted(self.service):
            table.add_row([key, self.service[key]])
        return table.render()

    def sparse_table(self) -> str:
        table = Table(
            ["counter", "count"],
            title="Sparse inspector/executor",
        )
        for key in sorted(self.sparse):
            table.add_row([key, self.sparse[key]])
        return table.render()

    def obs_table(self) -> str:
        table = Table(
            ["key", "value"],
            title="Trace correlation",
        )
        for key in sorted(self.obs):
            table.add_row([key, self.obs[key]])
        return table.render()

    def summary(self) -> str:
        parts = [self.rank_table()]
        if any(r.inflight_seconds > 0.0 for r in self.ranks):
            parts.append(self.overlap_table())
        if self.by_collective:
            parts.append(self.collective_table())
        if self.by_tag:
            parts.append(self.tag_table())
        if self.faults:
            parts.append(self.fault_table())
        if self.service:
            parts.append(self.service_table())
        if self.sparse:
            parts.append(self.sparse_table())
        if self.obs:
            parts.append(self.obs_table())
        return "\n\n".join(parts)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (for artifact files and tooling).

        Fully round-trippable through :meth:`from_dict` and deterministic:
        every histogram is emitted in sorted key order (tags numerically,
        kinds/collectives/faults lexically), so two runs with identical
        traffic serialize to byte-identical JSON regardless of dict
        insertion order.
        """

        def stats(s: GroupStats) -> dict:
            return {
                "events": s.events,
                "seconds": s.seconds,
                "messages": s.messages,
                "words": s.words,
            }

        return {
            "nprocs": self.nprocs,
            "message_count": self.message_count,
            "message_words": self.message_words,
            "ranks": [
                {
                    "rank": r.rank,
                    "compute_seconds": r.compute_seconds,
                    "delay_seconds": r.delay_seconds,
                    "comm_seconds": r.comm_seconds,
                    "wait_seconds": r.wait_seconds,
                    "messages_sent": r.messages_sent,
                    "messages_received": r.messages_received,
                    "words_sent": r.words_sent,
                    "words_received": r.words_received,
                    "inflight_seconds": r.inflight_seconds,
                    "hidden_seconds": r.hidden_seconds,
                    "overlap_ratio": r.overlap_ratio,
                }
                for r in self.ranks
            ],
            "by_kind": {k: stats(self.by_kind[k]) for k in sorted(self.by_kind)},
            "by_tag": {str(k): stats(self.by_tag[k]) for k in sorted(self.by_tag)},
            "by_collective": {
                k: stats(self.by_collective[k]) for k in sorted(self.by_collective)
            },
            "faults": {k: self.faults[k] for k in sorted(self.faults)},
            # Only present when a compile service stamped it, keeping
            # pre-service snapshots byte-identical.
            **(
                {"service": {k: self.service[k] for k in sorted(self.service)}}
                if self.service
                else {}
            ),
            # Likewise only present when a sparse kernel stamped it.
            **(
                {"sparse": {k: self.sparse[k] for k in sorted(self.sparse)}}
                if self.sparse
                else {}
            ),
            # Likewise only present when a trace context stamped it.
            **(
                {"obs": {k: self.obs[k] for k in sorted(self.obs)}}
                if self.obs
                else {}
            ),
        }

    @classmethod
    def from_dict(cls, data: dict, threadsafe: bool = False) -> "Metrics":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        The inverse is exact: ``Metrics.from_dict(m.as_dict()).as_dict()
        == m.as_dict()`` (the derived ``message_count``/``message_words``
        and ``overlap_ratio`` entries are recomputed, not trusted).
        """

        def stats(d: dict) -> GroupStats:
            return GroupStats(
                events=int(d["events"]),
                seconds=float(d["seconds"]),
                messages=int(d["messages"]),
                words=int(d["words"]),
            )

        m = cls(nprocs=int(data["nprocs"]), threadsafe=threadsafe)
        for entry in data.get("ranks", []):
            r = m.ranks[int(entry["rank"])]
            r.compute_seconds = float(entry["compute_seconds"])
            r.delay_seconds = float(entry["delay_seconds"])
            r.comm_seconds = float(entry["comm_seconds"])
            r.wait_seconds = float(entry["wait_seconds"])
            r.messages_sent = int(entry["messages_sent"])
            r.messages_received = int(entry["messages_received"])
            r.words_sent = int(entry["words_sent"])
            r.words_received = int(entry["words_received"])
            r.inflight_seconds = float(entry["inflight_seconds"])
            r.hidden_seconds = float(entry["hidden_seconds"])
        m.by_kind = {k: stats(v) for k, v in data.get("by_kind", {}).items()}
        m.by_tag = {int(k): stats(v) for k, v in data.get("by_tag", {}).items()}
        m.by_collective = {
            k: stats(v) for k, v in data.get("by_collective", {}).items()
        }
        m.faults = {k: int(v) for k, v in data.get("faults", {}).items()}
        m.service = {k: int(v) for k, v in data.get("service", {}).items()}
        m.sparse = {k: int(v) for k, v in data.get("sparse", {}).items()}
        m.obs = {k: str(v) for k, v in data.get("obs", {}).items()}
        return m
