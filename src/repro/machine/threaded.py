"""Threaded execution backend: the same SPMD programs, real concurrency.

The deterministic generator engine (:mod:`repro.machine.engine`) is the
primary substrate, but nothing about the programs is simulator-specific:
this module runs the *same* generator functions with one OS thread per
logical processor, blocking receives on condition variables.  Numeric
results are identical (message matching is FIFO per (source, dest, tag)
channel and receives name their source), and the simulated clocks are
still maintained, so analytic comparisons keep working — only the
*scheduling* is now genuinely concurrent.

This stands in for what an mpi4py port would look like, without the MPI
launcher awkwardness: ``run_spmd_threaded(prog, topology, model, ...)``
is a drop-in replacement for :func:`repro.machine.engine.run_spmd`.

Deadlock handling: a watchdog flags the run when every live thread has
been blocked on an empty channel for ``deadlock_timeout`` seconds and
raises :class:`repro.errors.DeadlockError` in the caller.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import DeadlockError, MachineError
from repro.machine.engine import Channel, Proc, RunResult, _Message
from repro.machine.metrics import Metrics
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.machine.trace import TraceEvent


class ThreadedEngine:
    """Duck-type of :class:`repro.machine.engine.Engine` over threads."""

    def __init__(
        self,
        topology: Topology,
        model: MachineModel | None = None,
        trace: bool = False,
        deadlock_timeout: float = 5.0,
    ) -> None:
        self.topology = topology
        self.model = model or MachineModel()
        self.procs = [Proc(self, r) for r in range(topology.size)]
        self._queues: dict[Channel, deque[_Message]] = {}
        self._cv = threading.Condition()
        self._wait_channels: dict[int, Channel] = {}
        self._live = 0
        self._deadlocked = False
        self._deadlock_timeout = deadlock_timeout
        self.message_count = 0
        self.message_words = 0
        self._tracing = trace
        self.trace: list[list[TraceEvent]] = [[] for _ in range(topology.size)]
        self.metrics = Metrics(topology.size, threadsafe=True)

    def _reset_run_state(self) -> None:
        """Reset clocks, queues, counters and lanes before each run."""
        for proc in self.procs:
            proc.clock = 0.0
            proc.scope = ""
        self._queues = {}
        self._wait_channels = {}
        self._deadlocked = False
        self.message_count = 0
        self.message_words = 0
        self.trace = [[] for _ in self.procs]
        self.metrics = Metrics(self.topology.size, threadsafe=True)

    # -- messaging (same protocol the Proc handle expects) ----------------
    def deliver(self, msg: _Message) -> None:
        with self._cv:
            channel: Channel = (msg.source, msg.dest, msg.tag)
            self._queues.setdefault(channel, deque()).append(msg)
            self.message_count += 1
            self.message_words += msg.words
            self._cv.notify_all()

    def try_pop(self, channel: Channel):
        with self._cv:
            queue = self._queues.get(channel)
            if not queue:
                return None
            return queue.popleft()

    def has_message(self, channel: Channel) -> bool:
        with self._cv:
            return bool(self._queues.get(channel))

    def record(
        self, rank: int, kind: str, start: float, end: float,
        peer: int | None = None, words: int = 0, tag: int = 0, detail: str = "",
        scope: str = "",
    ) -> None:
        self.metrics.observe(
            rank, kind, start, end, peer=peer, words=words, tag=tag, scope=scope
        )
        if self._tracing:
            # Each rank appends only to its own lane: no lock needed.
            self.trace[rank].append(
                TraceEvent(rank=rank, kind=kind, start=start, end=end,
                           peer=peer, words=words, tag=tag, detail=detail, scope=scope)
            )

    def _true_deadlock(self) -> bool:
        """All live threads blocked *and* none has a pending message.

        Must be called with the condition lock held.  A thread whose
        message has already arrived but which has not yet woken up still
        counts as waiting, so emptiness of every waited channel is the
        decisive test.
        """
        if len(self._wait_channels) < self._live:
            return False
        return all(not self._queues.get(ch) for ch in self._wait_channels.values())

    # -- scheduler ----------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator],
        args: tuple = (),
        kwargs: dict | None = None,
        per_rank_args: list[tuple] | None = None,
    ) -> RunResult:
        self._reset_run_state()
        kwargs = kwargs or {}
        values: list[Any] = [None] * len(self.procs)
        errors: list[BaseException | None] = [None] * len(self.procs)

        def worker(proc: Proc) -> None:
            rank = proc.rank
            try:
                rank_args = per_rank_args[rank] if per_rank_args is not None else args
                result = program(proc, *rank_args, **kwargs)
                if not isinstance(result, Generator):
                    values[rank] = result
                    return
                while True:
                    try:
                        channel = next(result)
                    except StopIteration as stop:
                        values[rank] = stop.value
                        return
                    # Blocked receive: wait until a message shows up.
                    with self._cv:
                        self._wait_channels[rank] = channel
                        try:
                            while not self._queues.get(channel):
                                if self._deadlocked or self._true_deadlock():
                                    self._deadlocked = True
                                    self._cv.notify_all()
                                    raise DeadlockError({rank: f"recv{channel}"})
                                # A wait timeout alone is not a deadlock —
                                # another thread may simply be computing;
                                # loop and re-check the global condition.
                                self._cv.wait(timeout=self._deadlock_timeout)
                        finally:
                            del self._wait_channels[rank]
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
            finally:
                with self._cv:
                    self._live -= 1
                    self._cv.notify_all()

        threads = [
            threading.Thread(target=worker, args=(proc,), name=f"spmd-{proc.rank}")
            for proc in self.procs
        ]
        self._live = len(threads)
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        deadlocks = [e for e in errors if isinstance(e, DeadlockError)]
        if deadlocks:
            blocked: dict[int, str] = {}
            for rank, e in enumerate(errors):
                if isinstance(e, DeadlockError):
                    blocked.update(e.blocked)
            raise DeadlockError(blocked)
        for e in errors:
            if e is not None:
                raise e

        return RunResult(
            values=values,
            finish_times=[p.clock for p in self.procs],
            message_count=self.message_count,
            message_words=self.message_words,
            trace=self.trace if self._tracing else None,
            metrics=self.metrics,
        )


def run_spmd_threaded(
    program: Callable[..., Generator],
    topology: Topology,
    model: MachineModel | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    per_rank_args: list[tuple] | None = None,
    trace: bool = False,
    deadlock_timeout: float = 5.0,
) -> RunResult:
    """Drop-in threaded counterpart of :func:`repro.machine.run_spmd`."""
    if topology.size > 256:
        raise MachineError(
            f"threaded backend capped at 256 threads, got {topology.size}"
        )
    engine = ThreadedEngine(
        topology, model=model, trace=trace, deadlock_timeout=deadlock_timeout
    )
    return engine.run(program, args=args, kwargs=kwargs, per_rank_args=per_rank_args)
