"""Threaded execution backend: the same SPMD programs, real concurrency.

The deterministic generator engine (:mod:`repro.machine.engine`) is the
primary substrate, but nothing about the programs is simulator-specific:
this module runs the *same* generator functions with one OS thread per
logical processor, blocking receives on condition variables.  Numeric
results are identical (message matching is FIFO per (source, dest, tag)
channel and receives name their source), and the simulated clocks are
still maintained, so analytic comparisons keep working — only the
*scheduling* is now genuinely concurrent.

This stands in for what an mpi4py port would look like, without the MPI
launcher awkwardness: ``run_spmd_threaded(prog, topology, model, ...)``
is a drop-in replacement for :func:`repro.machine.engine.run_spmd`.

Fault injection composes unchanged: message fates are pure functions of
``(seed, channel, attempt)`` (see :mod:`repro.machine.faults`), and the
per-channel attempt/dedup state the Proc layer keeps on the engine is
only ever touched by the single sending thread of that channel.

Deadlock handling: a watchdog flags the run when every live thread has
been blocked on an empty channel for ``deadlock_timeout`` seconds and
raises :class:`repro.errors.DeadlockError` (with a forensics report) in
the caller.  Timed receives (:meth:`Proc.recv_deadline`) piggyback on
the same global-stall detection: when the machine stalls, the timed
waiter with the earliest simulated deadline fires instead of a deadlock
— exactly the generator engine's rule, so both backends time out in the
same simulated order.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import DeadlockError, MachineError, RankCrashedError
from repro.machine.engine import Channel, Proc, RunResult, _Message, park_channels
from repro.machine.faults import FaultPlan, FaultState
from repro.machine.forensics import RECENT_EVENTS, DeadlockReport, build_report
from repro.machine.metrics import Metrics
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.machine.trace import TraceLane
from repro.obs.context import stamp_current


class ThreadedEngine:
    """Duck-type of :class:`repro.machine.engine.Engine` over threads."""

    def __init__(
        self,
        topology: Topology,
        model: MachineModel | None = None,
        trace: bool = False,
        deadlock_timeout: float = 5.0,
        faults: FaultPlan | None = None,
    ) -> None:
        self.topology = topology
        self.model = model or MachineModel()
        self.procs = [Proc(self, r) for r in range(topology.size)]
        self._queues: dict[Channel, deque[_Message]] = {}
        self._cv = threading.Condition()
        # rank -> tuple of channels it is parked on (several for waitany)
        self._wait_channels: dict[int, tuple[Channel, ...]] = {}
        self._live = 0
        self._deadlocked = False
        self._deadlock_timeout = deadlock_timeout
        self.message_count = 0
        self.message_words = 0
        self._tracing = trace
        self.trace: list[TraceLane] = [TraceLane() for _ in range(topology.size)]
        self.metrics = Metrics(topology.size, threadsafe=True)
        self.fault_plan = faults
        self.faults: FaultState | None = None
        self._timed: dict[int, float] = {}  # waiting rank -> recv deadline
        self._timeout_fired: set[int] = set()
        # Route-length cache shared with Proc.send (reads are GIL-atomic;
        # a racing double-compute stores the same deterministic value).
        self._hops: dict[tuple[int, int], int] = {}
        # Attempt counters and reliable-dedup state are keyed by channel;
        # each channel has exactly one sending rank, so each key is only
        # ever touched by that rank's thread (GIL-atomic dict ops).
        self._send_attempts: dict[Channel, int] = {}
        self._reliable_last: dict[Channel, int] = {}
        self._recent: list[deque] = [
            deque(maxlen=RECENT_EVENTS) for _ in range(topology.size)
        ]
        self._deadlock_report: DeadlockReport | None = None

    def _reset_run_state(self) -> None:
        """Reset clocks, queues, counters and lanes before each run."""
        for proc in self.procs:
            proc.clock = 0.0
            proc.scope = ""
        self._queues = {}
        self._wait_channels = {}
        self._deadlocked = False
        self.message_count = 0
        self.message_words = 0
        self.trace = [TraceLane() for _ in self.procs]
        self.metrics = Metrics(self.topology.size, threadsafe=True)
        self.faults = (
            FaultState(self.fault_plan) if self.fault_plan is not None else None
        )
        self._timed = {}
        self._timeout_fired = set()
        self._send_attempts = {}
        self._reliable_last = {}
        self._recent = [deque(maxlen=RECENT_EVENTS) for _ in self.procs]
        self._deadlock_report = None

    # -- messaging (same protocol the Proc handle expects) ----------------
    def deliver(self, msg: _Message) -> None:
        with self._cv:
            channel: Channel = (msg.source, msg.dest, msg.tag)
            self._queues.setdefault(channel, deque()).append(msg)
            if not msg.system:
                self.message_count += 1
                self.message_words += msg.words
            self._cv.notify_all()

    def try_pop(self, channel: Channel):
        with self._cv:
            queue = self._queues.get(channel)
            if not queue:
                return None
            return queue.popleft()

    def try_pop_before(
        self, channel: Channel, deadline: float
    ) -> tuple[str, _Message | None]:
        """Locked counterpart of :meth:`Engine.try_pop_before`."""
        with self._cv:
            queue = self._queues.get(channel)
            if not queue:
                return "empty", None
            if queue[0].available <= deadline:
                return "msg", queue.popleft()
            return "late", None

    def has_message(self, channel: Channel) -> bool:
        with self._cv:
            return bool(self._queues.get(channel))

    def peek_available(self, channel: Channel) -> float | None:
        """Availability time of the FIFO head, or ``None`` when empty."""
        with self._cv:
            queue = self._queues.get(channel)
            if not queue:
                return None
            return queue[0].available

    def has_arrived(self, channel: Channel, now: float) -> bool:
        """True when the FIFO head exists and is available by *now*."""
        avail = self.peek_available(channel)
        return avail is not None and avail <= now

    # -- fault bookkeeping ------------------------------------------------
    def next_attempt(self, channel: Channel) -> int:
        """Per-channel attempt counter (thread-confined to the sender)."""
        attempt = self._send_attempts.get(channel, 0)
        self._send_attempts[channel] = attempt + 1
        return attempt

    def consume_timeout(self, rank: int) -> bool:
        """Check-and-clear the 'your timed receive expired' flag."""
        with self._cv:
            if rank in self._timeout_fired:
                self._timeout_fired.discard(rank)
                return True
            return False

    def record(
        self, rank: int, kind: str, start: float, end: float,
        peer: int | None = None, words: int = 0, tag: int = 0, detail: str = "",
        scope: str = "",
    ) -> None:
        self.metrics.observe(
            rank, kind, start, end, peer, words, tag, scope, detail
        )
        # Each rank appends only to its own lanes: no lock needed.
        self._recent[rank].append((kind, start, end, peer, tag, detail))
        if self._tracing:
            self.trace[rank].append_raw(
                (rank, kind, start, end, peer, words, tag, detail, scope)
            )

    # -- stall detection ---------------------------------------------------
    def _true_deadlock(self) -> bool:
        """All live threads blocked *and* none has a pending wake-up.

        Must be called with the condition lock held.  A thread whose
        message has already arrived but which has not yet woken up still
        counts as waiting, so emptiness of every waited channel is the
        decisive test; a thread whose timeout has fired but which has not
        resumed yet counts as *runnable*, so only one timed waiter fires
        per stall (matching the generator engine's one-event-at-a-time
        rule).
        """
        if len(self._wait_channels) < self._live:
            return False
        if any(rank in self._timeout_fired for rank in self._wait_channels):
            return False
        return all(
            not self._queues.get(ch)
            for chans in self._wait_channels.values()
            for ch in chans
        )

    def _peer_crashed_locked(self, chans: tuple[Channel, ...]) -> bool:
        """True when any source rank of *chans* has a fired injected crash."""
        if self.faults is None:
            return False
        return any(self.faults.fired_crash(ch[0]) is not None for ch in chans)

    def _fire_earliest_timeout_locked(self) -> int | None:
        """Wake the timed waiter with the smallest deadline (lock held)."""
        if not self._timed:
            return None
        rank = min(self._timed, key=lambda r: (self._timed[r], r))
        del self._timed[rank]
        self._timeout_fired.add(rank)
        self._cv.notify_all()
        return rank

    def _build_report_locked(self) -> DeadlockReport:
        waiting = {
            ch: rank for rank, chans in self._wait_channels.items() for ch in chans
        }
        return build_report(
            nprocs=len(self.procs),
            waiting=waiting,
            clocks=[p.clock for p in self.procs],
            timed=dict(self._timed),
            recent=self._recent,
        )

    # -- scheduler ----------------------------------------------------------
    def run(
        self,
        program: Callable[..., Generator],
        args: tuple = (),
        kwargs: dict | None = None,
        per_rank_args: list[tuple] | None = None,
    ) -> RunResult:
        self._reset_run_state()
        kwargs = kwargs or {}
        values: list[Any] = [None] * len(self.procs)
        errors: list[BaseException | None] = [None] * len(self.procs)

        def worker(proc: Proc) -> None:
            rank = proc.rank
            try:
                rank_args = per_rank_args[rank] if per_rank_args is not None else args
                result = program(proc, *rank_args, **kwargs)
                if not isinstance(result, Generator):
                    values[rank] = result
                    return
                while True:
                    try:
                        channel, deadline = next(result)
                    except StopIteration as stop:
                        values[rank] = stop.value
                        return
                    # Blocked receive: wait until a message shows up (or,
                    # for timed receives, until the stall watchdog fires
                    # this rank's deadline).  A nonblocking wait parks on
                    # a *tuple* of channels (waitany) and additionally
                    # wakes when a waited-on peer crashed, so its request
                    # can fail with the crash context instead of wedging.
                    chans = park_channels(channel)
                    nb_park = bool(channel) and isinstance(channel[0], tuple)
                    blocked_desc = " | ".join(
                        f"recv(source={ch[0]}, tag={ch[2]})" for ch in chans
                    )
                    with self._cv:
                        self._wait_channels[rank] = chans
                        if deadline is not None:
                            self._timed[rank] = deadline
                        try:
                            while not any(self._queues.get(ch) for ch in chans):
                                if rank in self._timeout_fired:
                                    break  # resume; recv will consume it
                                if nb_park and self._peer_crashed_locked(chans):
                                    # Resume; the nonblocking wait loop
                                    # raises PeerCrashedError.
                                    break
                                if self._deadlocked:
                                    raise DeadlockError({rank: blocked_desc})
                                if self._true_deadlock():
                                    # Global stall: an expired timed recv
                                    # is the only way forward; none left
                                    # means a true deadlock.
                                    fired = self._fire_earliest_timeout_locked()
                                    if fired is not None:
                                        if fired == rank:
                                            break
                                        continue
                                    self._deadlocked = True
                                    if self._deadlock_report is None:
                                        self._deadlock_report = (
                                            self._build_report_locked()
                                        )
                                    self._cv.notify_all()
                                    raise DeadlockError({rank: blocked_desc})
                                # A wait timeout alone is not a deadlock —
                                # another thread may simply be computing;
                                # loop and re-check the global condition.
                                self._cv.wait(timeout=self._deadlock_timeout)
                        finally:
                            self._wait_channels.pop(rank, None)
                            self._timed.pop(rank, None)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
            finally:
                with self._cv:
                    self._live -= 1
                    self._cv.notify_all()

        threads = [
            threading.Thread(target=worker, args=(proc,), name=f"spmd-{proc.rank}")
            for proc in self.procs
        ]
        self._live = len(threads)
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Error priority: an injected crash is the root cause (consequent
        # deadlocks in peers are collateral), then any other program
        # error, then deadlock.
        for e in errors:
            if isinstance(e, RankCrashedError):
                raise e
        for e in errors:
            if e is not None and not isinstance(e, DeadlockError):
                raise e
        deadlocks = [e for e in errors if isinstance(e, DeadlockError)]
        if deadlocks:
            blocked: dict[int, str] = {}
            for e in deadlocks:
                blocked.update(e.blocked)
            raise DeadlockError(blocked, report=self._deadlock_report)

        # Same correlation stamp as the calendar engine: the twins must
        # produce identical metrics, obs group included.
        stamp_current(self.metrics)
        return RunResult(
            values=values,
            finish_times=[p.clock for p in self.procs],
            message_count=self.message_count,
            message_words=self.message_words,
            trace=self.trace if self._tracing else None,
            metrics=self.metrics,
        )


def run_spmd_threaded(
    program: Callable[..., Generator],
    topology: Topology,
    model: MachineModel | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    per_rank_args: list[tuple] | None = None,
    trace: bool = False,
    deadlock_timeout: float = 5.0,
    faults: FaultPlan | None = None,
) -> RunResult:
    """Drop-in threaded counterpart of :func:`repro.machine.run_spmd`."""
    if topology.size > 256:
        raise MachineError(
            f"threaded backend capped at 256 threads, got {topology.size}"
        )
    engine = ThreadedEngine(
        topology, model=model, trace=trace, deadlock_timeout=deadlock_timeout,
        faults=faults,
    )
    return engine.run(program, args=args, kwargs=kwargs, per_rank_args=per_rank_args)
