"""Interconnect topologies: linear array, ring, 2-D grid, hypercube.

The paper's abstract target machine is a q-D grid of ``N1 x ... x Nq``
processors (§2) which "can be easily embedded into almost any distributed
memory machine", e.g. into a hypercube via a binary reflected Gray code.
This module provides the concrete topologies used by the simulator plus the
Gray-code embedding so that grid communication can be costed on a hypercube.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError


def gray_code(i: int) -> int:
    """The *i*-th binary reflected Gray code."""
    if i < 0:
        raise TopologyError(f"gray_code requires i >= 0, got {i}")
    return i ^ (i >> 1)


def inverse_gray_code(g: int) -> int:
    """Index *i* such that ``gray_code(i) == g``."""
    if g < 0:
        raise TopologyError(f"inverse_gray_code requires g >= 0, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


class Topology:
    """Base class; ranks are ``0..size-1``."""

    size: int
    name: str = "topology"

    def hops(self, a: int, b: int) -> int:
        """Routing distance between ranks *a* and *b* (0 when equal)."""
        raise NotImplementedError

    def neighbors(self, rank: int) -> tuple[int, ...]:
        """Directly connected ranks."""
        raise NotImplementedError

    def check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise TopologyError(f"rank {rank} out of range for {self.name} of size {self.size}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self.size})"


@dataclass(repr=False)
class Linear(Topology):
    """A non-wraparound linear processor array (paper Tables 3, 4)."""

    n: int
    name: str = field(default="linear", init=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise TopologyError(f"Linear needs n >= 1, got {self.n}")
        self.size = self.n

    def hops(self, a: int, b: int) -> int:
        self.check_rank(a)
        self.check_rank(b)
        return abs(a - b)

    def neighbors(self, rank: int) -> tuple[int, ...]:
        self.check_rank(rank)
        out = []
        if rank > 0:
            out.append(rank - 1)
        if rank < self.n - 1:
            out.append(rank + 1)
        return tuple(out)


@dataclass(repr=False)
class Ring(Topology):
    """A wraparound ring (paper Fig 5's four-processor ring)."""

    n: int
    name: str = field(default="ring", init=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise TopologyError(f"Ring needs n >= 1, got {self.n}")
        self.size = self.n

    def hops(self, a: int, b: int) -> int:
        self.check_rank(a)
        self.check_rank(b)
        d = abs(a - b)
        return min(d, self.n - d)

    def neighbors(self, rank: int) -> tuple[int, ...]:
        self.check_rank(rank)
        if self.n == 1:
            return ()
        if self.n == 2:
            return ((rank + 1) % 2,)
        return ((rank - 1) % self.n, (rank + 1) % self.n)

    def right(self, rank: int) -> int:
        """Successor on the ring (direction of ``send_to_right``)."""
        self.check_rank(rank)
        return (rank + 1) % self.n

    def left(self, rank: int) -> int:
        """Predecessor on the ring."""
        self.check_rank(rank)
        return (rank - 1) % self.n


@dataclass(repr=False)
class Grid2D(Topology):
    """An ``n1 x n2`` processor grid (torus); ranks in row-major order.

    A processor is the tuple ``(p1, p2)`` with ``0 <= p_i < N_i`` exactly as
    in §2 of the paper; dimension 1 indexes rows, dimension 2 columns.
    """

    n1: int
    n2: int
    torus: bool = True
    name: str = field(default="grid", init=False)

    def __post_init__(self) -> None:
        if self.n1 < 1 or self.n2 < 1:
            raise TopologyError(f"Grid2D needs positive extents, got {self.n1}x{self.n2}")
        self.size = self.n1 * self.n2

    # -- coordinates ----------------------------------------------------
    def coords(self, rank: int) -> tuple[int, int]:
        self.check_rank(rank)
        return divmod(rank, self.n2)

    def rank_of(self, p1: int, p2: int) -> int:
        if not (0 <= p1 < self.n1 and 0 <= p2 < self.n2):
            raise TopologyError(f"({p1}, {p2}) outside grid {self.n1}x{self.n2}")
        return p1 * self.n2 + p2

    def _axis_hops(self, a: int, b: int, extent: int) -> int:
        d = abs(a - b)
        return min(d, extent - d) if self.torus else d

    def hops(self, a: int, b: int) -> int:
        (a1, a2), (b1, b2) = self.coords(a), self.coords(b)
        return self._axis_hops(a1, b1, self.n1) + self._axis_hops(a2, b2, self.n2)

    def neighbors(self, rank: int) -> tuple[int, ...]:
        p1, p2 = self.coords(rank)
        out: list[int] = []
        for d1, d2 in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            q1, q2 = p1 + d1, p2 + d2
            if self.torus:
                q1 %= self.n1
                q2 %= self.n2
            elif not (0 <= q1 < self.n1 and 0 <= q2 < self.n2):
                continue
            q = self.rank_of(q1, q2)
            if q != rank and q not in out:
                out.append(q)
        return tuple(out)

    # -- groups (for dimension-scoped collectives) ----------------------
    def row_ranks(self, p1: int) -> tuple[int, ...]:
        """All ranks sharing grid-dimension-1 coordinate *p1*."""
        return tuple(self.rank_of(p1, p2) for p2 in range(self.n2))

    def col_ranks(self, p2: int) -> tuple[int, ...]:
        """All ranks sharing grid-dimension-2 coordinate *p2*."""
        return tuple(self.rank_of(p1, p2) for p1 in range(self.n1))

    def dim_group(self, rank: int, dim: int) -> tuple[int, ...]:
        """Ranks that differ from *rank* only along grid dimension *dim*.

        This is the processor set "lying on the specified grid dimension"
        that the paper's collective primitives (§2.2) operate over.
        """
        p1, p2 = self.coords(rank)
        if dim == 1:
            return self.col_ranks(p2)  # vary p1
        if dim == 2:
            return self.row_ranks(p1)  # vary p2
        raise TopologyError(f"grid dimension must be 1 or 2, got {dim}")

    def shift_along(self, rank: int, dim: int, delta: int) -> int:
        """Rank reached by moving *delta* along grid dimension *dim*."""
        p1, p2 = self.coords(rank)
        if dim == 1:
            return self.rank_of((p1 + delta) % self.n1, p2)
        if dim == 2:
            return self.rank_of(p1, (p2 + delta) % self.n2)
        raise TopologyError(f"grid dimension must be 1 or 2, got {dim}")


@dataclass(repr=False)
class Grid3D(Topology):
    """An ``n1 x n2 x n3`` processor grid (torus); ranks lexicographic.

    The paper (§2) notes that "it is possible to use higher dimensional
    grids for achieving faster computation. For example, we can use a 3-D
    grid for computing the 3-nested-loop matrix multiplication algorithm,
    although each data array used in the algorithm is 2-D."
    """

    n1: int
    n2: int
    n3: int
    name: str = field(default="grid3d", init=False)

    def __post_init__(self) -> None:
        if min(self.n1, self.n2, self.n3) < 1:
            raise TopologyError(
                f"Grid3D needs positive extents, got {self.n1}x{self.n2}x{self.n3}"
            )
        self.size = self.n1 * self.n2 * self.n3

    def coords(self, rank: int) -> tuple[int, int, int]:
        self.check_rank(rank)
        p1, rest = divmod(rank, self.n2 * self.n3)
        p2, p3 = divmod(rest, self.n3)
        return (p1, p2, p3)

    def rank_of(self, p1: int, p2: int, p3: int) -> int:
        if not (0 <= p1 < self.n1 and 0 <= p2 < self.n2 and 0 <= p3 < self.n3):
            raise TopologyError(f"({p1}, {p2}, {p3}) outside {self.n1}x{self.n2}x{self.n3}")
        return (p1 * self.n2 + p2) * self.n3 + p3

    def _axis_hops(self, a: int, b: int, extent: int) -> int:
        d = abs(a - b)
        return min(d, extent - d)

    def hops(self, a: int, b: int) -> int:
        ca, cb = self.coords(a), self.coords(b)
        extents = (self.n1, self.n2, self.n3)
        return sum(self._axis_hops(x, y, e) for x, y, e in zip(ca, cb, extents))

    def neighbors(self, rank: int) -> tuple[int, ...]:
        p = list(self.coords(rank))
        extents = (self.n1, self.n2, self.n3)
        out: list[int] = []
        for axis in range(3):
            for delta in (-1, 1):
                q = list(p)
                q[axis] = (q[axis] + delta) % extents[axis]
                r = self.rank_of(*q)
                if r != rank and r not in out:
                    out.append(r)
        return tuple(out)

    def dim_group(self, rank: int, dim: int) -> tuple[int, ...]:
        """Ranks differing from *rank* only along grid dimension *dim*."""
        p1, p2, p3 = self.coords(rank)
        if dim == 1:
            return tuple(self.rank_of(q, p2, p3) for q in range(self.n1))
        if dim == 2:
            return tuple(self.rank_of(p1, q, p3) for q in range(self.n2))
        if dim == 3:
            return tuple(self.rank_of(p1, p2, q) for q in range(self.n3))
        raise TopologyError(f"grid dimension must be 1..3, got {dim}")


@dataclass(repr=False)
class Hypercube(Topology):
    """A *dim*-dimensional hypercube of ``2**dim`` processors."""

    dim: int
    name: str = field(default="hypercube", init=False)

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise TopologyError(f"Hypercube needs dim >= 0, got {self.dim}")
        self.size = 1 << self.dim

    def hops(self, a: int, b: int) -> int:
        self.check_rank(a)
        self.check_rank(b)
        return (a ^ b).bit_count()

    def neighbors(self, rank: int) -> tuple[int, ...]:
        self.check_rank(rank)
        return tuple(rank ^ (1 << d) for d in range(self.dim))

    def embed_ring_rank(self, ring_position: int) -> int:
        """Hypercube node hosting ring position *i* (Gray-code embedding).

        Consecutive ring positions land on hypercube neighbors, which is
        the embedding the paper cites ([10], Ho's thesis).
        """
        if not (0 <= ring_position < self.size):
            raise TopologyError(f"ring position {ring_position} out of range")
        return gray_code(ring_position)
