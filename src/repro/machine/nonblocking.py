"""Nonblocking point-to-point primitives with message aggregation.

The paper's closing remark in §5 observes that "some multiprocessors
allow overlaying the computation and the communication": the compiler
can then hide the transfer time of a pipelined loop behind the interior
computation.  This module realizes that capability at the runtime level
as MPI-style *requests*:

* :meth:`NBComm.isend` — posts a send.  The sender pays only the
  per-message startup :meth:`~repro.machine.model.MachineModel.post_occupancy`
  (``alpha``); the NIC streams the body concurrently, so the message
  becomes available :meth:`~repro.machine.model.MachineModel.posted_wire_latency`
  after the post.  These formulas are exactly the ``overlap=True``
  occupancy/latency split of the machine model, so a nonblocking program
  on a *plain* model sees the same per-message timing a blocking program
  sees on an ``overlap=True`` model — the basis of the analytic
  reconciliation in ``report.py --overlap``.
* :meth:`NBComm.irecv` — posts a receive for free (a zero-duration
  ``irecv`` trace marker) and returns a :class:`RecvRequest` whose
  :meth:`~Request.wait` delivers the payload later, accounting the idle
  gap (if any) as a ``wait`` event and the drain as an ``alpha``-only
  ``recv`` event.
* :func:`waitall` / :func:`waitany` — completion primitives.
  ``waitany`` parks on *all* pending channels at once (both backends
  understand multi-channel parks) and deterministically completes the
  request whose message has the smallest ``(available, index)``.

Aggregation
-----------
``NBComm(p, aggregate_words=W)`` coalesces small sends: an ``isend``
of fewer than ``W`` words is buffered per ``(dest, tag)`` channel and
shipped later as one :class:`_Bundle` wire message — one ``alpha`` for
the whole batch, amortizing the startup cost the paper worries about
when pipelining ("the number of messages matters, not only the
volume").  A channel's buffer is flushed when it reaches ``W`` words,
on any ``wait``/``test``/``waitall``/``waitany`` (so completion never
deadlocks on data parked in a local buffer), or explicitly via
:meth:`NBComm.flush`.  The receiving side must also use ``NBComm``:
its requests transparently unbundle, queuing the remaining parts in a
local inbox (FIFO order is preserved — the inbox is always drained
before the wire queue).

Crashed peers
-------------
A request against a rank killed by an injected
:class:`~repro.machine.faults.CrashFault` fails with
:class:`repro.errors.PeerCrashedError` carrying the crash as context —
on both backends — instead of hanging until the deadlock watchdog.

Determinism
-----------
Everything here preserves the engine's contract: completion order and
timestamps are pure functions of the program and the fault plan, never
of scheduler interleaving, so event and threaded backends agree on
makespans and produce bit-identical numerics.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.errors import CommunicationError, PeerCrashedError
from repro.machine.engine import (
    Channel,
    Proc,
    _payload_copy,
    _payload_words,
)


@dataclass(frozen=True)
class _Bundle:
    """Wire payload of an aggregated send: ``((data, words), ...)``.

    Receivers never see this type — :class:`RecvRequest` unbundles it
    into the communicator's inbox and hands out the parts one request at
    a time, in the order they were buffered.
    """

    parts: tuple[tuple[Any, int], ...]


class Request:
    """Handle for one outstanding nonblocking operation.

    ``done``/``value`` are set once the operation completes; complete a
    request with ``yield from req.wait()`` (returns the payload for
    receives), or poll it with ``req.test()`` (plain call, no simulated
    time cost).
    """

    def __init__(self, comm: "NBComm") -> None:
        self._comm = comm
        self.done = False
        self.value: Any = None

    def wait(self) -> Generator[Any, None, Any]:
        raise NotImplementedError

    def test(self) -> bool:
        raise NotImplementedError


class SendRequest(Request):
    """Handle for an :meth:`NBComm.isend`.

    The engine snapshots payloads at injection time, so a *posted* send
    completes immediately; a send parked in the aggregation buffer
    completes when its channel is flushed.  ``wait``/``test`` force that
    flush (flush-on-wait), so completing a send request is always
    instantaneous in simulated time.
    """

    def __init__(self, comm: "NBComm", dest: int, tag: int, words: int) -> None:
        super().__init__(comm)
        self.dest = dest
        self.tag = tag
        self.words = words

    def _mark_done(self) -> None:
        self.done = True

    def wait(self) -> Generator[Any, None, Any]:
        if not self.done:
            self._comm.flush(dest=self.dest, tag=self.tag)
        return None
        yield  # unreachable; makes wait() a generator like RecvRequest's

    def test(self) -> bool:
        if not self.done:
            self._comm.flush(dest=self.dest, tag=self.tag)
        return self.done


class RecvRequest(Request):
    """Handle for an :meth:`NBComm.irecv`."""

    def __init__(self, comm: "NBComm", source: int, tag: int) -> None:
        super().__init__(comm)
        self.source = source
        self.tag = tag
        p = comm.proc
        self.channel: Channel = (source, p.rank, tag)
        self.posted_at = p.clock

    # -- completion helpers ---------------------------------------------
    def _raise_if_peer_crashed(self) -> None:
        faults = self._comm.proc._engine.faults
        if faults is None:
            return
        crash = faults.fired_crash(self.source)
        if crash is not None:
            raise PeerCrashedError(self._comm.proc.rank, crash)

    def _complete(
        self, data: Any, words: int, available: float, block_start: float,
        drain: bool,
    ) -> Any:
        """Account the delivery and finish this request.

        *drain* is True for a wire message (charge one ``alpha`` — the
        posted-receive drain) and False for an inbox part (its bundle's
        drain was already charged when the bundle was popped).
        """
        p = self._comm.proc
        engine = p._engine
        arrival = max(block_start, available)
        if arrival > block_start:
            engine.record(
                p.rank, "wait", block_start, arrival, self.source,
                words, self.tag, "", p.scope,
            )
        p.clock = arrival
        if drain:
            p.clock += p._scaled(engine.model.post_occupancy(words))
        engine.record(
            p.rank, "recv", arrival, p.clock, self.source, words,
            self.tag, "nb", p.scope,
        )
        # Overlap accounting: of the message's in-flight time after the
        # post, how much was hidden behind local work vs. exposed as
        # blocked waiting?
        inflight = max(0.0, available - self.posted_at)
        blocked = arrival - block_start
        hidden = max(0.0, inflight - blocked)
        engine.metrics.observe_overlap(p.rank, inflight, hidden)
        self.done = True
        self.value = data
        p._maybe_crash()
        return data

    def _complete_message(self, msg: Any, block_start: float) -> Any:
        """Complete from a wire message, unbundling aggregates."""
        if isinstance(msg.data, _Bundle):
            parts = msg.data.parts
            data, words = parts[0]
            for extra_data, extra_words in parts[1:]:
                self._comm._push_inbox(
                    self.channel, extra_data, extra_words, msg.available
                )
            return self._complete(data, words, msg.available, block_start, drain=True)
        return self._complete(
            msg.data, msg.words, msg.available, block_start, drain=True
        )

    # -- public API ------------------------------------------------------
    def wait(self) -> Generator[Any, None, Any]:
        """Block (in simulated time) until the payload is delivered."""
        if self.done:
            return self.value
        comm = self._comm
        comm.flush()  # flush-on-wait: our buffered sends must not starve peers
        p = comm.proc
        engine = p._engine
        block_start = p.clock
        while True:
            self._raise_if_peer_crashed()
            part = comm._pop_inbox(self.channel)
            if part is not None:
                data, words, available = part
                return self._complete(
                    data, words, available, block_start, drain=False
                )
            msg = engine.try_pop(self.channel)
            if msg is not None:
                return self._complete_message(msg, block_start)
            # Nonblocking parks always use the tuple form, even for a
            # single channel: both backends use it to tell nb waits
            # (crash-wakeable) apart from plain blocked receives.
            yield ((self.channel,), None)

    def test(self) -> bool:
        """True (and completed) iff the payload has already arrived.

        A queued message whose availability time lies in this rank's
        simulated future does *not* count — at the current local time
        the request is still in flight.
        """
        if self.done:
            return True
        comm = self._comm
        comm.flush()
        self._raise_if_peer_crashed()
        p = comm.proc
        engine = p._engine
        part = comm._pop_inbox(self.channel)
        if part is not None:
            data, words, available = part
            self._complete(data, words, available, p.clock, drain=False)
            return True
        if engine.has_arrived(self.channel, p.clock):
            msg = engine.try_pop(self.channel)
            self._complete_message(msg, p.clock)
            return True
        return False


class NBComm:
    """Nonblocking communicator bound to one :class:`Proc`.

    Create one per rank inside the program body::

        def prog(p):
            comm = NBComm(p, aggregate_words=64)
            req = comm.irecv(left, tag=1)
            comm.isend(right, block, tag=1)
            p.compute(interior_flops)          # overlaps the transfer
            halo = yield from req.wait()

    ``aggregate_words=0`` (the default) disables aggregation: every
    ``isend`` is posted immediately.
    """

    def __init__(self, p: Proc, aggregate_words: int = 0) -> None:
        if aggregate_words < 0:
            raise CommunicationError(
                f"aggregate_words must be nonnegative, got {aggregate_words}"
            )
        self.proc = p
        self.aggregate_words = int(aggregate_words)
        # (dest, tag) -> [(data, words, request), ...] not yet on the wire
        self._outbox: dict[tuple[int, int], list[tuple[Any, int, SendRequest]]] = {}
        self._outbox_words: dict[tuple[int, int], int] = {}
        # channel -> unbundled parts awaiting their irecv, FIFO
        self._inbox: dict[Channel, deque[tuple[Any, int, float]]] = {}

    # -- inbox (unbundled aggregate parts) -------------------------------
    def _push_inbox(
        self, channel: Channel, data: Any, words: int, available: float
    ) -> None:
        self._inbox.setdefault(channel, deque()).append((data, words, available))

    def _pop_inbox(self, channel: Channel) -> tuple[Any, int, float] | None:
        queue = self._inbox.get(channel)
        if not queue:
            return None
        return queue.popleft()

    def _peek_inbox_available(self, channel: Channel) -> float | None:
        queue = self._inbox.get(channel)
        if not queue:
            return None
        return queue[0][2]

    # -- sends -----------------------------------------------------------
    def isend(
        self, dest: int, data: Any, words: int | None = None, tag: int = 0
    ) -> SendRequest:
        """Post (or buffer) a send; returns a :class:`SendRequest`.

        Small sends (fewer than ``aggregate_words`` words) are buffered
        per channel and coalesced into one wire message; everything else
        is posted immediately, after flushing any buffered predecessors
        on the same channel so FIFO order holds.
        """
        p = self.proc
        p._check_channel(dest, tag, sending=True)
        nwords = _payload_words(data) if words is None else int(words)
        if nwords < 0:
            raise CommunicationError(f"negative message size {nwords}")
        req = SendRequest(self, dest, tag, nwords)
        key = (dest, tag)
        if 0 < nwords < self.aggregate_words:
            self._outbox.setdefault(key, []).append(
                (_payload_copy(data), nwords, req)
            )
            total = self._outbox_words.get(key, 0) + nwords
            self._outbox_words[key] = total
            if total >= self.aggregate_words:
                self._flush_channel(dest, tag)
            return req
        self._flush_channel(dest, tag)
        p.send(dest, data, words=nwords, tag=tag, posted=True)
        req._mark_done()
        return req

    def flush(self, dest: int | None = None, tag: int | None = None) -> None:
        """Ship buffered sends now (all channels, or one ``dest``/``tag``)."""
        keys = [
            key for key in self._outbox
            if (dest is None or key[0] == dest) and (tag is None or key[1] == tag)
        ]
        for key in sorted(keys):
            self._flush_channel(*key)

    def _flush_channel(self, dest: int, tag: int) -> None:
        entries = self._outbox.pop((dest, tag), None)
        self._outbox_words.pop((dest, tag), None)
        if not entries:
            return
        p = self.proc
        if len(entries) == 1:
            data, nwords, req = entries[0]
            p.send(dest, data, words=nwords, tag=tag, posted=True)
        else:
            parts = tuple((data, nwords) for data, nwords, _ in entries)
            total = sum(nwords for _, nwords, _ in entries)
            p.send(dest, _Bundle(parts), words=total, tag=tag, posted=True)
        for _, _, req in entries:
            req._mark_done()

    # -- receives --------------------------------------------------------
    def irecv(self, source: int, tag: int = 0) -> RecvRequest:
        """Post a receive; returns a :class:`RecvRequest` (no time cost)."""
        p = self.proc
        p._check_channel(source, tag, sending=False)
        req = RecvRequest(self, source, tag)
        p._engine.record(
            p.rank, "irecv", p.clock, p.clock, source, 0, tag, "", p.scope,
        )
        return req

    # -- conveniences ----------------------------------------------------
    def waitall(self, requests: list[Request]) -> Generator[Any, None, list]:
        return (yield from waitall(requests))

    def waitany(
        self, requests: list[Request]
    ) -> Generator[Any, None, tuple[int, Any]]:
        return (yield from waitany(requests))


def waitall(requests: list[Request]) -> Generator[Any, None, list]:
    """Complete every request; returns their values in request order.

    Simulated time only moves forward, so completing in index order is
    equivalent to completing in arrival order — the final clock is the
    max over all completions either way.
    """
    values = []
    for req in requests:
        yield from req.wait()
        values.append(req.value)
    return values


def waitany(requests: list[Request]) -> Generator[Any, None, tuple[int, Any]]:
    """Complete one not-yet-complete request; returns ``(index, value)``.

    Requests already complete on entry are ignored (so repeated
    ``waitany`` calls over the same list drain it one request per call);
    when every request is already complete the call is an error.

    Completion rule: among requests whose message has been *delivered*
    (queued on the wire channel or sitting in the aggregation inbox),
    the one with the smallest ``(available, index)`` wins.  Messages not
    yet sent cannot be candidates — the simulator has no global clock to
    rank them against — so when no candidate exists the caller parks on
    every pending channel and the rule re-applies at the next delivery.
    On the threaded backend, which messages are already delivered when a
    non-parked ``waitany`` inspects its channels can depend on real
    scheduling; programs that need strict cross-backend determinism
    should synchronize so candidates are in flight before calling (or
    use :func:`waitall`).
    """
    if not requests:
        raise CommunicationError("waitany() requires at least one request")
    active = [(index, req) for index, req in enumerate(requests) if not req.done]
    if not active:
        raise CommunicationError("waitany(): every request is already complete")
    for comm in {req._comm for _, req in active}:
        comm.flush()
    for index, req in active:  # buffered sends completed by the flush
        if req.done:
            return index, req.value
    while True:
        pending: list[Channel] = []
        candidates: list[tuple[float, int]] = []
        for index, req in active:
            assert isinstance(req, RecvRequest)  # sends completed above
            req._raise_if_peer_crashed()
            comm = req._comm
            available = comm._peek_inbox_available(req.channel)
            if available is None:
                available = comm.proc._engine.peek_available(req.channel)
            if available is not None:
                candidates.append((available, index))
            pending.append(req.channel)
        if candidates:
            _, index = min(candidates)
            req = requests[index]
            yield from req.wait()  # completes immediately: message is queued
            return index, req.value
        # Park on every pending channel at once; dedup in case two
        # requests name the same channel (FIFO gives them distinct
        # messages, but the engine registers one waiter per channel).
        channels = tuple(dict.fromkeys(pending))
        yield (channels, None)
