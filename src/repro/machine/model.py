"""Machine timing model.

The paper characterizes the target machine by two constants (§3):

* ``tf`` — average time of a floating point operation;
* ``tc`` — average time of transferring one word.

We add two optional refinements that default to the paper's assumptions:

* ``alpha`` — fixed per-message overhead (0 in the paper's asymptotic
  model; real hypercubes had a large alpha, which is why the paper worries
  about *numbers of messages* when pipelining);
* ``hop_cost`` — extra latency per additional hop between non-neighbor
  processors (0 models the wormhole/cut-through routing the paper's
  cost table assumes).

``overlap=True`` models hardware that overlays computation with
communication (§5's closing remark): send/receive *occupancy* drops to
``alpha``, while message latency is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CostModelError


@dataclass(frozen=True)
class MachineModel:
    """Timing parameters of the simulated machine.

    The defaults (``tf=1, tc=10``) reflect the era's typical ratio:
    communication an order of magnitude slower than computation per word.
    """

    tf: float = 1.0
    tc: float = 10.0
    alpha: float = 0.0
    hop_cost: float = 0.0
    overlap: bool = False

    def __post_init__(self) -> None:
        for field_name in ("tf", "tc", "alpha", "hop_cost"):
            value = getattr(self, field_name)
            if value < 0:
                raise CostModelError(f"{field_name} must be nonnegative, got {value}")

    # -- endpoint occupancy -------------------------------------------
    def send_occupancy(self, words: int) -> float:
        """Time the sender is busy injecting a *words*-word message."""
        if self.overlap:
            return self.alpha
        return self.alpha + words * self.tc

    def recv_occupancy(self, words: int) -> float:
        """Time the receiver is busy draining a *words*-word message."""
        if self.overlap:
            return self.alpha
        return self.alpha + words * self.tc

    def wire_latency(self, words: int, hops: int) -> float:
        """In-flight time after the sender finishes injecting.

        With ``hop_cost=0`` (the paper's model) a message is available as
        soon as the sender has paid its occupancy.
        """
        extra = self.alpha + words * self.tc if self.overlap else 0.0
        return extra + max(hops - 1, 0) * self.hop_cost

    # -- nonblocking (posted) transfers --------------------------------
    def post_occupancy(self, words: int) -> float:
        """Endpoint cost of *posting* a nonblocking transfer.

        An ``isend`` hands a descriptor to the NIC and an ``irecv`` wait
        drains an already-landed message: both cost only the per-message
        startup ``alpha``, never the per-word time — this is §5's
        "hardware supports overlaying the computation and the
        communication" realized at the runtime level, so it matches
        :meth:`send_occupancy` / :meth:`recv_occupancy` under
        ``overlap=True`` regardless of the flag.
        """
        return self.alpha

    def posted_wire_latency(self, words: int, hops: int) -> float:
        """In-flight time of a posted transfer after the post completes.

        The NIC performs the full ``alpha + words * tc`` transfer while
        the processor computes — identical to :meth:`wire_latency` under
        ``overlap=True``, so a nonblocking program on a plain model and a
        blocking program on an ``overlap=True`` model see the same
        per-message availability times.
        """
        return self.alpha + words * self.tc + max(hops - 1, 0) * self.hop_cost

    def flops(self, count: float) -> float:
        """Time for *count* floating-point operations."""
        return count * self.tf

    def words(self, count: float) -> float:
        """Time to transfer *count* words point-to-point (paper Transfer)."""
        return self.alpha + count * self.tc
