"""Chrome trace-event export for simulator traces.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:

* one *thread* per simulated processor (``tid`` = rank) inside a single
  *process* (``pid`` = 0), named via ``M`` metadata events;
* one *request lane* per rank that posted nonblocking operations
  (``tid`` = 1000 + rank, named ``P<rank> requests``): ``isend`` posts
  and ``irecv`` markers render there, keeping the compute lane clean
  while making the post→completion span of each request visible;
* one complete-duration event (``ph": "X"``) per trace event, with the
  simulated seconds scaled to microseconds (Perfetto's native unit);
* one flow-arrow pair (``ph": "s"`` / ``"f"``) per delivered message,
  binding the send's end to the matching recv's start, so the pipeline
  fill/drain of the paper's Fig 5 is visible as arrows between lanes.

Messages are matched FIFO per ``(source, dest, tag)`` channel — exactly
the engine's delivery discipline — by :func:`match_messages`.
"""

from __future__ import annotations

import json
import pathlib

from repro.machine.trace import TraceEvent

#: Simulated seconds -> Chrome trace microseconds.
TIME_SCALE = 1e6

#: ``tid`` offset of the per-rank nonblocking request lanes.
REQUEST_TID_BASE = 1000

#: ``tid`` of the compiler-phase lane (wall-clock spans, ISSUE 5).
COMPILER_TID = 2000

#: ``tid`` of the sparse inspector/executor counter lane (docs/SPARSE.md).
SPARSE_TID = 3000

#: Event kinds drawn on the request lane instead of the rank's main lane.
_REQUEST_KINDS = ("isend", "irecv")


def _tid(e: TraceEvent) -> int:
    return REQUEST_TID_BASE + e.rank if e.kind in _REQUEST_KINDS else e.rank


def match_messages(
    trace: list[list[TraceEvent]],
) -> list[tuple[TraceEvent, TraceEvent]]:
    """Pair each ``recv`` event with the ``send`` that produced it.

    Lanes are recorded in per-rank program order, which is also FIFO
    order per ``(source, dest, tag)`` channel, so position-wise zipping
    of the per-channel send and recv lists reproduces the engine's
    matching exactly.
    """
    sends: dict[tuple[int, int | None, int], list[TraceEvent]] = {}
    recvs: dict[tuple[int, int | None, int], list[TraceEvent]] = {}
    for lane in trace:
        for e in lane:
            if e.kind in ("send", "isend"):
                sends.setdefault((e.rank, e.peer, e.tag), []).append(e)
            elif e.kind == "recv":
                recvs.setdefault((e.peer, e.rank, e.tag), []).append(e)
    pairs: list[tuple[TraceEvent, TraceEvent]] = []
    for channel, recv_list in recvs.items():
        pairs.extend(zip(sends.get(channel, []), recv_list))
    pairs.sort(key=lambda sr: (sr[0].start, sr[0].rank))
    return pairs


def chrome_trace_events(
    trace: list[list[TraceEvent]],
    process_name: str = "spmd",
    flows: bool = True,
) -> list[dict]:
    """The ``traceEvents`` list for one simulator trace."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    for rank, lane in enumerate(trace):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
             "args": {"name": f"P{rank}"}}
        )
        if any(e.kind in _REQUEST_KINDS for e in lane):
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 0,
                 "tid": REQUEST_TID_BASE + rank,
                 "args": {"name": f"P{rank} requests"}}
            )
    for lane in trace:
        for e in lane:
            args: dict = {"kind": e.kind}
            if e.peer is not None:
                args["peer"] = e.peer
                args["words"] = e.words
                args["tag"] = e.tag
            if e.scope:
                args["scope"] = e.scope
            if e.kind in ("fault", "irecv"):
                # Zero-duration markers (drops, retries, crashes, irecv
                # posts) render as thread-scoped instant events — visible
                # ticks on the rank's lane (or request lane) in Perfetto.
                args["detail"] = e.detail
                events.append(
                    {
                        "name": e.label(),
                        "cat": "request" if e.kind == "irecv" else "fault",
                        "ph": "i",
                        "s": "t",
                        "ts": e.start * TIME_SCALE,
                        "pid": 0,
                        "tid": _tid(e),
                        "args": args,
                    }
                )
                continue
            events.append(
                {
                    "name": e.label(),
                    "cat": e.scope or e.kind,
                    "ph": "X",
                    "ts": e.start * TIME_SCALE,
                    "dur": e.duration * TIME_SCALE,
                    "pid": 0,
                    "tid": _tid(e),
                    "args": args,
                }
            )
    if flows:
        for flow_id, (snd, rcv) in enumerate(match_messages(trace)):
            common = {"name": "msg", "cat": "msg", "pid": 0, "id": flow_id}
            events.append(
                {**common, "ph": "s", "ts": snd.end * TIME_SCALE, "tid": _tid(snd)}
            )
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": rcv.start * TIME_SCALE,
                 "tid": rcv.rank}
            )
    return events


def compiler_lane_events(spans, lane_name: str = "compiler") -> list[dict]:
    """Draw wall-clock compiler spans as one extra Perfetto lane.

    *spans* is a list of :class:`repro.util.spans.Span` (or dicts with
    ``name``/``start``/``end`` keys, seconds).  The lane shares the trace
    process (``pid`` 0) under ``tid`` :data:`COMPILER_TID`; nesting is
    expressed by time containment, which Perfetto renders as a flame
    graph.  Compile time and simulated run time thereby share one
    timeline (both start at t=0; the units differ — wall seconds vs
    simulated seconds — which ``args.clock`` records).
    """
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": COMPILER_TID,
         "args": {"name": lane_name}},
    ]
    for s in spans:
        if not isinstance(s, dict):
            s = s.as_dict()
        if s["end"] == s["start"]:
            # Zero-duration markers (worker crashes, respawns, fallback
            # to in-process compilation — see repro.service.supervisor)
            # render as instant ticks on the compiler lane, mirroring
            # the simulator's "fault" instants on the rank lanes.
            events.append(
                {
                    "name": s["name"],
                    "cat": "service-fault",
                    "ph": "i",
                    "s": "t",
                    "ts": s["start"] * TIME_SCALE,
                    "pid": 0,
                    "tid": COMPILER_TID,
                    "args": {"clock": "wall"},
                }
            )
            continue
        events.append(
            {
                "name": s["name"],
                "cat": "compile",
                "ph": "X",
                "ts": s["start"] * TIME_SCALE,
                "dur": (s["end"] - s["start"]) * TIME_SCALE,
                "pid": 0,
                "tid": COMPILER_TID,
                "args": {"clock": "wall", "depth": s.get("depth", 0)},
            }
        )
    return events


def sparse_lane_events(sparse: dict, lane_name: str = "sparse") -> list[dict]:
    """Draw ``Metrics.sparse`` counters as one extra Perfetto lane.

    *sparse* is the counter dict a sparse kernel stamped
    (:func:`repro.pipeline.inspector.stamp_sparse`).  Counters have no
    time extent, so each renders as a t=0 thread-scoped instant event
    under ``tid`` :data:`SPARSE_TID` with its value in ``args`` —
    mirroring how service-fault markers land on the compiler lane, and
    keeping schedule provenance (built vs cache-served, words per sweep)
    in the same document as the traffic it explains.
    """
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": SPARSE_TID,
         "args": {"name": lane_name}},
    ]
    for key in sorted(sparse):
        events.append(
            {
                "name": f"sparse/{key}",
                "cat": "sparse",
                "ph": "i",
                "s": "t",
                "ts": 0,
                "pid": 0,
                "tid": SPARSE_TID,
                "args": {"value": int(sparse[key])},
            }
        )
    return events


def merge_events(*event_lists: list[dict]) -> list[dict]:
    """Concatenate trace-event lists, deduplicating ``M`` metadata.

    Each lane helper emits its own ``process_name``/``thread_name``
    metadata so it is loadable standalone; when lanes are combined — or
    an exporter is invoked twice over the same Metrics — the repeats
    would pile up.  Only the first metadata event per
    ``(name, pid, tid, args)`` identity survives; all non-metadata
    events pass through in order.
    """
    seen: set[tuple] = set()
    out: list[dict] = []
    for events in event_lists:
        for e in events:
            if e.get("ph") == "M":
                key = (
                    e.get("name"), e.get("pid"), e.get("tid"),
                    tuple(sorted(e.get("args", {}).items())),
                )
                if key in seen:
                    continue
                seen.add(key)
            out.append(e)
    return out


def _flow_id(run_id: str) -> int:
    """A stable flow-arrow id for a run's compile→run boundary arrow.

    Message flow arrows are numbered 0..N-1, so boundary arrows live in
    a disjoint high range derived deterministically from the run id (no
    ``hash()`` — that is salted per process).
    """
    acc = 0
    for ch in run_id:
        acc = (acc * 131 + ord(ch)) % 1_000_000
    return 10_000_000 + acc


def correlated_trace_json(
    trace: list[list[TraceEvent]],
    spans=None,
    context=None,
    process_name: str = "spmd",
    metadata: dict | None = None,
    sparse: dict | None = None,
) -> dict:
    """One merged timeline: compiler lane + rank lanes + a boundary arrow.

    The correlated form of :func:`chrome_trace_json`
    (docs/OBSERVABILITY.md): *spans* draw the compile-service wall-clock
    lane, *trace* the simulated rank lanes, and *context* (a
    :class:`~repro.obs.context.TraceContext`) is recorded under
    ``otherData.trace_context`` and bound visually by a flow-arrow pair
    named ``compile->run`` from the end of the last compiler span to the
    first simulated event — the one-id-links-everything story, drawn.
    """
    lanes = [chrome_trace_events(trace, process_name=process_name)]
    if spans:
        lanes.append(compiler_lane_events(spans))
    if sparse:
        lanes.append(sparse_lane_events(sparse))
    events = merge_events(*lanes)
    if context is not None and spans:
        span_dicts = [s if isinstance(s, dict) else s.as_dict() for s in spans]
        compile_end = max(s["end"] for s in span_dicts)
        first = min(
            (e for lane in trace for e in lane),
            key=lambda e: (e.start, e.rank),
            default=None,
        )
        common = {
            "name": "compile->run",
            "cat": "obs",
            "pid": 0,
            "id": _flow_id(context.run_id),
        }
        events.append(
            {**common, "ph": "s", "ts": compile_end * TIME_SCALE,
             "tid": COMPILER_TID}
        )
        events.append(
            {**common, "ph": "f", "bp": "e",
             "ts": (first.start if first else 0.0) * TIME_SCALE,
             "tid": _tid(first) if first else 0}
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other = dict(metadata) if metadata else {}
    if context is not None:
        other["trace_context"] = context.as_dict()
    if other:
        doc["otherData"] = other
    return doc


def chrome_trace_json(
    trace: list[list[TraceEvent]],
    process_name: str = "spmd",
    metadata: dict | None = None,
    spans=None,
    sparse: dict | None = None,
) -> dict:
    """A complete JSON-object-format trace document.

    Pass *spans* (from :class:`repro.util.spans.SpanRecorder`) to add the
    compiler-phase lane next to the simulated rank lanes, and *sparse*
    (``Metrics.sparse``) to add the inspector/executor counter lane.
    """
    lanes = [chrome_trace_events(trace, process_name=process_name)]
    if spans:
        lanes.append(compiler_lane_events(spans))
    if sparse:
        lanes.append(sparse_lane_events(sparse))
    doc = {
        "traceEvents": merge_events(*lanes),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    return doc


def write_chrome_trace(
    path: str | pathlib.Path,
    trace: list[list[TraceEvent]],
    process_name: str = "spmd",
    metadata: dict | None = None,
    spans=None,
    sparse: dict | None = None,
) -> pathlib.Path:
    """Write a Perfetto-loadable trace file and return its path."""
    path = pathlib.Path(path)
    doc = chrome_trace_json(
        trace, process_name=process_name, metadata=metadata, spans=spans,
        sparse=sparse,
    )
    path.write_text(json.dumps(doc, indent=1))
    return path
