"""Resilience layer: reliable transfers, checkpoints, crash supervision.

Three cooperating pieces turn the perfect-machine SPMD programs of the
paper into programs that survive the faults :mod:`repro.machine.faults`
injects:

* :class:`ReliableTransport` — a stop-and-wait reliable-transfer
  protocol over :class:`repro.machine.engine.Proc`: every data message
  carries a per-channel sequence number, the engine's deliver layer
  synthesizes a hardware-level ack (tag ``ACK_TAG_BASE + tag``) and
  deduplicates retransmissions, and the sender waits for the ack with a
  timeout, retransmitting with exponential backoff up to
  ``RetryPolicy.max_retries`` before raising
  :class:`repro.errors.RetryExhaustedError`.  Because it subclasses
  :class:`repro.machine.collectives.Transport`, every collective (and
  :func:`repro.distribution.runtime.redistribute`) can run over it via
  the ``transport=`` parameter without algorithm changes.
* :class:`CheckpointStore` — stable storage for per-rank kernel state,
  saved every few iterations.  The consistent restore point is the
  *minimum over ranks of each rank's newest step*: bulk-synchronous
  kernels keep ranks within one checkpoint interval of each other, so
  ``keep=2`` retained steps always cover it.
* :func:`run_resilient` — the crash supervisor.  It runs a program under
  a :class:`FaultPlan` on either backend; when an injected crash kills a
  rank (surfacing as :class:`RankCrashedError`, or as a consequential
  deadlock/retry-exhaustion in the survivors), it disables the fired
  crash — that machine "came back" — and restarts the program, which
  resumes from the last consistent checkpoint.  Fault counters from the
  failed attempts and the restart count are folded into the final
  :class:`repro.machine.metrics.Metrics`.

Determinism: a crash-free plan never alters payload bytes or delivery
*order* (stop-and-wait delivers each sequence number exactly once, in
order), so numeric results stay bit-identical to the fault-free run —
see ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import copy
import threading
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    CommunicationError,
    DeadlockError,
    FaultError,
    PeerCrashedError,
    RankCrashedError,
    RetryExhaustedError,
)
from repro.machine.collectives import Transport
from repro.machine.engine import (
    ACK_TAG_BASE,
    TIMED_OUT,
    Engine,
    Proc,
    RunResult,
    _payload_words,
)
from repro.machine.faults import CrashFault, FaultPlan
from repro.machine.model import MachineModel
from repro.machine.threaded import ThreadedEngine
from repro.machine.topology import Topology


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs of the reliable-transfer protocol.

    ``timeout`` is the ack deadline of the first attempt in simulated
    seconds; when ``None`` it is derived from the machine model as a
    generous multiple of the message round-trip
    (:meth:`timeout_for`).  Each retransmission multiplies the deadline
    by ``backoff``, so the total wait before
    :class:`repro.errors.RetryExhaustedError` grows geometrically and
    outlasts any bounded injected delay.
    """

    timeout: float | None = None
    max_retries: int = 8
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise FaultError(f"retry timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise FaultError(f"backoff must be >= 1, got {self.backoff}")

    def timeout_for(self, model: MachineModel, words: int) -> float:
        """Ack deadline for a *words*-word message on *model*.

        Covers data transfer + one-word ack, with a 4x margin for rank
        slowdowns and a constant floor so zero-word messages still get a
        real window.
        """
        if self.timeout is not None:
            return self.timeout
        return 4.0 * (model.words(words) + model.words(1)) + 4.0 * model.alpha + 1.0


class ReliableTransport(Transport):
    """Acked, sequence-numbered sends over the plain engine primitives.

    One instance may be shared by every rank of a run: sequence counters
    are keyed by ``(sender, dest, tag)``, and each key is only ever
    touched by the owning sender's thread.  Receives are inherited
    unchanged — all reliability machinery (dedup, ack synthesis) lives
    on the send path and in the engine's deliver layer.
    """

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy or RetryPolicy()
        self._next_seq: dict[tuple[int, int, int], int] = {}
        self._outstanding: dict[tuple[int, int, int], "ReliableSendRequest"] = {}

    def send(
        self, p: Proc, dest: int, data: Any, words: int | None = None, tag: int = 0
    ) -> Generator[Any, None, None]:
        key = (p.rank, dest, tag)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        nwords = _payload_words(data) if words is None else int(words)
        base_timeout = self.policy.timeout_for(p.model, nwords)
        ack_tag = ACK_TAG_BASE + tag
        attempts = self.policy.max_retries + 1
        for attempt in range(attempts):
            if attempt > 0:
                p.mark("retry", peer=dest, tag=tag)
            p.send(dest, data, words=words, tag=tag, seq=seq)
            deadline = p.clock + base_timeout * (self.policy.backoff**attempt)
            while True:
                ack = yield from p.recv_deadline(dest, tag=ack_tag, deadline=deadline)
                if ack is TIMED_OUT:
                    break
                if isinstance(ack, int) and ack >= seq:
                    return  # acknowledged
                # Stale ack of an earlier sequence number (a re-ack of a
                # suppressed duplicate): drain it and keep waiting.
        raise RetryExhaustedError(p.rank, dest, tag, attempts)

    def isend(
        self, p: Proc, dest: int, data: Any, words: int | None = None, tag: int = 0
    ) -> "ReliableSendRequest":
        """Nonblocking reliable send: post now, ack-wait at ``wait()``.

        The data message goes out through the posted (``isend``) path —
        the sender pays only ``alpha`` — and the returned request's
        :meth:`~ReliableSendRequest.wait` runs the stop-and-wait
        ack/retry loop with deadlines anchored at the *post* time, so
        compute performed between ``isend`` and ``wait`` counts toward
        the ack window: the ack is serviced while compute proceeds, and
        ``wait`` merely drains it.

        At most one reliable request may be outstanding per ``(dest,
        tag)`` channel: a second concurrent one would consume the
        first's acks (they share the ack tag), so overlapping posts on
        one channel raise :class:`repro.errors.CommunicationError` —
        complete the previous request first.
        """
        key = (p.rank, dest, tag)
        outstanding = self._outstanding.get(key)
        if outstanding is not None and not outstanding.done:
            raise CommunicationError(
                f"P{p.rank} already has an outstanding reliable isend to "
                f"P{dest} on tag {tag}; wait() it before posting another"
            )
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        request = ReliableSendRequest(self, p, dest, data, words, tag, seq)
        self._outstanding[key] = request
        return request


class ReliableSendRequest:
    """Outstanding reliable transfer posted by :meth:`ReliableTransport.isend`.

    Mirrors the :class:`repro.machine.nonblocking.Request` protocol
    (``done`` flag, generator ``wait()``) so it composes with
    :func:`repro.machine.nonblocking.waitall`.
    """

    def __init__(
        self,
        transport: ReliableTransport,
        p: Proc,
        dest: int,
        data: Any,
        words: int | None,
        tag: int,
        seq: int,
    ) -> None:
        self._transport = transport
        self._p = p
        self._data = data
        self._words = words
        self._nwords = _payload_words(data) if words is None else int(words)
        self.dest = dest
        self.tag = tag
        self.seq = seq
        self.done = False
        self.value: Any = None
        p.send(dest, data, words=words, tag=tag, seq=seq, posted=True)
        self._posted_clock = p.clock

    def wait(self) -> Generator[Any, None, None]:
        """Wait for the ack, retransmitting on timeout like ``send``."""
        if self.done:
            return
        p = self._p
        policy = self._transport.policy
        base_timeout = policy.timeout_for(p.model, self._nwords)
        ack_tag = ACK_TAG_BASE + self.tag
        attempts = policy.max_retries + 1
        anchor = self._posted_clock
        for attempt in range(attempts):
            if attempt > 0:
                p.mark("retry", peer=self.dest, tag=self.tag)
                p.send(
                    self.dest, self._data, words=self._words, tag=self.tag,
                    seq=self.seq, posted=True,
                )
                anchor = p.clock
            deadline = anchor + base_timeout * (policy.backoff**attempt)
            while True:
                ack = yield from p.recv_deadline(
                    self.dest, tag=ack_tag, deadline=deadline
                )
                if ack is TIMED_OUT:
                    break
                if isinstance(ack, int) and ack >= self.seq:
                    self.done = True
                    return
        raise RetryExhaustedError(p.rank, self.dest, self.tag, attempts)

    def test(self) -> bool:
        """True (and completed) iff the ack has already arrived.

        Never retransmits — retries are driven by :meth:`wait`'s
        simulated-time deadlines, which a zero-cost poll must not touch.
        """
        if self.done:
            return True
        p = self._p
        ack_tag = ACK_TAG_BASE + self.tag
        ack_channel = (self.dest, p.rank, ack_tag)
        while p._engine.has_arrived(ack_channel, p.clock):
            msg = p._engine.try_pop(ack_channel)
            ack = msg.data
            if isinstance(ack, int) and ack >= self.seq:
                self.done = True
                return True
        return False


class CheckpointStore:
    """Stable storage for per-rank, per-step kernel state.

    Survives engine restarts (it lives outside the run), so a program
    restarted by :func:`run_resilient` finds the checkpoints of the
    crashed attempt.  States are deep-copied on the way in and out —
    a checkpoint must not alias live kernel arrays.

    Only the newest ``keep`` steps per rank are retained.  ``keep=2``
    suffices for bulk-synchronous kernels: a rank can be at most one
    checkpoint interval ahead of any other (each save happens behind a
    collective every rank participates in), so the consistent restore
    step — ``min`` over ranks of each rank's newest step — is always
    still retained on every rank.
    """

    def __init__(self, nprocs: int, keep: int = 2) -> None:
        if nprocs <= 0:
            raise FaultError(f"nprocs must be positive, got {nprocs}")
        if keep < 1:
            raise FaultError(f"keep must be >= 1, got {keep}")
        self.nprocs = nprocs
        self.keep = keep
        self._states: list[dict[int, Any]] = [{} for _ in range(nprocs)]
        self._lock = threading.Lock()
        self.saves = 0
        self.restores = 0

    def save(self, rank: int, step: int, state: Any) -> None:
        """Checkpoint *state* for *rank* at iteration *step*."""
        with self._lock:
            saved = self._states[rank]
            saved[step] = copy.deepcopy(state)
            while len(saved) > self.keep:
                del saved[min(saved)]
            self.saves += 1

    def latest_common_step(self) -> int | None:
        """Newest step every rank has saved, or ``None`` before the first.

        ``min`` over ranks of each rank's newest saved step: the unique
        consistent restore point (see class docstring).
        """
        with self._lock:
            if any(not saved for saved in self._states):
                return None
            return min(max(saved) for saved in self._states)

    def load(self, rank: int, step: int) -> Any:
        """Fetch *rank*'s state at *step* (deep copy)."""
        with self._lock:
            saved = self._states[rank]
            if step not in saved:
                raise FaultError(
                    f"P{rank} has no checkpoint for step {step} "
                    f"(retained: {sorted(saved)})"
                )
            self.restores += 1
            return copy.deepcopy(saved[step])

    def clear(self) -> None:
        with self._lock:
            self._states = [{} for _ in range(self.nprocs)]


@dataclass
class ResilientResult:
    """Outcome of a supervised run: the final result plus restart history."""

    result: RunResult
    restarts: int
    fired_crashes: tuple[CrashFault, ...] = ()
    plan: FaultPlan | None = None  # plan of the final (successful) attempt

    @property
    def values(self) -> list[Any]:
        return self.result.values

    def value(self, rank: int = 0) -> Any:
        return self.result.value(rank)

    @property
    def makespan(self) -> float:
        return self.result.makespan

    @property
    def metrics(self):
        return self.result.metrics


#: Errors that may be the *symptom* of an injected crash: the crash
#: itself, the survivors deadlocking on the dead rank, a nonblocking
#: request failing against it, or a reliable sender exhausting retries
#: against it.
_RESTARTABLE = (
    RankCrashedError,
    DeadlockError,
    PeerCrashedError,
    RetryExhaustedError,
)


def run_resilient(
    program: Callable[..., Generator],
    topology: Topology,
    model: MachineModel | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    per_rank_args: list[tuple] | None = None,
    plan: FaultPlan | None = None,
    backend: str = "engine",
    trace: bool = False,
    max_restarts: int = 4,
    deadlock_timeout: float = 5.0,
) -> ResilientResult:
    """Run *program* under *plan*, restarting across injected crashes.

    A failed attempt whose engine fired at least one injected crash is
    restarted with those crashes removed from the plan (the machine
    recovered); programs using a caller-owned :class:`CheckpointStore`
    (passed through *kwargs*) resume from their last consistent
    checkpoint instead of from scratch.  Errors with no fired crash —
    genuine deadlocks, retry exhaustion under pure message loss — are
    re-raised unchanged.

    The returned metrics fold in the fault counters of every failed
    attempt plus a ``restart`` counter, so ``metrics.faults`` accounts
    for the whole supervised run, not just the successful attempt.
    """
    if backend not in ("engine", "threaded"):
        raise FaultError(f"unknown backend {backend!r}: use 'engine' or 'threaded'")
    current = plan if plan is not None else FaultPlan()
    restarts = 0
    fired_total: list[CrashFault] = []
    carried_faults: dict[str, int] = {}

    while True:
        if backend == "engine":
            engine: Engine | ThreadedEngine = Engine(
                topology, model=model, trace=trace, faults=current
            )
        else:
            engine = ThreadedEngine(
                topology, model=model, trace=trace,
                deadlock_timeout=deadlock_timeout, faults=current,
            )
        try:
            result = engine.run(
                program, args=args, kwargs=kwargs, per_rank_args=per_rank_args
            )
            break
        except _RESTARTABLE:
            fired = engine.faults.fired_crashes if engine.faults is not None else ()
            if not fired or restarts >= max_restarts:
                raise
            for key, count in engine.metrics.faults.items():
                carried_faults[key] = carried_faults.get(key, 0) + count
            for crash in fired:
                current = current.without_crash(crash.rank, crash.at_time)
            fired_total.extend(fired)
            restarts += 1

    metrics = result.metrics
    if metrics is not None:
        for key, count in carried_faults.items():
            metrics.faults[key] = metrics.faults.get(key, 0) + count
        if restarts:
            metrics.faults["restart"] = metrics.faults.get("restart", 0) + restarts
    return ResilientResult(
        result=result,
        restarts=restarts,
        fired_crashes=tuple(fired_total),
        plan=current,
    )
