"""Collective communication built from point-to-point messages.

These are the paper's §2.2 primitives realized as SPMD generator
functions.  Each operates over an explicit *group* — an ordered tuple of
ranks, typically a whole machine or one grid dimension
(:meth:`repro.machine.topology.Grid2D.dim_group`), matching the paper's
"processors lying on the specified grid dimension(s)".

Algorithms are the classic hypercube ones, so simulated costs match
Table 1 of the paper:

===========================  =========================  =================
paper primitive              function                   cost shape
===========================  =========================  =================
Transfer(m)                  ``Proc.send`` / ``recv``   O(m)
Shift(m)                     :func:`shift`              O(m)
OneToManyMulticast(m, seq)   :func:`bcast`              O(m log P)
Reduction(m, seq)            :func:`reduce`             O(m log P)
AffineTransform(m, seq)      :func:`affine_transform`   O(m) per pair
Scatter(m, seq)              :func:`scatter`            O(m P)
Gather(m, seq)               :func:`gather`             O(m P)
ManyToManyMulticast(m, seq)  :func:`allgather`          O(m P)
===========================  =========================  =================

All collectives must be invoked with ``yield from`` and called by *every*
member of the group, in the same order (standard SPMD contract).
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence
from typing import Any

import numpy as np

from repro.errors import CommunicationError
from repro.machine.engine import Proc


class Transport:
    """Pluggable point-to-point layer underneath the collectives.

    The base class forwards straight to the engine primitives
    (:meth:`Proc.send` / :meth:`Proc.recv`); the resilience layer
    substitutes :class:`repro.machine.resilient.ReliableTransport`, which
    adds sequence numbers, ack waits and retransmission without the
    collective algorithms changing at all.  Both methods return iterables
    driven with ``yield from``.  The plain implementations avoid one
    generator allocation per message: ``send`` completes eagerly and
    returns an empty iterable, ``recv`` returns the engine's receive
    generator directly (a reliable send, by contrast, yields while
    parked for its ack).
    """

    def send(
        self, p: Proc, dest: int, data: Any, words: int | None = None, tag: int = 0
    ) -> tuple:
        p.send(dest, data, words=words, tag=tag)
        return ()

    def recv(self, p: Proc, source: int, tag: int = 0) -> Generator[Any, None, Any]:
        return p.recv(source, tag=tag)


#: Shared default transport (stateless).
PLAIN_TRANSPORT = Transport()


def _group_index(p: Proc, group: Sequence[int]) -> int:
    # Identity-layout groups (tuple(range(n)) — whole machine, ring rows)
    # are the overwhelming common case; rank == position resolves them in
    # O(1) where a .index() scan is O(|group|) per collective call, which
    # dominated N=1024+ profiles.
    r = p.rank
    if 0 <= r < len(group) and group[r] == r:
        return r
    try:
        return group.index(r)  # type: ignore[union-attr]
    except (ValueError, AttributeError):
        idx = [i for i, m in enumerate(group) if m == r]
        if not idx:
            raise CommunicationError(
                f"P{p.rank} is not a member of collective group {tuple(group)}"
            ) from None
        return idx[0]


def _root_index(group: Sequence[int], root: int) -> int:
    """Position of *root* in *group*, as a :class:`CommunicationError`.

    ``group.index(root)`` would raise a bare ``ValueError`` that escapes
    the machine-error hierarchy; rooted collectives use this instead.
    Identity-layout groups resolve in O(1) as in ``_group_index``.
    """
    if 0 <= root < len(group) and group[root] == root:
        return root
    for i, r in enumerate(group):
        if r == root:
            return i
    raise CommunicationError(
        f"root {root} is not a member of collective group {tuple(group)}"
    )


def _combine(a: Any, b: Any, op: Callable[[Any, Any], Any] | None, p: Proc) -> Any:
    """Merge two partial values, charging one flop per element."""
    if op is not None:
        result = op(a, b)
    elif isinstance(a, np.ndarray):
        result = a + b
    else:
        result = a + b
    words = int(a.size) if isinstance(a, np.ndarray) else 1
    p.compute(words, label="reduce-op")
    return result


def bcast(
    p: Proc,
    data: Any,
    root: int,
    group: Sequence[int],
    tag: int = 101,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """OneToManyMulticast: binomial-tree broadcast from *root* over *group*.

    Returns the broadcast value on every member.
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    root_idx = _root_index(group, root)
    if n <= 1:
        return data
    rel = (me - root_idx) % n
    value = data if p.rank == root else None
    with p.scoped("bcast"):
        k = 1
        while k < n:
            if rel < k:
                peer_rel = rel + k
                if peer_rel < n:
                    yield from tx.send(p, group[(peer_rel + root_idx) % n], value, tag=tag)
            elif rel < 2 * k:
                src_rel = rel - k
                value = yield from tx.recv(p, group[(src_rel + root_idx) % n], tag=tag)
            k *= 2
    return value


def reduce(
    p: Proc,
    value: Any,
    root: int,
    group: Sequence[int],
    op: Callable[[Any, Any], Any] | None = None,
    tag: int = 102,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """Reduction: binomial-tree reduce to *root*; returns result at root.

    *op* defaults to elementwise addition (the paper's inner-product
    reductions); it must be associative and commutative (§2.2).
    Non-root members return ``None``.
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    root_idx = _root_index(group, root)
    if n <= 1:
        return value
    rel = (me - root_idx) % n
    acc = value
    with p.scoped("reduce"):
        k = 1
        while k < n:
            if rel % (2 * k) == 0:
                peer_rel = rel + k
                if peer_rel < n:
                    other = yield from tx.recv(p, group[(peer_rel + root_idx) % n], tag=tag)
                    acc = _combine(acc, other, op, p)
            elif rel % (2 * k) == k:
                yield from tx.send(p, group[(rel - k + root_idx) % n], acc, tag=tag)
                return None
            k *= 2
    return acc if p.rank == root else None


def allreduce(
    p: Proc,
    value: Any,
    group: Sequence[int],
    op: Callable[[Any, Any], Any] | None = None,
    tag: int = 103,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """Reduce to the group's first rank, then broadcast the result."""
    n = len(group)
    _group_index(p, group)
    if n <= 1:
        return value
    root = group[0]
    with p.scoped("allreduce"):
        partial = yield from reduce(p, value, root, group, op=op, tag=tag, transport=transport)
        result = yield from bcast(p, partial, root, group, tag=tag + 1, transport=transport)
    return result


def gather(
    p: Proc,
    value: Any,
    root: int,
    group: Sequence[int],
    tag: int = 104,
    transport: Transport | None = None,
) -> Generator[Any, None, list[Any] | None]:
    """Gather: root receives one value per member, in group order.

    Root serializes the receives, giving the paper's O(m * num(seq)) cost.
    """
    tx = transport or PLAIN_TRANSPORT
    _group_index(p, group)
    _root_index(group, root)
    if len(group) == 1:
        return [value]
    with p.scoped("gather"):
        if p.rank == root:
            out: list[Any] = []
            for member in group:
                if member == root:
                    out.append(value)
                else:
                    item = yield from tx.recv(p, member, tag=tag)
                    out.append(item)
            return out
        yield from tx.send(p, root, value, tag=tag)
    return None


def scatter(
    p: Proc,
    items: Sequence[Any] | None,
    root: int,
    group: Sequence[int],
    tag: int = 105,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """Scatter: root sends ``items[i]`` to the i-th group member."""
    tx = transport or PLAIN_TRANSPORT
    _group_index(p, group)
    _root_index(group, root)
    if len(group) == 1:
        if items is None or len(items) != 1:
            raise CommunicationError("scatter needs exactly one item per group member")
        return items[0]
    with p.scoped("scatter"):
        if p.rank == root:
            if items is None or len(items) != len(group):
                raise CommunicationError(
                    f"scatter root needs {len(group)} items, "
                    f"got {None if items is None else len(items)}"
                )
            mine: Any = None
            for member, item in zip(group, items):
                if member == root:
                    mine = item
                else:
                    yield from tx.send(p, member, item, tag=tag)
            return mine
        value = yield from tx.recv(p, root, tag=tag)
    return value


def allgather(
    p: Proc,
    value: Any,
    group: Sequence[int],
    tag: int = 106,
    transport: Transport | None = None,
) -> Generator[Any, None, list[Any]]:
    """ManyToManyMulticast: ring allgather; returns values in group order.

    P-1 steps, each forwarding one block to the ring successor, for the
    paper's O(m * num(seq)) cost.
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    blocks: list[Any] = [None] * n
    blocks[me] = value
    if n == 1:
        return blocks
    right = group[(me + 1) % n]
    left = group[(me - 1) % n]
    with p.scoped("allgather"):
        for step in range(n - 1):
            send_idx = (me - step) % n
            recv_idx = (me - step - 1) % n
            yield from tx.send(p, right, blocks[send_idx], tag=tag)
            blocks[recv_idx] = yield from tx.recv(p, left, tag=tag)
    return blocks


def shift(
    p: Proc,
    data: Any,
    group: Sequence[int],
    delta: int = 1,
    tag: int = 107,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """Shift: circular shift of data by *delta* positions along *group*.

    Every member sends to its ``+delta`` neighbor and receives from its
    ``-delta`` neighbor (paper's Shift along a grid dimension).
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    if n == 1 or delta % n == 0:
        return data
    dest = group[(me + delta) % n]
    src = group[(me - delta) % n]
    with p.scoped("shift"):
        yield from tx.send(p, dest, data, tag=tag)
        received = yield from tx.recv(p, src, tag=tag)
    return received


def affine_transform(
    p: Proc,
    data: Any,
    group: Sequence[int],
    transform: Callable[[int], int],
    tag: int = 108,
    transport: Transport | None = None,
) -> Generator[Any, None, Any]:
    """AffineTransform: permutation exchange over *group*.

    *transform* maps group positions to group positions and must be a
    bijection; each member sends its data to ``transform(position)`` and
    receives from the unique inverse position.
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    images = [transform(i) % n for i in range(n)]
    if sorted(images) != list(range(n)):
        raise CommunicationError("affine_transform mapping is not a permutation")
    dest_idx = images[me]
    src_idx = images.index(me)
    if dest_idx == me and src_idx == me:
        return data
    with p.scoped("affine"):
        if dest_idx != me:
            yield from tx.send(p, group[dest_idx], data, tag=tag)
        if src_idx != me:
            data = yield from tx.recv(p, group[src_idx], tag=tag)
    return data


def exchange(
    p: Proc,
    sends: Sequence[tuple[int, Any]],
    recv_from: Sequence[int],
    tag: int = 110,
    transport: Transport | None = None,
) -> Generator[Any, None, dict[int, Any]]:
    """Pairwise exchange: the irregular all-to-all building block.

    *sends* lists ``(dest, payload)`` pairs this rank contributes;
    *recv_from* lists the ranks it expects one payload from.  Both sides
    must agree on the pairing (the redistribution planner computes it
    deterministically on every rank).  Sends are posted before any
    receive, so any pairing is deadlock-free; at most one payload per
    (sender, receiver) pair under one tag.  A self-pair is delivered
    locally without touching the network.
    """
    tx = transport or PLAIN_TRANSPORT
    received: dict[int, Any] = {}
    with p.scoped("exchange"):
        for dest, payload in sends:
            if dest == p.rank:
                received[dest] = payload
            else:
                yield from tx.send(p, dest, payload, tag=tag)
        for src in recv_from:
            if src == p.rank:
                if src not in received:
                    raise CommunicationError(
                        f"P{p.rank} expects a self-payload it never posted"
                    )
                continue
            received[src] = yield from tx.recv(p, src, tag=tag)
    return received


def barrier(
    p: Proc,
    group: Sequence[int],
    tag: int = 109,
    transport: Transport | None = None,
) -> Generator[Any, None, None]:
    """Dissemination barrier: log P rounds of zero-word messages.

    After the barrier every member's clock is at least the group maximum at
    entry (clocks propagate through the message exchanges).
    """
    tx = transport or PLAIN_TRANSPORT
    n = len(group)
    me = _group_index(p, group)
    with p.scoped("barrier"):
        k = 1
        while k < n:
            yield from tx.send(p, group[(me + k) % n], None, tag=tag)
            yield from tx.recv(p, group[(me - k) % n], tag=tag)
            k *= 2
    return None
