"""Critical-path analysis of simulator traces.

The makespan of an SPMD run is determined by one chain of dependent
events — local work chained on each processor's clock, stitched across
processors by message edges.  :func:`critical_path` reconstructs that
chain from a trace by walking backwards from the last-finishing event:

* a ``recv`` that was preceded by a blocked ``wait`` was *bound by the
  message*: the walk jumps to the matching ``send`` on the sender's
  lane (paying any in-flight wire latency as a ``wire`` gap);
* every other event was bound by its own processor's clock: the walk
  steps to the immediately preceding event on the same lane.

Because the engine records ``wait`` events for every blocked interval,
each lane is gap-free from time 0 to the processor's finish time, so
the reconstructed path tiles ``[0, makespan]`` exactly and its length
equals the makespan — a structural invariant the tests rely on.

Per-rank *slack* (makespan minus the rank's busy seconds) shows which
processors pace the run (zero slack) and which idle — the measured
counterpart of the paper's load-balance arguments for cyclic
distributions (§5, §6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.export import match_messages
from repro.machine.trace import TraceEvent
from repro.util.tables import Table

_EPS = 1e-9


@dataclass(frozen=True)
class PathStep:
    """One event on the critical path.

    ``wire`` is the in-flight latency paid immediately *before* this
    event started (nonzero only for message-bound receives on machines
    with ``hop_cost`` or overlap latency).
    """

    event: TraceEvent
    wire: float = 0.0


@dataclass
class CriticalPathReport:
    """The longest dependency chain of one run, plus per-rank slack."""

    steps: list[PathStep]  # in increasing time order
    makespan: float
    slack: list[float]  # per-rank: makespan - busy seconds

    @property
    def length(self) -> float:
        """Total path time: event durations plus wire gaps."""
        return sum(s.event.duration + s.wire for s in self.steps)

    def ranks_visited(self) -> list[int]:
        """Ranks along the path in time order, deduplicated consecutively."""
        out: list[int] = []
        for s in self.steps:
            if not out or out[-1] != s.event.rank:
                out.append(s.event.rank)
        return out

    def time_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.steps:
            out[s.event.kind] = out.get(s.event.kind, 0.0) + s.event.duration
        wire = sum(s.wire for s in self.steps)
        if wire > 0:
            out["wire"] = wire
        return out

    def describe(self, max_steps: int = 20) -> str:
        head = (
            f"critical path: length {self.length:g} (makespan {self.makespan:g}), "
            f"{len(self.steps)} events across ranks {self.ranks_visited()}"
        )
        by_kind = ", ".join(f"{k}={v:g}" for k, v in sorted(self.time_by_kind().items()))
        table = Table(["t_start", "t_end", "proc", "event"], title="Path tail")
        for s in self.steps[-max_steps:]:
            e = s.event
            table.add_row([f"{e.start:.2f}", f"{e.end:.2f}", f"P{e.rank}", e.label()])
        slack = " ".join(f"P{r}={s:g}" for r, s in enumerate(self.slack))
        return f"{head}\nby kind: {by_kind}\nslack: {slack}\n{table.render()}"


def _lane_busy(lane: list[TraceEvent]) -> float:
    return sum(e.duration for e in lane if e.kind != "wait")


def critical_path(trace: list[list[TraceEvent]]) -> CriticalPathReport:
    """Walk message edges backwards to the chain that sets the makespan."""
    makespan = max((e.end for lane in trace for e in lane), default=0.0)
    slack = [makespan - _lane_busy(lane) for lane in trace]
    if makespan <= 0:
        return CriticalPathReport(steps=[], makespan=makespan, slack=slack)

    send_of = {id(rcv): snd for snd, rcv in match_messages(trace)}
    index_of = {id(e): (rank, i) for rank, lane in enumerate(trace) for i, e in enumerate(lane)}

    cur: TraceEvent | None = max(
        (e for lane in trace for e in lane), key=lambda e: (e.end, -e.rank)
    )
    steps: list[PathStep] = []
    visited: set[int] = set()
    while cur is not None:
        if id(cur) in visited:  # degenerate zero-duration cycles: stop
            break
        visited.add(id(cur))
        rank, i = index_of[id(cur)]
        prev = trace[rank][i - 1] if i > 0 else None
        if (
            cur.kind == "recv"
            and prev is not None
            and prev.kind == "wait"
            and prev.peer == cur.peer
            and prev.tag == cur.tag
            and abs(prev.end - cur.start) <= _EPS
        ):
            # Message-bound receive: the constraint chain runs through the
            # sender; the idle wait itself is not on the path.
            snd = send_of.get(id(cur))
            if snd is not None:
                steps.append(PathStep(cur, wire=max(0.0, cur.start - snd.end)))
                cur = snd
                continue
        steps.append(PathStep(cur))
        if prev is not None and prev.end >= cur.start - _EPS:
            cur = prev
        else:
            cur = None  # reached the start of this rank's timeline
    steps.reverse()
    return CriticalPathReport(steps=steps, makespan=makespan, slack=slack)
