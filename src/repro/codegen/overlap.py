"""Emission of overlapped (latency-hiding) stencil programs.

:func:`emit_stencil_overlap` prints the SPMD listing for the rewritten
loop bodies produced by the overlap scheduling pass
(:func:`repro.pipeline.overlap.overlap_schedule`): per sweep,

    post irecv  ->  isend halos  ->  compute interior
                ->  wait         ->  compute boundary strips

instead of the blocking ``exchange ; compute whole block`` shape of
:func:`repro.codegen.stencil.emit_stencil`.  Tags, pad layout, slice
arithmetic and the allgather finish are identical to the blocking
emitter, and each statement is compiled by the same expression compiler
over interior/boundary subranges of the same block range — NumPy
elementwise ops are elementwise-identical under slicing, so the emitted
program's results are bit-identical to the blocking listing's.
"""

from __future__ import annotations

from repro.codegen.emitter import CodeWriter
from repro.codegen.spmd import GeneratedProgram
from repro.codegen.stencil import (
    StencilPattern,
    _affine_to_py,
    _compile_expr,
    _count_ops,
)
from repro.pipeline.overlap import OverlapSchedule, overlap_schedule


def _emit_stmts(w: CodeWriter, sweep, pattern: StencilPattern, lo: str, hi: str, label: str) -> None:
    for st in sweep.stmts:
        expr = _compile_expr(st.rhs, sweep.var, pattern, lo_name=lo, hi_name=hi)
        flops = _count_ops(st.rhs)
        hl = pattern.halo[st.lhs_array][0]
        off = st.lhs_offset
        w.line(
            f"pads['{st.lhs_array}'][{hl} + {off} + {lo} : {hl} + {off} + {hi}] = {expr}"
        )
        if flops:
            w.line(f"p.compute({flops} * ({hi} - {lo}), label='{label}')")


def emit_stencil_overlap(
    pattern: StencilPattern, schedule: OverlapSchedule | None = None
) -> GeneratedProgram:
    """Emit the overlapped SPMD stencil program for a recognized pattern.

    *schedule* defaults to running the overlap pass on *pattern*; passing
    one in lets callers inspect/render the same rewrite that was emitted.
    """
    sched = schedule if schedule is not None else overlap_schedule(pattern)
    w = CodeWriter()
    w.lines(
        "# generated: block-distributed stencil sweeps with halo transfers",
        "# hidden behind interior compute (overlap pass: post irecv ->",
        "# isend -> compute interior -> wait -> compute boundary strips).",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"m = int(env['{pattern.size_param}'])",
            "n = p.nprocs",
            "assert m % n == 0, 'stencil lowering needs N | m'",
            "cnt = m // n",
            "lo = p.rank * cnt",
            "hi = lo + cnt",
            "left = (p.rank - 1) % n",
            "right = (p.rank + 1) % n",
            "comm = NBComm(p)",
            "pads = {}",
        )
        for name in pattern.arrays:
            hl, hr = pattern.halo[name]
            w.lines(
                f"_g = np.asarray(env['{name}'], dtype=np.float64)",
                f"pads['{name}'] = np.zeros(cnt + {hl} + {hr})",
                f"pads['{name}'][{hl}:{hl} + cnt] = _g[lo:hi]",
            )
        steps = f"int(env['{pattern.time_param}'])" if pattern.time_param else "1"
        w.line(f"steps = {steps}")
        with w.block("for _step in range(steps):"):
            for sweep, ov in zip(pattern.sweeps, sched.sweeps):
                si = ov.index
                w.line(
                    f"# sweep {si + 1}: DO {sweep.var} = {sweep.lb}, {sweep.ub}"
                    f"  [{' -> '.join(ov.phases)}]"
                )
                halos = {ex.array: pattern.halo[ex.array] for ex in ov.exchanges}
                if ov.exchanges:
                    with w.block("if n > 1:"):
                        # Phase 1: post every receive before anything moves.
                        for ex in ov.exchanges:
                            if ex.direction == "left":
                                w.line(
                                    f"req_l_{ex.array} = comm.irecv(left, tag={90 + si})"
                                )
                            else:
                                w.line(
                                    f"req_r_{ex.array} = comm.irecv(right, tag={190 + si})"
                                )
                        # Phase 2: post the matching halo sends.
                        for ex in ov.exchanges:
                            hl, hr = halos[ex.array]
                            if ex.direction == "left":
                                w.line(
                                    f"comm.isend(right, pads['{ex.array}'][cnt:{hl} + cnt], tag={90 + si})"
                                )
                            else:
                                w.line(
                                    f"comm.isend(left, pads['{ex.array}'][{hl}:{hl} + {hr}], tag={190 + si})"
                                )
                # Iteration subrange owned by this block, respecting bounds
                # (same arithmetic as the blocking emitter).
                lb_expr = _affine_to_py(sweep.lb, pattern.size_param)
                ub_expr = _affine_to_py(sweep.ub, pattern.size_param)
                w.lines(
                    f"g_lo = max({lb_expr}, lo + 1)",
                    f"g_hi = min({ub_expr}, hi)",
                    "s0 = g_lo - 1 - lo",
                    "s1 = g_hi - lo",
                )
                if not ov.exchanges:
                    with w.block("if s1 > s0:"):
                        _emit_stmts(w, sweep, pattern, "s0", "s1", "sweep")
                    continue
                # Phase 3: interior — stencil windows stay inside the pad.
                w.lines(
                    f"i0 = min(max(s0, {ov.margin_left}), s1)",
                    f"i1 = max(min(s1, cnt - {ov.margin_right}), i0)",
                )
                with w.block("if i1 > i0:"):
                    _emit_stmts(w, sweep, pattern, "i0", "i1", "interior")
                # Phase 4: wait for the halos the boundary strips need.
                with w.block("if n > 1:"):
                    for ex in ov.exchanges:
                        hl, hr = halos[ex.array]
                        if ex.direction == "left":
                            w.line(
                                f"pads['{ex.array}'][:{hl}] = yield from req_l_{ex.array}.wait()"
                            )
                        else:
                            w.line(
                                f"pads['{ex.array}'][{hl} + cnt:] = yield from req_r_{ex.array}.wait()"
                            )
                # Phase 5: boundary strips (the deferred block edges).
                with w.block("for b0, b1 in ((s0, i0), (i1, s1)):"):
                    with w.block("if b1 > b0:"):
                        _emit_stmts(w, sweep, pattern, "b0", "b1", "boundary")
        w.line("out = {}")
        for name in pattern.arrays:
            hl, _hr = pattern.halo[name]
            w.lines(
                f"blocks = yield from allgather(p, pads['{name}'][{hl}:{hl} + cnt], tuple(range(n)))",
                f"out['{name}'] = np.concatenate([np.atleast_1d(b) for b in blocks])",
            )
        w.line("return out")
    return GeneratedProgram(
        source=w.source(),
        entry="spmd_main",
        strategy="stencil-overlap",
        pattern=pattern,
    )
