"""Generic lowering of 1-D data-parallel (stencil) sweeps.

The paper's opening classification (§1): "if dependent data only
influence neighboring data, an efficient component-alignment algorithm
can be used to partition and distribute data arrays" — i.e. block
distribution plus neighbor Shift communication.  This module implements
that compilation path *generically*, not via a canned template:

* :func:`match_stencil_sweep` recognizes an (optionally time-stepped)
  sequence of 1-D parallel loops whose statements assign ``A(i)`` from
  references ``B(i + c)`` with constant offsets, verifying with the
  dependence analyzer that no loop carries a dependence at its own level
  (each sweep is truly parallel);
* :func:`emit_stencil` generates an SPMD program: block distribution of
  every array, per-sweep halo exchange sized by the maximal negative and
  positive offsets of each referenced array (one Shift per direction),
  then vectorized local computation compiled from the expression trees.

The generated program is checked element-for-element against a direct
sequential interpretation of the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.emitter import CodeWriter
from repro.codegen.spmd import GeneratedProgram
from repro.dependence.analysis import find_dependences
from repro.errors import CodegenError
from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    UnaryOp,
)

# ---------------------------------------------------------------------------
# pattern
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepStmt:
    """One recognized statement ``lhs(i + c0) = f(refs(i + c), scalars)``."""

    lhs_array: str
    lhs_offset: int
    rhs: Expr
    offsets: tuple[tuple[str, int], ...]  # (array, offset) pairs read


@dataclass(frozen=True)
class Sweep:
    """One parallel loop over ``var = lb .. ub`` (bounds affine in m)."""

    var: str
    lb: Affine
    ub: Affine
    stmts: tuple[SweepStmt, ...]


@dataclass(frozen=True)
class StencilPattern:
    """A recognized (time-stepped) stencil program."""

    size_param: str
    time_param: str | None  # None: single application
    arrays: tuple[str, ...]
    scalars: tuple[str, ...]
    sweeps: tuple[Sweep, ...]

    @property
    def halo(self) -> dict[str, tuple[int, int]]:
        """Per-array (left, right) halo width over all sweeps."""
        halo: dict[str, tuple[int, int]] = {name: (0, 0) for name in self.arrays}
        for sweep in self.sweeps:
            for stmt in sweep.stmts:
                for name, off in stmt.offsets:
                    left, right = halo[name]
                    halo[name] = (max(left, -off), max(right, off))
        return halo


def _offset_of(sub: Affine, var: str) -> int | None:
    """The c of ``var + c``; None if the subscript has any other shape."""
    if sub.coeff(var) != 1:
        return None
    rest = sub - Affine.var(var)
    return rest.const if rest.is_constant else None


def _extract_stmt(stmt: Assign, var: str, program: Program) -> SweepStmt | None:
    lhs = stmt.lhs
    if not isinstance(lhs, ArrayRef) or lhs.rank != 1:
        return None
    lhs_off = _offset_of(lhs.subscripts[0], var)
    if lhs_off != 0:
        # Owner computes: iteration i must write its own element A(i).
        return None
    offsets: list[tuple[str, int]] = []

    def visit(expr: Expr) -> bool:
        if isinstance(expr, Num):
            return True
        if isinstance(expr, ScalarRef):
            return expr.name in program.scalars or expr.name in program.params
        if isinstance(expr, ArrayRef):
            if expr.rank != 1:
                return False
            off = _offset_of(expr.subscripts[0], var)
            if off is None:
                return False
            offsets.append((expr.name, off))
            return True
        if isinstance(expr, UnaryOp):
            return visit(expr.operand)
        if isinstance(expr, BinOp):
            return visit(expr.left) and visit(expr.right)
        return False

    if not visit(stmt.rhs):
        return None
    return SweepStmt(
        lhs_array=lhs.name,
        lhs_offset=lhs_off,
        rhs=stmt.rhs,
        offsets=tuple(offsets),
    )


def _extract_sweep(loop: DoLoop, program: Program) -> Sweep | None:
    stmts: list[SweepStmt] = []
    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            return None
        extracted = _extract_stmt(stmt, loop.var, program)
        if extracted is None:
            return None
        stmts.append(extracted)
    if not stmts:
        return None
    # Parallelism check: no dependence carried by this loop itself.
    for dep in find_dependences([loop]):
        if dep.carried_level() == 0:
            return None
    return Sweep(var=loop.var, lb=loop.lb, ub=loop.ub, stmts=tuple(stmts))


def match_stencil_sweep(program: Program) -> StencilPattern | None:
    """Recognize a (time-stepped) sequence of parallel 1-D sweeps."""
    arrays = tuple(sorted(program.arrays))
    if any(program.arrays[a].rank != 1 for a in arrays):
        return None
    if len(program.params) < 1:
        return None
    size_param = None
    for name, decl in program.arrays.items():
        ext = decl.extents[0]
        if len(ext.coeffs) == 1 and ext.const == 0:
            (var, coeff), = ext.coeffs.items()
            if coeff == 1:
                size_param = size_param or var
                if var != size_param:
                    return None
    if size_param is None:
        return None

    body = program.body
    time_param: str | None = None
    if len(body) == 1 and isinstance(body[0], DoLoop):
        outer = body[0]
        if all(isinstance(s, DoLoop) for s in outer.body):
            inner_ok = all(
                outer.var not in s.lb.variables() and outer.var not in s.ub.variables()
                for s in outer.body
                if isinstance(s, DoLoop)
            )
            ub = outer.ub
            if (
                inner_ok
                and outer.lb == Affine.constant(1)
                and len(ub.coeffs) == 1
                and ub.const == 0
            ):
                (tp, coeff), = ub.coeffs.items()
                if coeff == 1 and tp != size_param:
                    time_param = tp
                    body = list(outer.body)

    sweeps: list[Sweep] = []
    for stmt in body:
        if not isinstance(stmt, DoLoop):
            return None
        sweep = _extract_sweep(stmt, program)
        if sweep is None:
            return None
        sweeps.append(sweep)
    if not sweeps:
        return None
    return StencilPattern(
        size_param=size_param,
        time_param=time_param,
        arrays=arrays,
        scalars=tuple(program.scalars),
        sweeps=tuple(sweeps),
    )


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------


def _compile_expr(
    expr: Expr,
    var: str,
    pattern: StencilPattern,
    lo_name: str = "s0",
    hi_name: str = "s1",
) -> str:
    """Compile an expression to a NumPy slice expression over local pads.

    Array ``W`` is held as ``W_pad`` with left halo ``HL[W]``; global
    element ``i + c`` of the block maps to ``W_pad[HL + c : HL + c + cnt]``.
    ``lo_name``/``hi_name`` are the emitted slice-bound variables (the
    overlap emitter compiles each statement twice, over interior and
    boundary subranges).
    """
    halo = pattern.halo

    def go(e: Expr) -> str:
        if isinstance(e, Num):
            return repr(float(e.value))
        if isinstance(e, ScalarRef):
            return f"env['{e.name}']"
        if isinstance(e, ArrayRef):
            off = _offset_of(e.subscripts[0], var)
            assert off is not None
            left = halo[e.name][0]
            lo = left + off
            return f"pads['{e.name}'][{lo} + {lo_name} : {lo} + {hi_name}]"
        if isinstance(e, UnaryOp):
            return f"(-{go(e.operand)})" if e.op == "-" else go(e.operand)
        if isinstance(e, BinOp):
            return f"({go(e.left)} {e.op} {go(e.right)})"
        raise CodegenError(f"cannot compile expression node {e!r}")

    return go(expr)


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------


def emit_stencil(pattern: StencilPattern) -> GeneratedProgram:
    """Emit the SPMD stencil program for a recognized pattern."""
    w = CodeWriter()
    w.lines(
        "# generated: block-distributed stencil sweeps with neighbor halo",
        "# exchange (paper S1: 'dependent data only influence neighboring",
        "# data' -> component alignment + Shift communication).",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"m = int(env['{pattern.size_param}'])",
            "n = p.nprocs",
            "assert m % n == 0, 'stencil lowering needs N | m'",
            "cnt = m // n",
            "lo = p.rank * cnt",
            "hi = lo + cnt",
            "left = (p.rank - 1) % n",
            "right = (p.rank + 1) % n",
            "pads = {}",
        )
        for name in pattern.arrays:
            hl, hr = pattern.halo[name]
            w.lines(
                f"_g = np.asarray(env['{name}'], dtype=np.float64)",
                f"pads['{name}'] = np.zeros(cnt + {hl} + {hr})",
                f"pads['{name}'][{hl}:{hl} + cnt] = _g[lo:hi]",
            )
        steps = f"int(env['{pattern.time_param}'])" if pattern.time_param else "1"
        w.line(f"steps = {steps}")
        with w.block("for _step in range(steps):"):
            for si, sweep in enumerate(pattern.sweeps):
                w.line(f"# sweep {si + 1}: DO {sweep.var} = {sweep.lb}, {sweep.ub}")
                # Halo exchange (Shift) for the arrays this sweep reads.
                # Boundary wrap values are never consumed: the sweep bounds
                # keep edge iterations away from non-existent neighbors.
                read = sorted({name for st in sweep.stmts for name, _ in st.offsets})
                for name in read:
                    hl, hr = pattern.halo[name]
                    if hl:
                        with w.block("if n > 1:"):
                            w.lines(
                                f"p.send(right, pads['{name}'][cnt:{hl} + cnt], tag={90 + si})",
                                f"pads['{name}'][:{hl}] = yield from p.recv(left, tag={90 + si})",
                            )
                    if hr:
                        with w.block("if n > 1:"):
                            w.lines(
                                f"p.send(left, pads['{name}'][{hl}:{hl} + {hr}], tag={190 + si})",
                                f"pads['{name}'][{hl} + cnt:] = yield from p.recv(right, tag={190 + si})",
                            )
                # Iteration subrange owned by this block, respecting bounds.
                lb_expr = _affine_to_py(sweep.lb, pattern.size_param)
                ub_expr = _affine_to_py(sweep.ub, pattern.size_param)
                w.lines(
                    f"g_lo = max({lb_expr}, lo + 1)",
                    f"g_hi = min({ub_expr}, hi)",
                    "s0 = g_lo - 1 - lo",
                    "s1 = g_hi - lo",
                )
                with w.block("if s1 > s0:"):
                    for st in sweep.stmts:
                        expr = _compile_expr(st.rhs, sweep.var, pattern)
                        flops = _count_ops(st.rhs)
                        hl = pattern.halo[st.lhs_array][0]
                        off = st.lhs_offset
                        w.line(
                            f"pads['{st.lhs_array}'][{hl} + {off} + s0 : {hl} + {off} + s1] = {expr}"
                        )
                        if flops:
                            w.line(f"p.compute({flops} * (s1 - s0), label='sweep')")
        w.line("out = {}")
        for name in pattern.arrays:
            hl, _hr = pattern.halo[name]
            w.lines(
                f"blocks = yield from allgather(p, pads['{name}'][{hl}:{hl} + cnt], tuple(range(n)))",
                f"out['{name}'] = np.concatenate([np.atleast_1d(b) for b in blocks])",
            )
        w.line("return out")
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy="stencil", pattern=pattern
    )


def _count_ops(expr: Expr) -> int:
    """Arithmetic operations per element of a vectorized statement."""
    if isinstance(expr, BinOp):
        return 1 + _count_ops(expr.left) + _count_ops(expr.right)
    if isinstance(expr, UnaryOp):
        return (1 if expr.op == "-" else 0) + _count_ops(expr.operand)
    return 0


def _affine_to_py(aff: Affine, size_param: str) -> str:
    parts = [str(aff.const)]
    for var, coeff in sorted(aff.coeffs.items()):
        if var != size_param:
            raise CodegenError(f"stencil bounds may only use {size_param!r}, got {var!r}")
        parts.append(f"{coeff} * m")
    return " + ".join(parts)
