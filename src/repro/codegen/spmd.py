"""SPMD program emission (paper Figs 6 and 8).

:func:`generate_spmd` recognizes the input program, chooses a strategy and
emits a runnable Python SPMD generator function:

* ``jacobi`` programs — block row distribution per the §4 DP result
  (Table 3 layout): local GEMV + update + allgather of X;
* ``sor`` programs — the ring software pipeline of Fig 5/Fig 6, derived
  from the §5 analysis (column blocks per Table 4, V values circulating);
* ``gauss`` programs — the cyclic-distribution pipeline of Fig 8,
  justified by the §6 token analysis: the generator *checks* (via
  :func:`repro.pipeline.mapping.choose_mapping`) that every communicated
  token is local or neighbor-pipelinable before emitting Shift-based
  code, and falls back to multicast code otherwise.

The emitted source uses only the documented runtime surface
(:mod:`repro.codegen.runtime_api`); :func:`load_generated` compiles it
and returns the entry callable for :func:`repro.machine.run_spmd`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.emitter import CodeWriter
from repro.codegen.patterns import (
    GaussPattern,
    IterativeSolvePattern,
    MatmulPattern,
    match_gauss,
    match_iterative_solve,
    match_matmul,
)
from repro.codegen.runtime_api import runtime_namespace
from repro.errors import CodegenError
from repro.lang.ast import Program
from repro.pipeline.mapping import choose_mapping
from repro.util.spans import spanned


@dataclass(frozen=True)
class GeneratedProgram:
    """Emitted SPMD source plus metadata."""

    source: str
    entry: str
    strategy: str
    pattern: object

    def env_keys(self) -> tuple[str, ...]:
        if isinstance(self.pattern, IterativeSolvePattern):
            keys = [self.pattern.A, self.pattern.B, "X0", "iterations"]
            if self.pattern.omega:
                keys.append(self.pattern.omega)
            return tuple(keys)
        if isinstance(self.pattern, GaussPattern):
            return (self.pattern.A, self.pattern.B)
        if isinstance(self.pattern, MatmulPattern):
            return (self.pattern.left, self.pattern.right)
        return ()


@spanned("codegen/emit")
def generate_spmd(program: Program, strategy: str | None = None) -> GeneratedProgram:
    """Recognize *program* and emit SPMD source for it.

    *strategy* optionally forces ``"data-parallel"``, ``"ring-pipeline"``
    or ``"cyclic-pipeline"``; by default the pattern kind decides.
    """
    it = match_iterative_solve(program)
    if it is not None:
        if strategy is None:
            strategy = "data-parallel" if it.kind == "jacobi" else "ring-pipeline"
        if strategy == "data-parallel":
            return _emit_jacobi(it)
        if strategy == "ring-pipeline":
            return _emit_sor(it)
        raise CodegenError(f"strategy {strategy!r} not applicable to {it.kind}")
    mm = match_matmul(program)
    if mm is not None:
        if strategy not in (None, "cannon"):
            raise CodegenError(f"strategy {strategy!r} not applicable to matmul")
        return _emit_cannon(mm)
    from repro.codegen.stencil import emit_stencil, match_stencil_sweep

    stencil = match_stencil_sweep(program)
    if stencil is not None:
        if strategy == "stencil-overlap":
            from repro.codegen.overlap import emit_stencil_overlap

            return emit_stencil_overlap(stencil)
        if strategy not in (None, "stencil"):
            raise CodegenError(f"strategy {strategy!r} not applicable to stencil sweeps")
        return emit_stencil(stencil)
    from repro.codegen.stencil2d import emit_stencil_2d, match_stencil_2d

    stencil2d = match_stencil_2d(program)
    if stencil2d is not None:
        if strategy not in (None, "stencil-2d"):
            raise CodegenError(f"strategy {strategy!r} not applicable to 2-D stencils")
        return emit_stencil_2d(stencil2d)
    ga = match_gauss(program)
    if ga is not None:
        # Justify the pipeline with the §6 dependence analysis: every token
        # of the triangularization nest must be local or one-step.
        tri = program.loops()[0]
        choice = choose_mapping(tri)
        if strategy is None:
            strategy = "cyclic-pipeline" if choice.broadcasts == 0 else "cyclic-multicast"
        if strategy == "cyclic-pipeline" and choice.broadcasts > 0:
            raise CodegenError(
                "cyclic-pipeline requested but some tokens need multicast "
                f"({choice.broadcasts} broadcast tokens)"
            )
        return _emit_gauss(ga, strategy)
    raise CodegenError(
        f"program {program.name!r} does not match any generatable pattern"
    )


def load_generated(gen: GeneratedProgram):
    """Compile generated source; returns the SPMD entry callable."""
    namespace = runtime_namespace()
    code = compile(gen.source, f"<generated:{gen.entry}>", "exec")
    exec(code, namespace)
    return namespace[gen.entry]


# ---------------------------------------------------------------------------
# emitters
# ---------------------------------------------------------------------------


def _emit_jacobi(pat: IterativeSolvePattern) -> GeneratedProgram:
    A, B, X, V = pat.A, pat.B, pat.X, pat.V
    w = CodeWriter()
    w.lines(
        f"# generated: Jacobi solver '{A} x = {B}' under the paper's S4 DP scheme",
        f"# layout: row blocks of {A} plus matching elements of {V}/{B}/{X}",
        "# on a linear processor array (paper Table 3); X is re-replicated",
        "# each iteration by ManyToManyMulticast (the loop-carried cost m*tc).",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"A = np.asarray(env['{A}'], dtype=np.float64)",
            f"b = np.asarray(env['{B}'], dtype=np.float64)",
            "x = np.array(env['X0'], dtype=np.float64)",
            "iterations = env['iterations']",
            "m = len(b)",
            "n = p.nprocs",
            "size = -(-m // n)",
            "lo = min(p.rank * size, m)",
            "hi = min(lo + size, m)",
            "A_loc = np.ascontiguousarray(A[lo:hi, :])",
            "b_loc = b[lo:hi].copy()",
            "diag_loc = np.diag(A)[lo:hi].copy()",
            "group = tuple(range(n))",
            "rows = hi - lo",
        )
        with w.block("for _ in range(iterations):"):
            w.lines(
                "v_loc = A_loc @ x",
                "p.compute(2 * rows * m, label='gemv')",
                "x_loc = x[lo:hi] + (b_loc - v_loc) / diag_loc",
                "p.compute(3 * rows, label='update')",
                "blocks = yield from allgather(p, x_loc, group)",
                "x = np.concatenate([np.atleast_1d(blk) for blk in blocks])",
            )
        w.line("return x")
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy="data-parallel", pattern=pat
    )


def _emit_sor(pat: IterativeSolvePattern) -> GeneratedProgram:
    A, B, X, V = pat.A, pat.B, pat.X, pat.V
    omega_load = (
        f"omega = float(env['{pat.omega}'])" if pat.omega else "omega = 1.0"
    )
    w = CodeWriter()
    w.lines(
        f"# generated: pipelined SOR sweep of '{A} x = {B}' (paper Fig 6)",
        f"# layout: column blocks of {A} plus matching elements of {B}/{X}",
        f"# (paper Table 4); partial sums of {V} circulate the ring.",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"A = np.asarray(env['{A}'], dtype=np.float64)",
            f"b = np.asarray(env['{B}'], dtype=np.float64)",
            "x0 = np.array(env['X0'], dtype=np.float64)",
            "iterations = env['iterations']",
            omega_load,
            "m = len(b)",
            "n = p.nprocs",
            "assert m % n == 0, 'pipelined SOR needs N | m'",
            "block = m // n",
            "me = p.rank",
            "before = me * block",
            "right = (me + 1) % n",
            "left = (me - 1) % n",
            "A_loc = np.ascontiguousarray(A[:, before:before + block])",
            "b_loc = b[before:before + block].copy()",
            "diag_loc = np.diag(A)[before:before + block].copy()",
            "x_loc = x0[before:before + block].copy()",
        )
        with w.block("for _ in range(iterations):"):
            with w.block("if n == 1:"):
                with w.block("for ii in range(block):"):
                    w.lines(
                        "v = float(A_loc[ii, :] @ x_loc)",
                        "p.compute(2 * block + 4, label=f'row {ii + 1}')",
                        "x_loc[ii] += omega * (b_loc[ii] - v) / diag_loc[ii]",
                    )
                w.line("continue")
            w.line("# Fig 6 lines 7-15: rows of earlier processors (old X here)")
            with w.block("for i in range(before):"):
                w.lines(
                    "temp = float(A_loc[i, :] @ x_loc)",
                    "p.compute(2 * block, label=f'row {i + 1} partial')",
                    "v = yield from p.recv(left, tag=60)",
                    "p.send(right, v + temp, tag=60)",
                )
            w.line("# Fig 6 lines 16-23: start my rows with columns j >= i")
            with w.block("for ii in range(block):"):
                w.lines(
                    "v_start = float(A_loc[before + ii, ii:] @ x_loc[ii:])",
                    "p.compute(2 * (block - ii), label=f'row {before + ii + 1} start')",
                    "p.send(right, v_start, tag=60)",
                )
            w.line("# Fig 6 lines 24-34: my rows return; add updated prefixes")
            with w.block("for ii in range(block):"):
                w.lines(
                    "temp = float(A_loc[before + ii, :ii] @ x_loc[:ii])",
                    "p.compute(2 * ii, label=f'row {before + ii + 1} finish')",
                    "v = yield from p.recv(left, tag=60)",
                    "x_loc[ii] += omega * (b_loc[ii] - (v + temp)) / diag_loc[ii]",
                    "p.compute(4, label=f'X({before + ii + 1})')",
                )
            w.line("# Fig 6 lines 35-43: rows of later processors (new X here)")
            with w.block("for i in range(before + block, m):"):
                w.lines(
                    "temp = float(A_loc[i, :] @ x_loc)",
                    "p.compute(2 * block, label=f'row {i + 1} partial')",
                    "v = yield from p.recv(left, tag=60)",
                    "p.send(right, v + temp, tag=60)",
                )
        w.lines(
            "group = tuple(range(n))",
            "blocks = yield from allgather(p, x_loc, group)",
            "return np.concatenate([np.atleast_1d(blk) for blk in blocks])",
        )
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy="ring-pipeline", pattern=pat
    )


def _emit_cannon(pat: MatmulPattern) -> GeneratedProgram:
    """Cannon's algorithm on the rotated distributions of §2.1/Fig 1.

    The initial skew is expressed purely as the data layout
    (``B`` block (p1, p1+p2), ``C`` block (p1+p2, p2)), so the generated
    program performs only the q multiply-shift rounds.  Rank 0 gathers and
    assembles the result.
    """
    B, C, A = pat.left, pat.right, pat.out
    w = CodeWriter()
    w.lines(
        f"# generated: Cannon's algorithm for '{A} = {B} x {C}' on a q x q torus",
        f"# layout: rotated distributions (paper Fig 1 b/c) — {B} block",
        f"# (p1, (p1+p2) mod q), {C} block ((p1+p2) mod q, p2); no skew phase.",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"B = np.asarray(env['{B}'], dtype=np.float64)",
            f"C = np.asarray(env['{C}'], dtype=np.float64)",
            "n = B.shape[0]",
            "q = int(round(p.nprocs ** 0.5))",
            "assert q * q == p.nprocs, 'Cannon needs a square processor grid'",
            "assert n % q == 0, 'Cannon needs q | n'",
            "nb = n // q",
            "p1, p2 = divmod(p.rank, q)",
            "r = (p1 + p2) % q",
            "B_loc = np.ascontiguousarray(B[p1 * nb:(p1 + 1) * nb, r * nb:(r + 1) * nb])",
            "C_loc = np.ascontiguousarray(C[r * nb:(r + 1) * nb, p2 * nb:(p2 + 1) * nb])",
            "A_loc = np.zeros((nb, nb))",
            "row_group = tuple(p1 * q + c for c in range(q))",
            "col_group = tuple(rr * q + p2 for rr in range(q))",
        )
        with w.block("for step in range(q):"):
            w.lines(
                "A_loc += B_loc @ C_loc",
                "p.compute(2 * nb * nb * nb, label=f'block gemm step {step + 1}')",
            )
            with w.block("if q > 1 and step < q - 1:"):
                w.lines(
                    "B_loc = yield from shift(p, B_loc, row_group, delta=-1, tag=80)",
                    "C_loc = yield from shift(p, C_loc, col_group, delta=-1, tag=81)",
                )
        w.line("blocks = yield from gather(p, A_loc, root=0, group=tuple(range(p.nprocs)))")
        with w.block("if p.rank != 0:"):
            w.line("return None")
        w.lines(
            "rows = [np.hstack(blocks[r0 * q:(r0 + 1) * q]) for r0 in range(q)]",
            "return np.vstack(rows)",
        )
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy="cannon", pattern=pat
    )


def _emit_gauss(pat: GaussPattern, strategy: str) -> GeneratedProgram:
    A, B = pat.A, pat.B
    pipelined = strategy == "cyclic-pipeline"
    w = CodeWriter()
    w.lines(
        f"# generated: Gauss elimination of '{A} x = {B}' (paper Fig 8)"
        if pipelined
        else f"# generated: Gauss elimination of '{A} x = {B}' (naive multicast)",
        f"# layout: cyclic rows f(i) = (i-1) mod N of {A}/{pat.L}, cyclic",
        f"# elements of {B}/{pat.V}/{pat.X} (paper S6).",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"A = np.asarray(env['{A}'], dtype=np.float64)",
            f"b = np.asarray(env['{B}'], dtype=np.float64)",
            "m = len(b)",
            "n = p.nprocs",
            "mine = np.arange(p.rank, m, n)",
            "A_loc = np.ascontiguousarray(A[mine, :]).astype(np.float64)",
            "b_loc = b[mine].astype(np.float64).copy()",
            "right = (p.rank + 1) % n",
            "left = (p.rank - 1) % n",
            "group = tuple(range(n))",
        )
        w.line("# --- triangularization (paper lines 2-8) ---")
        with w.block("for k in range(m):"):
            w.line("owner = k % n")
            if pipelined:
                with w.block("if n == 1:"):
                    w.lines(
                        "pivot_row = A_loc[k // n, k:].copy()",
                        "pivot_b = float(b_loc[k // n])",
                    )
                with w.block("elif p.rank == owner:"):
                    w.lines(
                        "pivot_row = A_loc[k // n, k:].copy()",
                        "pivot_b = float(b_loc[k // n])",
                        "p.send(right, (pivot_row, pivot_b), tag=70)",
                    )
                with w.block("else:"):
                    w.line("pivot_row, pivot_b = yield from p.recv(left, tag=70)")
                    with w.block("if right != owner:"):
                        w.line("p.send(right, (pivot_row, pivot_b), tag=70)")
            else:
                with w.block("if p.rank == owner:"):
                    w.lines(
                        "packet = (A_loc[k // n, k:].copy(), float(b_loc[k // n]))",
                        "packet = yield from bcast(p, packet, root=owner, group=group)",
                    )
                with w.block("else:"):
                    w.line("packet = yield from bcast(p, None, root=owner, group=group)")
                w.line("pivot_row, pivot_b = packet")
            w.lines(
                "pivot = pivot_row[0]",
                "below = mine > k",
            )
            with w.block("if below.any():"):
                w.lines(
                    "rows = np.nonzero(below)[0]",
                    "ell = A_loc[rows, k] / pivot",
                    "b_loc[rows] -= ell * pivot_b",
                    "A_loc[np.ix_(rows, range(k, m))] -= np.outer(ell, pivot_row)",
                    "p.compute(len(rows) * (2 * (m - k) + 3), label=f'elim k={k + 1}')",
                )
        w.line("# --- back substitution (paper lines 9-17) ---")
        w.lines("x = np.zeros(m)", "v_loc = np.zeros(len(mine))")
        with w.block("for j in range(m - 1, -1, -1):"):
            w.line("owner = j % n")
            if pipelined:
                with w.block("if n == 1:"):
                    w.lines(
                        "xj = float((b_loc[j // n] - v_loc[j // n]) / A_loc[j // n, j])",
                        "p.compute(2, label=f'X({j + 1})')",
                    )
                with w.block("elif p.rank == owner:"):
                    w.lines(
                        "xj = float((b_loc[j // n] - v_loc[j // n]) / A_loc[j // n, j])",
                        "p.compute(2, label=f'X({j + 1})')",
                        "p.send(left, xj, tag=71)",
                    )
                with w.block("else:"):
                    w.line("xj = yield from p.recv(right, tag=71)")
                    with w.block("if left != owner:"):
                        w.line("p.send(left, xj, tag=71)")
            else:
                with w.block("if p.rank == owner:"):
                    w.lines(
                        "xj = float((b_loc[j // n] - v_loc[j // n]) / A_loc[j // n, j])",
                        "p.compute(2, label=f'X({j + 1})')",
                        "xj = yield from bcast(p, xj, root=owner, group=group)",
                    )
                with w.block("else:"):
                    w.line("xj = yield from bcast(p, None, root=owner, group=group)")
            w.lines("x[j] = xj", "above = mine < j")
            with w.block("if above.any():"):
                w.lines(
                    "rows = np.nonzero(above)[0]",
                    "v_loc[rows] += A_loc[rows, j] * xj",
                    "p.compute(2 * len(rows), label=f'V update j={j + 1}')",
                )
        w.line("return x")
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy=strategy, pattern=pat
    )
