"""A small indented-source emitter used by the SPMD code generator."""

from __future__ import annotations


class CodeWriter:
    """Accumulates Python source with indentation management."""

    def __init__(self, indent_unit: str = "    ") -> None:
        self._lines: list[str] = []
        self._depth = 0
        self._unit = indent_unit

    def line(self, text: str = "") -> "CodeWriter":
        if text:
            self._lines.append(self._unit * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, *texts: str) -> "CodeWriter":
        for t in texts:
            self.line(t)
        return self

    def blank(self) -> "CodeWriter":
        return self.line("")

    class _Block:
        def __init__(self, writer: "CodeWriter") -> None:
            self.writer = writer

        def __enter__(self) -> "CodeWriter":
            self.writer._depth += 1
            return self.writer

        def __exit__(self, *exc) -> None:
            self.writer._depth -= 1

    def block(self, header: str) -> "_Block":
        """``with w.block("for i in range(n):"):`` — emits header, indents."""
        self.line(header)
        return CodeWriter._Block(self)

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"
