"""SPMD code generation (paper Figs 6 and 8).

The generator recognizes the paper's program classes structurally in the
IR (:mod:`~repro.codegen.patterns`), picks a strategy (data-parallel
blocks, ring pipeline, cyclic pipeline) justified by the alignment and
dependence analyses, and emits a runnable Python SPMD program targeting
the :mod:`repro.machine` runtime (:mod:`~repro.codegen.spmd`).
"""

from repro.codegen.patterns import (
    GaussPattern,
    IterativeSolvePattern,
    MatmulPattern,
    match_gauss,
    match_iterative_solve,
    match_matmul,
)
from repro.codegen.redist import RedistMove, emit_redistribution_program
from repro.codegen.sparse import SparsePattern, emit_sparse_spmv
from repro.codegen.spmd import GeneratedProgram, generate_spmd, load_generated

__all__ = [
    "IterativeSolvePattern",
    "GaussPattern",
    "MatmulPattern",
    "match_iterative_solve",
    "match_gauss",
    "match_matmul",
    "GeneratedProgram",
    "generate_spmd",
    "load_generated",
    "RedistMove",
    "emit_redistribution_program",
    "SparsePattern",
    "emit_sparse_spmv",
]
