"""Emit the inspector/executor SPMD listing for a sparse operator.

The dense emitters recognize affine loop nests; a sparse sweep's
communication cannot be derived from the loop bounds, so the generated
program carries the inspector/executor structure explicitly: an
``# -- inspector --`` preamble that derives the rank's schedule once
(or accepts a precomputed one from the environment — the plan-cache
path), and an ``# -- executor --`` loop that replays it every iteration
with zero re-analysis.  The listing is plain Python over the documented
runtime surface (:mod:`repro.codegen.runtime_api`, extended here with
the sparse runtime names) and is proven equivalent to the library
kernel by the codegen parity test: same values bit for bit, same
message words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.emitter import CodeWriter
from repro.codegen.spmd import GeneratedProgram
from repro.errors import CodegenError


@dataclass(frozen=True)
class SparsePattern:
    """Recognized sparse sweep: ``y = A @ x`` iterated *k* times."""

    matrix: str
    operand: str
    result: str
    iterations: int


def emit_sparse_spmv(
    nprocs: int,
    matrix: str = "A",
    operand: str = "x",
    result: str = "y",
    iterations: int = 1,
) -> GeneratedProgram:
    """Generate the inspector/executor SPMD program for iterated SpMV.

    The entry takes ``(p, env)`` with ``env[matrix]`` a
    :class:`~repro.sparse.csr.CSRMatrix` and ``env[operand]`` the global
    operand vector; ``env["schedule"]`` (optional) short-circuits the
    inspector with a precomputed :class:`CommSchedule` — exactly what a
    warm plan cache supplies.  Returns the assembled global result.
    """
    if nprocs < 1:
        raise CodegenError(f"nprocs must be >= 1, got {nprocs}")
    if iterations < 1:
        raise CodegenError(f"iterations must be >= 1, got {iterations}")
    pat = SparsePattern(matrix, operand, result, iterations)
    entry = "spmd_sparse_spmv"
    w = CodeWriter()
    with w.block(f"def {entry}(p, env):"):
        w.line(f'"""Inspector/executor SpMV: {result} = {matrix} @ '
               f'{operand}, {iterations} sweep(s) on {nprocs} ranks."""')
        w.line(f"csr = env[{matrix!r}]")
        w.line(f"x = np.asarray(env[{operand!r}], dtype=np.float64)")
        w.blank()
        w.line("# -- inspector: one pass over the indirection structure --")
        w.line("# A warm plan cache supplies env['schedule'] and the")
        w.line("# pattern walk is skipped entirely (docs/SPARSE.md).")
        w.line(f"placement = SparsePlacement(csr.pattern, {nprocs})")
        w.line("schedule = env.get('schedule')")
        with w.block("if schedule is None:"):
            w.line("local = yield from inspector_exchange(p, placement)")
        with w.block("else:"):
            w.line("local = schedule.rank_schedule(p.rank)")
        w.line("xloc = x[local.col_lo:local.col_hi]")
        w.line("lo, hi = csr.pattern.indptr[local.row_lo], "
               "csr.pattern.indptr[local.row_hi]")
        w.line("dloc = csr.data[lo:hi]")
        w.blank()
        w.line("# -- executor: replayed, zero re-analysis --")
        w.line("yloc = np.zeros(local.row_hi - local.row_lo)")
        with w.block(f"for _ in range({iterations}):"):
            w.line("ghosts = yield from gather_ghosts(p, local, xloc)")
            w.line("yloc = spmv_local(local, dloc, xloc, ghosts)")
            w.line("p.compute(2 * len(dloc), label='spmv')")
        w.blank()
        w.line(f"blocks = yield from allgather(p, yloc, "
               f"tuple(range({nprocs})), tag=930)")
        w.line("return np.concatenate([np.atleast_1d(b) for b in blocks])")
    return GeneratedProgram(
        source=w.source(),
        entry=entry,
        strategy="sparse-inspector-executor",
        pattern=pat,
    )
