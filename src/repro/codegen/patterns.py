"""Structural pattern recognizers over the IR.

The code generator does not key on program names: it inspects loop
structure, bounds and subscripts to recognize the paper's two program
classes, extracting the actual array/parameter names:

* :func:`match_iterative_solve` — an iterative loop whose body performs a
  (possibly relaxed) matvec-and-update sweep: covers both Jacobi (two
  separate inner loops) and SOR (one fused loop, Gauss-Seidel order);
* :func:`match_gauss` — triangularization followed by a backward
  triangular solve.

A recognizer returns ``None`` when the program does not have the required
shape; everything it *does* return has been verified subscript by
subscript, so the generator can trust it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    Stmt,
)

# ---------------------------------------------------------------------------
# small matching helpers
# ---------------------------------------------------------------------------


def _is_var(aff: Affine, var: str) -> bool:
    return aff == Affine.var(var)


def _is_var_plus(aff: Affine, var: str, const: int) -> bool:
    return aff == Affine.var(var) + const


def _is_ref(expr: Expr, name: str, *subs_vars: str) -> bool:
    """``expr`` is ``name(v1, v2, ...)`` with exactly these variables."""
    if not isinstance(expr, ArrayRef) or expr.name != name:
        return False
    if len(expr.subscripts) != len(subs_vars):
        return False
    return all(_is_var(s, v) for s, v in zip(expr.subscripts, subs_vars))


def _ref_1d(expr: Expr, var: str) -> str | None:
    """Name of a 1-D array reference subscripted exactly by *var*."""
    if isinstance(expr, ArrayRef) and expr.rank == 1 and _is_var(expr.subscripts[0], var):
        return expr.name
    return None


def _is_zero_assign(stmt: Stmt, var: str) -> str | None:
    """``V(var) = 0.0`` — returns the array name."""
    if not isinstance(stmt, Assign) or not isinstance(stmt.lhs, ArrayRef):
        return None
    if not isinstance(stmt.rhs, Num) or stmt.rhs.value != 0.0:
        return None
    return _ref_1d(stmt.lhs, var)


def _match_accumulate(stmt: Stmt, i: str, j: str) -> tuple[str, str, str] | None:
    """``V(i) = V(i) + A(i, j) * X(j)`` — returns (V, A, X)."""
    if not isinstance(stmt, Assign) or not isinstance(stmt.lhs, ArrayRef):
        return None
    v = _ref_1d(stmt.lhs, i)
    rhs = stmt.rhs
    if v is None or not (isinstance(rhs, BinOp) and rhs.op == "+"):
        return None
    if _ref_1d(rhs.left, i) != v:
        return None
    prod = rhs.right
    if not (isinstance(prod, BinOp) and prod.op == "*"):
        return None
    if not (isinstance(prod.left, ArrayRef) and _is_ref(prod.left, prod.left.name, i, j)):
        return None
    x = _ref_1d(prod.right, j)
    if x is None:
        return None
    return (v, prod.left.name, x)


def _match_update(
    stmt: Stmt, i: str
) -> tuple[str, str, str, str, str | None] | None:
    """Jacobi/SOR update statement.

    ``X(i) = X(i) + (B(i) - V(i)) / A(i, i)``            (Jacobi) or
    ``X(i) = X(i) + omega * (B(i) - V(i)) / A(i, i)``    (SOR)

    Returns (X, B, V, A, omega_name_or_None).
    """
    if not isinstance(stmt, Assign) or not isinstance(stmt.lhs, ArrayRef):
        return None
    x = _ref_1d(stmt.lhs, i)
    rhs = stmt.rhs
    if x is None or not (isinstance(rhs, BinOp) and rhs.op == "+"):
        return None
    if _ref_1d(rhs.left, i) != x:
        return None
    frac = rhs.right
    if not (isinstance(frac, BinOp) and frac.op == "/"):
        return None
    denom = frac.right
    if not (isinstance(denom, ArrayRef) and _is_ref(denom, denom.name, i, i)):
        return None
    a = denom.name
    num = frac.left
    omega: str | None = None
    if isinstance(num, BinOp) and num.op == "*" and isinstance(num.left, ScalarRef):
        omega = num.left.name
        num = num.right
    if not (isinstance(num, BinOp) and num.op == "-"):
        return None
    b = _ref_1d(num.left, i)
    v = _ref_1d(num.right, i)
    if b is None or v is None:
        return None
    return (x, b, v, a, omega)


def _loop_over(stmt: Stmt, lb: Affine, ub: Affine, step: int = 1) -> DoLoop | None:
    if isinstance(stmt, DoLoop) and stmt.lb == lb and stmt.ub == ub and stmt.step == step:
        return stmt
    return None


# ---------------------------------------------------------------------------
# iterative solve (Jacobi / SOR)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IterativeSolvePattern:
    """A recognized Jacobi- or SOR-shaped program."""

    kind: str  # "jacobi" or "sor"
    m: str  # size parameter name
    iterations: str  # iteration-count parameter name
    A: str
    V: str
    B: str
    X: str
    omega: str | None  # relaxation scalar (SOR only)


def match_iterative_solve(program: Program) -> IterativeSolvePattern | None:
    """Recognize the §3 (Jacobi) or §5 (SOR) program shape."""
    loops = program.loops()
    if len(loops) != 1 or len(program.body) != 1:
        return None
    outer = loops[0]
    if outer.lb != Affine.constant(1) or outer.step != 1:
        return None
    iter_param = _single_param(outer.ub)
    if iter_param is None:
        return None

    one = Affine.constant(1)

    # --- SOR shape: one fused i-loop --------------------------------------
    if len(outer.body) == 1 and isinstance(outer.body[0], DoLoop):
        iloop = outer.body[0]
        m_param = _single_param(iloop.ub)
        if m_param is not None and iloop.lb == one and len(iloop.body) == 3:
            i = iloop.var
            v_name = _is_zero_assign(iloop.body[0], i)
            jloop = iloop.body[1]
            if v_name is not None and isinstance(jloop, DoLoop) and jloop.lb == one:
                j = jloop.var
                if _single_param(jloop.ub) == m_param and len(jloop.body) == 1:
                    acc = _match_accumulate(jloop.body[0], i, j)
                    upd = _match_update(iloop.body[2], i)
                    if acc and upd and acc[0] == v_name == upd[2] and acc[1] == upd[3]:
                        return IterativeSolvePattern(
                            kind="sor",
                            m=m_param,
                            iterations=iter_param,
                            A=acc[1],
                            V=v_name,
                            B=upd[1],
                            X=upd[0],
                            omega=upd[4],
                        )

    # --- Jacobi shape: two separate i-loops --------------------------------
    inner = [s for s in outer.body if isinstance(s, DoLoop)]
    if len(inner) == 2 and len(outer.body) == 2:
        l1, l2 = inner
        m_param = _single_param(l1.ub)
        if (
            m_param is not None
            and l1.lb == one
            and l2.lb == one
            and _single_param(l2.ub) == m_param
            and len(l1.body) == 2
            and len(l2.body) == 1
        ):
            i1 = l1.var
            v_name = _is_zero_assign(l1.body[0], i1)
            jloop = l1.body[1]
            if v_name is not None and isinstance(jloop, DoLoop) and jloop.lb == one:
                j = jloop.var
                if _single_param(jloop.ub) == m_param and len(jloop.body) == 1:
                    acc = _match_accumulate(jloop.body[0], i1, j)
                    upd = _match_update(l2.body[0], l2.var)
                    if acc and upd and acc[0] == v_name == upd[2] and acc[1] == upd[3]:
                        return IterativeSolvePattern(
                            kind="jacobi",
                            m=m_param,
                            iterations=iter_param,
                            A=acc[1],
                            V=v_name,
                            B=upd[1],
                            X=upd[0],
                            omega=upd[4],
                        )
    return None


def _single_param(aff: Affine) -> str | None:
    """The variable of an affine form that is exactly one bare parameter."""
    if aff.const != 0 or len(aff.coeffs) != 1:
        return None
    (var, coeff), = aff.coeffs.items()
    return var if coeff == 1 else None


# ---------------------------------------------------------------------------
# matrix multiplication (paper §2's three-nested-loop example)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatmulPattern:
    """A recognized ``A = B x C`` triple loop."""

    n: str  # size parameter
    out: str  # result array (A)
    left: str  # B
    right: str  # C


def match_matmul(program: Program) -> MatmulPattern | None:
    """Recognize ``DO i / DO j { A(i,j)=0; DO k { A += B(i,k)*C(k,j) } }``."""
    loops = program.loops()
    if len(loops) != 1 or len(program.body) != 1:
        return None
    iloop = loops[0]
    one = Affine.constant(1)
    n_param = _single_param(iloop.ub)
    if n_param is None or iloop.lb != one or len(iloop.body) != 1:
        return None
    jloop = iloop.body[0]
    if not (
        isinstance(jloop, DoLoop)
        and jloop.lb == one
        and _single_param(jloop.ub) == n_param
        and len(jloop.body) == 2
    ):
        return None
    i, j = iloop.var, jloop.var
    init, kloop = jloop.body
    if not (isinstance(init, Assign) and isinstance(init.lhs, ArrayRef)):
        return None
    if not (isinstance(init.rhs, Num) and init.rhs.value == 0.0):
        return None
    out = init.lhs.name
    if not _is_ref(init.lhs, out, i, j):
        return None
    if not (
        isinstance(kloop, DoLoop)
        and kloop.lb == one
        and _single_param(kloop.ub) == n_param
        and len(kloop.body) == 1
    ):
        return None
    k = kloop.var
    acc = kloop.body[0]
    if not (isinstance(acc, Assign) and _is_ref(acc.lhs, out, i, j)):
        return None
    rhs = acc.rhs
    if not (isinstance(rhs, BinOp) and rhs.op == "+" and _is_ref(rhs.left, out, i, j)):
        return None
    prod = rhs.right
    if not (isinstance(prod, BinOp) and prod.op == "*"):
        return None
    if not (isinstance(prod.left, ArrayRef) and isinstance(prod.right, ArrayRef)):
        return None
    left, right = prod.left.name, prod.right.name
    if left == out or right == out:
        return None
    if not (_is_ref(prod.left, left, i, k) and _is_ref(prod.right, right, k, j)):
        return None
    return MatmulPattern(n=n_param, out=out, left=left, right=right)


# ---------------------------------------------------------------------------
# Gauss elimination
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GaussPattern:
    """A recognized §6 Gauss-elimination program."""

    m: str
    A: str
    L: str
    B: str
    V: str
    X: str


def match_gauss(program: Program) -> GaussPattern | None:
    """Recognize triangularization + backward triangular solve."""
    loops = program.loops()
    if len(loops) != 3:
        return None
    tri, vinit, back = loops
    one = Affine.constant(1)

    # --- triangularization --------------------------------------------------
    m_param = _single_param(tri.ub)
    if m_param is None or tri.lb != one or tri.step != 1 or len(tri.body) != 1:
        return None
    k = tri.var
    m_aff = Affine.var(m_param)
    iloop = _loop_over(tri.body[0], Affine.var(k) + 1, m_aff)
    if iloop is None or len(iloop.body) != 3:
        return None
    i = iloop.var

    # L(i,k) = A(i,k) / A(k,k)
    s1 = iloop.body[0]
    if not (isinstance(s1, Assign) and isinstance(s1.lhs, ArrayRef)):
        return None
    if not (isinstance(s1.rhs, BinOp) and s1.rhs.op == "/"):
        return None
    l_name = s1.lhs.name
    if not _is_ref(s1.lhs, l_name, i, k):
        return None
    if not (isinstance(s1.rhs.left, ArrayRef) and isinstance(s1.rhs.right, ArrayRef)):
        return None
    a_name = s1.rhs.left.name
    if not (_is_ref(s1.rhs.left, a_name, i, k) and _is_ref(s1.rhs.right, a_name, k, k)):
        return None

    # B(i) = B(i) - L(i,k) * B(k)
    s2 = iloop.body[1]
    if not (isinstance(s2, Assign) and isinstance(s2.lhs, ArrayRef)):
        return None
    b_name = _ref_1d(s2.lhs, i)
    if b_name is None:
        return None
    r2 = s2.rhs
    if not (
        isinstance(r2, BinOp)
        and r2.op == "-"
        and _ref_1d(r2.left, i) == b_name
        and isinstance(r2.right, BinOp)
        and r2.right.op == "*"
        and _is_ref(r2.right.left, l_name, i, k)
        and _ref_1d(r2.right.right, k) == b_name
    ):
        return None

    # DO j = k+1, m:  A(i,j) = A(i,j) - L(i,k) * A(k,j)
    jloop = _loop_over(iloop.body[2], Affine.var(k) + 1, m_aff)
    if jloop is None or len(jloop.body) != 1:
        return None
    j = jloop.var
    s3 = jloop.body[0]
    if not (
        isinstance(s3, Assign)
        and _is_ref(s3.lhs, a_name, i, j)
        and isinstance(s3.rhs, BinOp)
        and s3.rhs.op == "-"
        and _is_ref(s3.rhs.left, a_name, i, j)
        and isinstance(s3.rhs.right, BinOp)
        and s3.rhs.right.op == "*"
        and _is_ref(s3.rhs.right.left, l_name, i, k)
        and _is_ref(s3.rhs.right.right, a_name, k, j)
    ):
        return None

    # --- V initialization ----------------------------------------------------
    if vinit.step != -1 or len(vinit.body) != 1:
        return None
    v_name = _is_zero_assign(vinit.body[0], vinit.var)
    if v_name is None:
        return None

    # --- back substitution -----------------------------------------------------
    if back.step != -1 or back.lb != m_aff or back.ub != one or len(back.body) != 2:
        return None
    jb = back.var
    s4 = back.body[0]
    if not (isinstance(s4, Assign) and isinstance(s4.lhs, ArrayRef)):
        return None
    x_name = _ref_1d(s4.lhs, jb)
    r4 = s4.rhs
    if not (
        x_name is not None
        and isinstance(r4, BinOp)
        and r4.op == "/"
        and isinstance(r4.left, BinOp)
        and r4.left.op == "-"
        and _ref_1d(r4.left.left, jb) == b_name
        and _ref_1d(r4.left.right, jb) == v_name
        and _is_ref(r4.right, a_name, jb, jb)
    ):
        return None
    ib_loop = back.body[1]
    if not (
        isinstance(ib_loop, DoLoop)
        and ib_loop.step == -1
        and ib_loop.lb == Affine.var(jb) - 1
        and ib_loop.ub == one
        and len(ib_loop.body) == 1
    ):
        return None
    ib = ib_loop.var
    acc = _match_accumulate(ib_loop.body[0], ib, jb)
    if not (acc and acc[0] == v_name and acc[1] == a_name and acc[2] == x_name):
        return None

    return GaussPattern(m=m_param, A=a_name, L=l_name, B=b_name, V=v_name, X=x_name)
