"""Emit SPMD source for layout changes between loop phases.

The DP (Algorithm 1) picks a chain of distribution schemes; between two
adjacent segments every affected array must physically move.  This module
turns one such boundary — a list of :class:`RedistMove`s — into a
runnable generated program, the same way :mod:`repro.codegen.spmd` emits
compute kernels: plain Python source over the documented runtime surface
(:mod:`repro.codegen.runtime_api`), compiled with
:func:`repro.codegen.spmd.load_generated`.

The generated entry takes ``(p, data)`` where *data* maps array names to
their **global** contents (identical on every rank — the engine front end
passes the same args everywhere); each rank packs its own source section,
performs the collective redistribution, and returns its destination
sections, so executing the program proves element-level correctness of
the plan while the engine's metrics measure its real traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.emitter import CodeWriter
from repro.codegen.spmd import GeneratedProgram
from repro.distribution.schemes import ArrayPlacement
from repro.errors import CodegenError


@dataclass(frozen=True)
class RedistMove:
    """One array's placement change at a segment boundary."""

    array: str
    src: ArrayPlacement
    dst: ArrayPlacement
    extents: tuple[int, ...]

    def scope(self) -> str:
        """Metrics scope labelling this move's traffic (see
        :meth:`repro.machine.metrics.Metrics.scope_totals`)."""
        return f"redist:{self.array}"


def placement_literal(p: ArrayPlacement) -> str:
    """Python source reconstructing *p* in the runtime namespace."""
    dim_map = ", ".join(str(g) for g in p.dim_map)
    if len(p.dim_map) == 1:
        dim_map += ","
    kinds = ", ".join(f"Kind.{k.name}" for k in p.kinds)
    if len(p.kinds) == 1:
        kinds += ","
    return (
        f"ArrayPlacement({p.array!r}, ({dim_map}), "
        f"kinds=({kinds}), rest={p.rest!r})"
    )


def emit_redistribution_program(
    moves: list[RedistMove] | tuple[RedistMove, ...],
    grid: tuple[int, int],
    name: str = "boundary",
    tag_base: int = 7000,
) -> GeneratedProgram:
    """Generate the SPMD program executing *moves* on an ``N1 x N2`` grid.

    Moves run in order, each under its own metrics scope and tag range,
    so measured traffic can be reconciled per array.
    """
    if not moves:
        raise CodegenError("a redistribution program needs at least one move")
    seen: set[str] = set()
    for mv in moves:
        if mv.array in seen:
            raise CodegenError(f"duplicate move for array {mv.array!r}")
        seen.add(mv.array)
        if mv.src.array != mv.array or mv.dst.array != mv.array:
            raise CodegenError(
                f"move {mv.array!r} carries placements for "
                f"{mv.src.array!r}/{mv.dst.array!r}"
            )

    n1, n2 = grid
    entry = "spmd_redistribute"
    w = CodeWriter()
    with w.block(f"def {entry}(p, data):"):
        w.line(f'"""Layout change {name!r} on the {n1}x{n2} grid."""')
        w.line(f"grid = ({n1}, {n2})")
        w.line("out = {}")
        for i, mv in enumerate(moves):
            w.blank()
            w.line(f"# {mv.array}: {mv.src.dim_map}/{mv.src.rest}"
                   f" -> {mv.dst.dim_map}/{mv.dst.rest}")
            w.line(f"src = {placement_literal(mv.src)}")
            w.line(f"dst = {placement_literal(mv.dst)}")
            w.line(f"extents = {tuple(mv.extents)!r}")
            w.line(f"local = pack_section(data[{mv.array!r}], src, extents, grid, p.rank)")
            w.line(
                f"out[{mv.array!r}] = (yield from redistribute("
                f"p, local, src, dst, extents, grid, "
                f"tag_base={tag_base + 100 * i}, label={mv.scope()!r}))"
            )
        w.blank()
        w.line("return out")
    return GeneratedProgram(
        source=w.source(),
        entry=entry,
        strategy="redistribution",
        pattern=tuple(moves),
    )
