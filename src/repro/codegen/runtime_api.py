"""Runtime surface available to generated SPMD code.

Generated programs are ``exec``'d with exactly this namespace — NumPy and
the paper's communication primitives — so the emitted source documents
its dependencies honestly and cannot accidentally capture library
internals.
"""

from __future__ import annotations

import numpy as np

from repro.machine.collectives import (
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
    shift,
)

RUNTIME_NAMESPACE = {
    "np": np,
    "allgather": allgather,
    "allreduce": allreduce,
    "barrier": barrier,
    "bcast": bcast,
    "gather": gather,
    "reduce": reduce,
    "scatter": scatter,
    "shift": shift,
}


def runtime_namespace() -> dict:
    """A fresh copy of the exec namespace for one generated module."""
    return dict(RUNTIME_NAMESPACE)
