"""Runtime surface available to generated SPMD code.

Generated programs are ``exec``'d with exactly this namespace — NumPy,
the paper's communication primitives, and the redistribution runtime —
so the emitted source documents its dependencies honestly and cannot
accidentally capture library internals.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.function import Kind
from repro.distribution.runtime import redistribute
from repro.distribution.schemes import ArrayPlacement
from repro.distribution.sections import local_indices, pack_section
from repro.machine.collectives import (
    allgather,
    allreduce,
    barrier,
    bcast,
    exchange,
    gather,
    reduce,
    scatter,
    shift,
)
from repro.distribution.sparse import SparsePlacement
from repro.machine.nonblocking import NBComm, waitall, waitany
from repro.pipeline.inspector import (
    build_comm_schedule,
    gather_ghosts,
    inspector_exchange,
    spmv_local,
)
from repro.sparse.csr import csr_from_dense

RUNTIME_NAMESPACE = {
    "np": np,
    "allgather": allgather,
    "allreduce": allreduce,
    "barrier": barrier,
    "bcast": bcast,
    "exchange": exchange,
    "gather": gather,
    "reduce": reduce,
    "scatter": scatter,
    "shift": shift,
    # Nonblocking layer (overlapped generated code).
    "NBComm": NBComm,
    "waitall": waitall,
    "waitany": waitany,
    # Redistribution runtime (layout changes between loop phases).
    "ArrayPlacement": ArrayPlacement,
    "Kind": Kind,
    "local_indices": local_indices,
    "pack_section": pack_section,
    "redistribute": redistribute,
    # Sparse inspector/executor runtime (generated irregular sweeps).
    "SparsePlacement": SparsePlacement,
    "build_comm_schedule": build_comm_schedule,
    "csr_from_dense": csr_from_dense,
    "gather_ghosts": gather_ghosts,
    "inspector_exchange": inspector_exchange,
    "spmv_local": spmv_local,
}


def runtime_namespace() -> dict:
    """A fresh copy of the exec namespace for one generated module."""
    return dict(RUNTIME_NAMESPACE)
