"""Generic lowering of 2-D data-parallel (stencil) sweeps.

Companion to :mod:`repro.codegen.stencil` for 2-D arrays: recognizes
(optionally time-stepped) perfect double loops::

    DO i = lo_i, hi_i
      DO j = lo_j, hi_j
        A(i, j) = f( B(i + ci, j + cj), ..., scalars )

where every reference has unit coefficients and constant offsets, and the
dependence analyzer confirms the nest carries nothing at either loop
level.  Lowering follows the §3 alignment default for row-major sweeps:
**row blocks** on a linear processor array, so only *row* halos travel
(column offsets stay inside the locally complete rows).  Each sweep
exchanges ``max(-ci)`` upper and ``max(+ci)`` lower halo rows with the
linear-array neighbors, then computes vectorized on the interior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.emitter import CodeWriter
from repro.codegen.spmd import GeneratedProgram
from repro.dependence.analysis import find_dependences
from repro.errors import CodegenError
from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    UnaryOp,
)


@dataclass(frozen=True)
class Sweep2DStmt:
    lhs_array: str
    rhs: Expr
    offsets: tuple[tuple[str, int, int], ...]  # (array, row off, col off)


@dataclass(frozen=True)
class Sweep2D:
    ivar: str
    jvar: str
    i_lb: Affine
    i_ub: Affine
    j_lb: Affine
    j_ub: Affine
    stmts: tuple[Sweep2DStmt, ...]


@dataclass(frozen=True)
class Stencil2DPattern:
    size_param: str
    time_param: str | None
    arrays: tuple[str, ...]
    sweeps: tuple[Sweep2D, ...]

    @property
    def row_halo(self) -> dict[str, tuple[int, int]]:
        """(upper, lower) halo rows per array over all sweeps."""
        halo = {name: (0, 0) for name in self.arrays}
        for sweep in self.sweeps:
            for stmt in sweep.stmts:
                for name, ci, _cj in stmt.offsets:
                    up, down = halo[name]
                    halo[name] = (max(up, -ci), max(down, ci))
        return halo

    @property
    def col_halo(self) -> dict[str, tuple[int, int]]:
        """(left, right) column overhang per array (local, no comm)."""
        halo = {name: (0, 0) for name in self.arrays}
        for sweep in self.sweeps:
            for stmt in sweep.stmts:
                for name, _ci, cj in stmt.offsets:
                    left, right = halo[name]
                    halo[name] = (max(left, -cj), max(right, cj))
        return halo


def _offset_of(sub: Affine, var: str) -> int | None:
    if sub.coeff(var) != 1:
        return None
    rest = sub - Affine.var(var)
    return rest.const if rest.is_constant else None


def _extract_stmt(stmt: Assign, ivar: str, jvar: str, program: Program) -> Sweep2DStmt | None:
    lhs = stmt.lhs
    if not isinstance(lhs, ArrayRef) or lhs.rank != 2:
        return None
    if _offset_of(lhs.subscripts[0], ivar) != 0 or _offset_of(lhs.subscripts[1], jvar) != 0:
        return None
    offsets: list[tuple[str, int, int]] = []

    def visit(expr: Expr) -> bool:
        if isinstance(expr, Num):
            return True
        if isinstance(expr, ScalarRef):
            return expr.name in program.scalars or expr.name in program.params
        if isinstance(expr, ArrayRef):
            if expr.rank != 2:
                return False
            ci = _offset_of(expr.subscripts[0], ivar)
            cj = _offset_of(expr.subscripts[1], jvar)
            if ci is None or cj is None:
                return False
            offsets.append((expr.name, ci, cj))
            return True
        if isinstance(expr, UnaryOp):
            return visit(expr.operand)
        if isinstance(expr, BinOp):
            return visit(expr.left) and visit(expr.right)
        return False

    if not visit(stmt.rhs):
        return None
    return Sweep2DStmt(lhs_array=lhs.name, rhs=stmt.rhs, offsets=tuple(offsets))


def _extract_sweep(loop: DoLoop, program: Program) -> Sweep2D | None:
    if len(loop.body) != 1 or not isinstance(loop.body[0], DoLoop):
        return None
    inner = loop.body[0]
    if loop.var in inner.lb.variables() or loop.var in inner.ub.variables():
        return None
    stmts: list[Sweep2DStmt] = []
    for stmt in inner.body:
        if not isinstance(stmt, Assign):
            return None
        ext = _extract_stmt(stmt, loop.var, inner.var, program)
        if ext is None:
            return None
        stmts.append(ext)
    if not stmts:
        return None
    # Full parallelism: nothing carried at either sweep level.
    for dep in find_dependences([loop]):
        if dep.carried_level() in (0, 1):
            return None
    return Sweep2D(
        ivar=loop.var,
        jvar=inner.var,
        i_lb=loop.lb,
        i_ub=loop.ub,
        j_lb=inner.lb,
        j_ub=inner.ub,
        stmts=tuple(stmts),
    )


def match_stencil_2d(program: Program) -> Stencil2DPattern | None:
    """Recognize a (time-stepped) sequence of 2-D parallel sweeps."""
    arrays = tuple(sorted(program.arrays))
    if not arrays or any(program.arrays[a].rank != 2 for a in arrays):
        return None
    size_param = None
    for decl in program.arrays.values():
        for ext in decl.extents:
            if len(ext.coeffs) != 1 or ext.const != 0:
                return None
            (var, coeff), = ext.coeffs.items()
            if coeff != 1:
                return None
            size_param = size_param or var
            if var != size_param:
                return None
    if size_param is None:
        return None

    body = program.body
    time_param: str | None = None
    if len(body) == 1 and isinstance(body[0], DoLoop):
        outer = body[0]
        ub = outer.ub
        if (
            outer.lb == Affine.constant(1)
            and len(ub.coeffs) == 1
            and ub.const == 0
            and all(isinstance(s, DoLoop) for s in outer.body)
        ):
            (tp, coeff), = ub.coeffs.items()
            if coeff == 1 and tp != size_param:
                time_param = tp
                body = list(outer.body)

    sweeps: list[Sweep2D] = []
    for stmt in body:
        if not isinstance(stmt, DoLoop):
            return None
        sweep = _extract_sweep(stmt, program)
        if sweep is None:
            return None
        sweeps.append(sweep)
    if not sweeps:
        return None
    return Stencil2DPattern(
        size_param=size_param,
        time_param=time_param,
        arrays=arrays,
        sweeps=tuple(sweeps),
    )


def _affine_to_py(aff: Affine, size_param: str) -> str:
    parts = [str(aff.const)]
    for var, coeff in sorted(aff.coeffs.items()):
        if var != size_param:
            raise CodegenError(f"2-D stencil bounds may only use {size_param!r}")
        parts.append(f"{coeff} * m")
    return " + ".join(parts)


def _count_ops(expr: Expr) -> int:
    if isinstance(expr, BinOp):
        return 1 + _count_ops(expr.left) + _count_ops(expr.right)
    if isinstance(expr, UnaryOp):
        return (1 if expr.op == "-" else 0) + _count_ops(expr.operand)
    return 0


def _compile_expr(expr: Expr, sweep: Sweep2D, pattern: Stencil2DPattern) -> str:
    halo = pattern.row_halo

    def go(e: Expr) -> str:
        if isinstance(e, Num):
            return repr(float(e.value))
        if isinstance(e, ScalarRef):
            return f"env['{e.name}']"
        if isinstance(e, ArrayRef):
            ci = _offset_of(e.subscripts[0], sweep.ivar)
            cj = _offset_of(e.subscripts[1], sweep.jvar)
            assert ci is not None and cj is not None
            up = halo[e.name][0]
            r = up + ci
            return (
                f"pads['{e.name}'][{r} + s0 : {r} + s1, "
                f"j0 + {cj} : j1 + {cj}]"
            )
        if isinstance(e, UnaryOp):
            return f"(-{go(e.operand)})" if e.op == "-" else go(e.operand)
        if isinstance(e, BinOp):
            return f"({go(e.left)} {e.op} {go(e.right)})"
        raise CodegenError(f"cannot compile expression node {e!r}")

    return go(expr)


def emit_stencil_2d(pattern: Stencil2DPattern) -> GeneratedProgram:
    """Emit the SPMD 2-D stencil program (row blocks + halo rows)."""
    w = CodeWriter()
    w.lines(
        "# generated: row-block 2-D stencil sweeps; halo *rows* exchanged",
        "# with linear-array neighbors (column offsets are local because",
        "# rows are stored whole — the S3 alignment default).",
    )
    with w.block("def spmd_main(p, env):"):
        w.lines(
            f"m = int(env['{pattern.size_param}'])",
            "n = p.nprocs",
            "assert m % n == 0, '2-D stencil lowering needs N | m'",
            "cnt = m // n",
            "lo = p.rank * cnt",
            "hi = lo + cnt",
            "up = (p.rank - 1) % n",
            "down = (p.rank + 1) % n",
            "pads = {}",
        )
        for name in pattern.arrays:
            hu, hd = pattern.row_halo[name]
            w.lines(
                f"_g = np.asarray(env['{name}'], dtype=np.float64)",
                f"pads['{name}'] = np.zeros((cnt + {hu} + {hd}, m))",
                f"pads['{name}'][{hu}:{hu} + cnt, :] = _g[lo:hi, :]",
            )
        steps = f"int(env['{pattern.time_param}'])" if pattern.time_param else "1"
        w.line(f"steps = {steps}")
        with w.block("for _step in range(steps):"):
            for si, sweep in enumerate(pattern.sweeps):
                w.line(
                    f"# sweep {si + 1}: DO {sweep.ivar} = {sweep.i_lb}, {sweep.i_ub}"
                    f" / DO {sweep.jvar} = {sweep.j_lb}, {sweep.j_ub}"
                )
                read = sorted({name for st in sweep.stmts for name, _, _ in st.offsets})
                for name in read:
                    hu, hd = pattern.row_halo[name]
                    if hu:
                        with w.block("if n > 1:"):
                            w.lines(
                                f"p.send(down, pads['{name}'][cnt:{hu} + cnt, :].copy(), tag={70 + si})",
                                f"pads['{name}'][:{hu}, :] = yield from p.recv(up, tag={70 + si})",
                            )
                    if hd:
                        with w.block("if n > 1:"):
                            w.lines(
                                f"p.send(up, pads['{name}'][{hu}:{hu} + {hd}, :].copy(), tag={170 + si})",
                                f"pads['{name}'][{hu} + cnt:, :] = yield from p.recv(down, tag={170 + si})",
                            )
                w.lines(
                    f"g_lo = max({_affine_to_py(sweep.i_lb, pattern.size_param)}, lo + 1)",
                    f"g_hi = min({_affine_to_py(sweep.i_ub, pattern.size_param)}, hi)",
                    "s0 = g_lo - 1 - lo",
                    "s1 = g_hi - lo",
                    f"j0 = {_affine_to_py(sweep.j_lb, pattern.size_param)} - 1",
                    f"j1 = {_affine_to_py(sweep.j_ub, pattern.size_param)}",
                )
                with w.block("if s1 > s0 and j1 > j0:"):
                    for st in sweep.stmts:
                        expr = _compile_expr(st.rhs, sweep, pattern)
                        flops = _count_ops(st.rhs)
                        hu = pattern.row_halo[st.lhs_array][0]
                        w.line(
                            f"pads['{st.lhs_array}'][{hu} + s0 : {hu} + s1, j0:j1] = {expr}"
                        )
                        if flops:
                            w.line(
                                f"p.compute({flops} * (s1 - s0) * (j1 - j0), label='sweep')"
                            )
        w.line("out = {}")
        for name in pattern.arrays:
            hu, _hd = pattern.row_halo[name]
            w.lines(
                f"blocks = yield from allgather(p, pads['{name}'][{hu}:{hu} + cnt, :].copy(), tuple(range(n)))",
                f"out['{name}'] = np.vstack(blocks)",
            )
        w.line("return out")
    return GeneratedProgram(
        source=w.source(), entry="spmd_main", strategy="stencil-2d", pattern=pattern
    )
