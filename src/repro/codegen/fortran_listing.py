"""Paper-style Fortran listings of the generated SPMD programs.

The paper presents its generated code as Fortran-like listings (Fig 6 for
SOR, Fig 8 for Gauss).  :func:`fortran_listing` renders the same programs
in that style — numbered lines, ``do``/``continue`` loops, and the
``send_to_right`` / ``receive_from_left`` runtime calls — from a
recognized pattern, so the repository can reproduce the figures *as
figures* in addition to the executable Python form.
"""

from __future__ import annotations

from repro.codegen.patterns import GaussPattern, IterativeSolvePattern, MatmulPattern
from repro.codegen.spmd import GeneratedProgram
from repro.errors import CodegenError


def _number(lines: list[str]) -> str:
    return "\n".join(f"{idx:3}  {line}" for idx, line in enumerate(lines, start=1))


def _sor_listing(pat: IterativeSolvePattern) -> str:
    A, B, X, V = pat.A, pat.B, pat.X, pat.V
    omega = pat.omega or "1.0"
    lines = [
        "{* Let m be the problem size, N be the number *}",
        "{* of processors, and block = m / N. *}",
        f"REAL {A}(m, block), {X}(block), {B}(block), {V}(m)",
        "me = who_am_i()  {* Return current processor's ID. *}",
        "before = me * block",
        "do 44 k = 1, MAX_ITERATION",
        "  do 15 i = 1, before",
        "    temp = 0.0",
        "    do 11 j = 1, block",
        f"      temp = temp + {A}(i, j) * {X}(j)",
        "11  continue",
        f"    receive_from_left( {V}(i) )",
        f"    {V}(i) = {V}(i) + temp",
        f"    send_to_right( {V}(i) )",
        "15  continue",
        "  do 23 i = 1, block",
        "    current = before + i",
        f"    {V}(current) = 0.0",
        "    do 21 j = i, block",
        f"      {V}(current) = {V}(current) + {A}(current, j) * {X}(j)",
        "21  continue",
        f"    send_to_right( {V}(current) )",
        "23  continue",
        "  do 34 i = 1, block",
        "    current = before + i",
        "    temp = 0.0",
        "    do 29 j = 1, i - 1",
        f"      temp = temp + {A}(current, j) * {X}(j)",
        "29  continue",
        f"    receive_from_left( {V}(current) )",
        f"    {V}(current) = {V}(current) + temp",
        f"    {X}(i) = {X}(i) + {omega} *",
        f"      ( {B}(i) - {V}(current) ) / {A}(current, i)",
        "34  continue",
        "  do 43 i = (me + 1) * block + 1, m",
        "    temp = 0.0",
        "    do 39 j = 1, block",
        f"      temp = temp + {A}(i, j) * {X}(j)",
        "39  continue",
        f"    receive_from_left( {V}(i) )",
        f"    {V}(i) = {V}(i) + temp",
        f"    send_to_right( {V}(i) )",
        "43  continue",
        "44 continue",
    ]
    return _number(lines)


def _gauss_listing(pat: GaussPattern) -> str:
    A, L, B, V, X = pat.A, pat.L, pat.B, pat.V, pat.X
    lines = [
        "{* Let m be the problem size, N be the number *}",
        "{* of processors, and block = m / N (cyclic rows). *}",
        f"REAL {A}(block, m), {L}(block, m), {X}(block), {B}(block)",
        f"REAL {V}(block), Apipeline(m), Xpipeline, Bpipeline",
        "me = who_am_i()  {* Return current processor's ID. *}",
        "{* Matrix triangularization. *}",
        "do 15 k = 1, m",
        "  if (owner(k) = me) then",
        "    pivot = local(k)",
        f"    send_to_right( {A}(pivot, k..m), {B}(pivot) )",
        "  else",
        "    receive_from_left( Apipeline(k..m), Bpipeline )",
        "    if (right <> owner(k)) send_to_right( Apipeline(k..m), Bpipeline )",
        "  endif",
        "  do 15 i = rows_below(k)",
        f"    {L}(i, k) = {A}(i, k) / Apipeline(k)",
        f"    {B}(i) = {B}(i) - {L}(i, k) * Bpipeline",
        "    do 15 j = k + 1, m",
        f"      {A}(i, j) = {A}(i, j) - {L}(i, k) * Apipeline(j)",
        "15 continue",
        f"{{* Triangular linear system U {X} = Y. *}}",
        "do 18 i = block, 1, -1",
        f"  {V}(i) = 0.0",
        "18 continue",
        "do 30 j = m, 1, -1",
        "  if (owner(j) = me) then",
        "    pivot = local(j)",
        f"    {X}(pivot) = ( {B}(pivot) - {V}(pivot) ) / {A}(pivot, j)",
        f"    send_to_left( {X}(pivot) )",
        "    Xpipeline = X(pivot)",
        "  else",
        "    receive_from_right( Xpipeline )",
        "    if (left <> owner(j)) send_to_left( Xpipeline )",
        "  endif",
        "  do 30 i = rows_above(j)",
        f"    {V}(i) = {V}(i) + {A}(i, j) * Xpipeline",
        "30 continue",
    ]
    return _number(lines)


def _jacobi_listing(pat: IterativeSolvePattern) -> str:
    A, B, X, V = pat.A, pat.B, pat.X, pat.V
    lines = [
        "{* Let m be the problem size, N be the number *}",
        "{* of processors, and block = m / N (row blocks). *}",
        f"REAL {A}(block, m), {X}(m), {B}(block), {V}(block)",
        "me = who_am_i()",
        "before = me * block",
        "do 13 k = 1, MAX_ITERATION",
        "  do 9 i = 1, block",
        f"    {V}(i) = 0.0",
        "    do 8 j = 1, m",
        f"      {V}(i) = {V}(i) + {A}(i, j) * {X}(j)",
        "8   continue",
        "9 continue",
        "  do 11 i = 1, block",
        f"    {X}(before + i) = {X}(before + i) +",
        f"      ( {B}(i) - {V}(i) ) / {A}(i, before + i)",
        "11 continue",
        f"  many_to_many_multicast( {X}(before + 1 .. before + block) )",
        "13 continue",
    ]
    return _number(lines)


def fortran_listing(gen: GeneratedProgram) -> str:
    """Paper-style Fortran listing for a generated program."""
    pat = gen.pattern
    if isinstance(pat, IterativeSolvePattern):
        if gen.strategy == "ring-pipeline":
            return _sor_listing(pat)
        return _jacobi_listing(pat)
    if isinstance(pat, GaussPattern):
        return _gauss_listing(pat)
    if isinstance(pat, MatmulPattern):
        raise CodegenError("no paper listing exists for the Cannon strategy")
    raise CodegenError(f"unknown pattern {type(pat).__name__}")
