"""The paper's example programs, transcribed in the DSL.

Each factory parses the DSL source fresh so callers can mutate the returned
IR freely.  The sources follow the paper's listings:

* :func:`jacobi_program` — §3, Jacobi's iterative algorithm for ``A x = b``;
* :func:`sor_program` — §5, successive over-relaxation;
* :func:`gauss_program` — §6, Gauss elimination + back-substitution;
* :func:`matmul_program` — §2.1, the matrix product ``A = B * C`` used to
  motivate Cannon-style skewed distributions (Fig 1).
"""

from __future__ import annotations

from repro.lang.ast import Program
from repro.lang.parser import parse_program

JACOBI_SOURCE = """\
PROGRAM jacobi
PARAM m, maxiter
ARRAY A(m, m), V(m), B(m), X(m)
DO k = 1, maxiter
  DO i = 1, m
    V(i) = 0.0
    DO j = 1, m
      V(i) = V(i) + A(i, j) * X(j)
    END DO
  END DO
  DO i = 1, m
    X(i) = X(i) + (B(i) - V(i)) / A(i, i)
  END DO
END DO
END
"""

SOR_SOURCE = """\
PROGRAM sor
PARAM m, maxiter
SCALAR omega
ARRAY A(m, m), V(m), B(m), X(m)
DO k = 1, maxiter
  DO i = 1, m
    V(i) = 0.0
    DO j = 1, m
      V(i) = V(i) + A(i, j) * X(j)
    END DO
    X(i) = X(i) + omega * (B(i) - V(i)) / A(i, i)
  END DO
END DO
END
"""

GAUSS_SOURCE = """\
PROGRAM gauss
PARAM m
ARRAY A(m, m), L(m, m), B(m), V(m), X(m)
{* Matrix triangularization. *}
DO k = 1, m
  DO i = k + 1, m
    L(i, k) = A(i, k) / A(k, k)
    B(i) = B(i) - L(i, k) * B(k)
    DO j = k + 1, m
      A(i, j) = A(i, j) - L(i, k) * A(k, j)
    END DO
  END DO
END DO
{* Triangular linear system U X = Y. *}
DO i = m, 1, -1
  V(i) = 0.0
END DO
DO j = m, 1, -1
  X(j) = (B(j) - V(j)) / A(j, j)
  DO i = j - 1, 1, -1
    V(i) = V(i) + A(i, j) * X(j)
  END DO
END DO
END
"""

MATMUL_SOURCE = """\
PROGRAM matmul
PARAM n
ARRAY A(n, n), B(n, n), C(n, n)
DO i = 1, n
  DO j = 1, n
    A(i, j) = 0.0
    DO k = 1, n
      A(i, j) = A(i, j) + B(i, k) * C(k, j)
    END DO
  END DO
END DO
END
"""


def jacobi_program() -> Program:
    """Jacobi's iterative algorithm (paper §3 listing, lines 1-10)."""
    return parse_program(JACOBI_SOURCE)


def sor_program() -> Program:
    """Successive over-relaxation (paper §5 listing, lines 1-9)."""
    return parse_program(SOR_SOURCE)


def gauss_program() -> Program:
    """Gauss elimination + back-substitution (paper §6 listing, lines 1-17)."""
    return parse_program(GAUSS_SOURCE)


def matmul_program() -> Program:
    """Three-nested-loop matrix multiplication A = B x C (paper §2)."""
    return parse_program(MATMUL_SOURCE)
