"""Classic loop transformations (paper §7's closing remarks).

The paper's conclusion names the standard restructuring arsenal —
"loop interchanging, loop distribution, data blocking (strip mining)" —
as the techniques that improve parallelism extraction.  This module
implements them over the IR with dependence-based legality checks:

* :func:`interchange` — swap a perfectly nested loop pair; legal iff no
  dependence has direction (<, >) on the pair (the classic condition);
* :func:`distribute` — loop fission: split a loop's body into one loop
  per statement group; legal iff no loop-carried dependence points from
  a later group back to an earlier one (no cycle across the split);
* :func:`strip_mine` — blocking of a constant-bound loop into a strip
  loop and an element loop; always legal.
* :func:`specialize` — substitute parameter values into loop bounds,
  producing constant-bound loops (strip mining's precondition).

All transformations return *new* IR (inputs are never mutated) and raise
:class:`~repro.errors.DependenceError` when illegal.
"""

from __future__ import annotations

import copy

from repro.dependence.analysis import find_dependences
from repro.errors import DependenceError
from repro.lang.affine import Affine
from repro.lang.ast import Assign, DoLoop, Stmt


def _clone(stmt: Stmt) -> Stmt:
    return copy.deepcopy(stmt)


# ---------------------------------------------------------------------------
# interchange
# ---------------------------------------------------------------------------


def can_interchange(outer: DoLoop) -> bool:
    """Is swapping *outer* with its single nested loop legal?

    Requires a perfect 2-deep prefix (outer's body is exactly one loop).
    Interchange is illegal when some dependence has distance/direction
    ``(<, >)`` on the pair: it would be reversed to the invalid ``(>, <)``.
    """
    if len(outer.body) != 1 or not isinstance(outer.body[0], DoLoop):
        return False
    inner = outer.body[0]
    if outer.var in inner.lb.variables() or outer.var in inner.ub.variables():
        return False  # triangular bounds: interchange changes the domain
    for dep in find_dependences([outer]):
        dirs = dep.distance.directions()
        if len(dirs) >= 2:
            d_outer, d_inner = dirs[0], dirs[1]
            if d_outer in ("<", "*") and d_inner in (">", "*"):
                if d_outer == "<" and d_inner == ">":
                    return False
                # Unknown entries: conservative only when both unknown and
                # the references are distinct array positions.
                if "*" in (d_outer, d_inner) and dep.array and dep.kind != "output":
                    if d_outer == "*" and d_inner == "*":
                        continue  # same-position repeats commute
                    if (d_outer, d_inner) == ("<", "*") or (d_outer, d_inner) == ("*", ">"):
                        return False
    return True


def interchange(outer: DoLoop) -> DoLoop:
    """Swap a perfect loop pair, returning the new outer loop."""
    if not can_interchange(outer):
        raise DependenceError(
            f"interchange of loops {outer.var!r} and inner is not legal"
        )
    inner = outer.body[0]
    assert isinstance(inner, DoLoop)
    new_inner = DoLoop(
        var=outer.var,
        lb=outer.lb,
        ub=outer.ub,
        step=outer.step,
        body=[_clone(s) for s in inner.body],
        line=outer.line,
    )
    return DoLoop(
        var=inner.var,
        lb=inner.lb,
        ub=inner.ub,
        step=inner.step,
        body=[new_inner],
        line=inner.line,
    )


# ---------------------------------------------------------------------------
# loop distribution (fission)
# ---------------------------------------------------------------------------


def can_distribute(loop: DoLoop) -> bool:
    """Is splitting *loop* into one loop per body statement legal?

    Fission is illegal when a dependence carried by *loop* flows from a
    textually later statement to an earlier one (splitting would execute
    every instance of the earlier statement before any instance of the
    later, reversing the dependence).
    """
    order = {id(stmt): idx for idx, stmt in enumerate(loop.body)}

    def top_stmt_index(site) -> int | None:
        # The enclosing top-level statement of a reference site.
        for enclosing in [site.stmt] + list(site.loops):
            if id(enclosing) in order:
                return order[id(enclosing)]
        return None

    for dep in find_dependences([loop]):
        if dep.carried_level() != 0:
            continue  # loop-independent or carried deeper: unaffected
        src = top_stmt_index(dep.source)
        dst = top_stmt_index(dep.sink)
        if src is None or dst is None:
            continue
        if src > dst:
            return False
    return True


def distribute(loop: DoLoop) -> list[DoLoop]:
    """Fission *loop* into one loop per top-level body statement."""
    if not can_distribute(loop):
        raise DependenceError(f"distribution of loop {loop.var!r} is not legal")
    out: list[DoLoop] = []
    for stmt in loop.body:
        out.append(
            DoLoop(
                var=loop.var,
                lb=loop.lb,
                ub=loop.ub,
                step=loop.step,
                body=[_clone(stmt)],
                line=loop.line,
            )
        )
    return out


# ---------------------------------------------------------------------------
# strip mining
# ---------------------------------------------------------------------------


def specialize(loop: DoLoop, env: dict[str, int]) -> DoLoop:
    """Substitute parameter values into all bounds of a loop nest."""

    def subst(aff: Affine) -> Affine:
        return aff.substitute({k: v for k, v in env.items()})

    def visit(stmt: Stmt) -> Stmt:
        if isinstance(stmt, DoLoop):
            return DoLoop(
                var=stmt.var,
                lb=subst(stmt.lb),
                ub=subst(stmt.ub),
                step=stmt.step,
                body=[visit(s) for s in stmt.body],
                line=stmt.line,
            )
        assert isinstance(stmt, Assign)
        return _clone(stmt)

    result = visit(loop)
    assert isinstance(result, DoLoop)
    return result


def strip_mine(loop: DoLoop, block: int, strip_var: str | None = None) -> DoLoop:
    """Block a constant-bound unit-step loop into strips of *block*.

    ``DO i = lo, hi`` becomes::

        DO i_strip = lo, hi, block
          DO i = i_strip, min(i_strip + block - 1, hi)

    The inner upper bound must stay affine, so the trip count must divide
    evenly by *block* (the classic divisibility restriction); otherwise a
    :class:`~repro.errors.DependenceError` explains the failure.
    """
    if block < 1:
        raise DependenceError(f"strip size must be >= 1, got {block}")
    if loop.step != 1:
        raise DependenceError("strip mining requires a unit-step loop")
    if not (loop.lb.is_constant and loop.ub.is_constant):
        raise DependenceError(
            "strip mining requires constant bounds; use specialize() first"
        )
    lo, hi = loop.lb.const, loop.ub.const
    trips = max(0, hi - lo + 1)
    if trips % block != 0:
        raise DependenceError(
            f"strip size {block} does not divide the trip count {trips}"
        )
    strip_var = strip_var or f"{loop.var}_strip"
    inner = DoLoop(
        var=loop.var,
        lb=Affine.var(strip_var),
        ub=Affine.var(strip_var) + (block - 1),
        step=1,
        body=[_clone(s) for s in loop.body],
        line=loop.line,
    )
    return DoLoop(
        var=strip_var,
        lb=Affine.constant(lo),
        ub=Affine.constant(hi),
        step=block,
        body=[inner],
        line=loop.line,
    )
