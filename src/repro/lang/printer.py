"""Pretty-printer: IR back to DSL text (round-trips through the parser)."""

from __future__ import annotations

from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def expr_to_text(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Num):
        return str(expr.value)
    if isinstance(expr, ScalarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}({', '.join(str(s) for s in expr.subscripts)})"
    if isinstance(expr, Call):
        return f"{expr.name}({', '.join(expr_to_text(a) for a in expr.args)})"
    if isinstance(expr, UnaryOp):
        inner = expr_to_text(expr.operand, 3)
        return f"{expr.op}{inner}"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = expr_to_text(expr.left, prec)
        # Right operand of - and / needs tighter binding.
        right = expr_to_text(expr.right, prec + (1 if expr.op in "-/" else 0))
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node {expr!r}")


def stmt_to_lines(stmt: Stmt, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{expr_to_text(stmt.lhs)} = {expr_to_text(stmt.rhs)}"]
    if isinstance(stmt, DoLoop):
        step = f", {stmt.step}" if stmt.step != 1 else ""
        lines = [f"{pad}DO {stmt.var} = {stmt.lb}, {stmt.ub}{step}"]
        for child in stmt.body:
            lines.extend(stmt_to_lines(child, indent + 1))
        lines.append(f"{pad}END DO")
        return lines
    raise TypeError(f"unknown statement node {stmt!r}")


def program_to_text(program: Program) -> str:
    """Render a full program as parseable DSL text."""
    lines = [f"PROGRAM {program.name}"]
    if program.params:
        lines.append("PARAM " + ", ".join(program.params))
    if program.scalars:
        lines.append("SCALAR " + ", ".join(program.scalars))
    if program.arrays:
        decls = ", ".join(str(d) for d in program.arrays.values())
        lines.append("ARRAY " + decls)
    for name, specs in program.directives.items():
        lines.append(f"DISTRIBUTE {name}({', '.join(specs)})")
    for (src, d_src), (tgt, d_tgt) in program.alignments:
        src_rank = program.arrays[src].rank
        tgt_rank = program.arrays[tgt].rank
        src_vars = [f"x{d}" for d in range(1, src_rank + 1)]
        tgt_pattern = ["*"] * tgt_rank
        tgt_pattern[d_tgt - 1] = f"x{d_src}"
        lines.append(
            f"ALIGN {src}({', '.join(src_vars)}) WITH {tgt}({', '.join(tgt_pattern)})"
        )
    for stmt in program.body:
        lines.extend(stmt_to_lines(stmt))
    lines.append("END")
    return "\n".join(lines) + "\n"
