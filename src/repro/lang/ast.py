"""IR for the Do-loop DSL.

The IR is deliberately small: it models exactly the program class the
paper's compilation method is defined on — sequences of (possibly
imperfectly) nested ``DO`` loops whose statements are assignments with
affine array subscripts.

Nodes
-----
* :class:`Program` — declarations + a statement list.
* :class:`DoLoop` — ``DO var = lb, ub[, step]`` with affine bounds.
* :class:`Assign` — ``lhs = rhs`` where lhs is an array or scalar ref.
* Expressions: :class:`Num`, :class:`ScalarRef`, :class:`ArrayRef`,
  :class:`UnaryOp`, :class:`BinOp`, :class:`Call`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import AffineError
from repro.lang.affine import Affine

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A numeric literal (int or float)."""

    value: float

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


@dataclass(frozen=True)
class ScalarRef:
    """A reference to a scalar variable (loop index, parameter or scalar)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """``name(sub1, sub2, ...)`` with affine subscripts."""

    name: str
    subscripts: tuple[Affine, ...]

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary ``-`` or ``+``."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Call:
    """Intrinsic call, e.g. ``min(a, b)`` or ``ceiling(k / N)``."""

    name: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


Expr = Union[Num, ScalarRef, ArrayRef, UnaryOp, BinOp, Call]
LValue = Union[ArrayRef, ScalarRef]

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """Assignment statement with an optional source line number.

    The line number tracks the paper's listings so component-affinity edges
    can be attributed exactly like Fig 2 ("line 5", "line 8", ...).
    """

    lhs: LValue
    rhs: Expr
    line: int = -1

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class DoLoop:
    """``DO var = lb, ub, step`` over integer affine bounds."""

    var: str
    lb: Affine
    ub: Affine
    step: int = 1
    body: list["Stmt"] = field(default_factory=list)
    line: int = -1

    def trip_count(self, env: dict[str, int]) -> int:
        """Number of iterations under a parameter binding."""
        lo = self.lb.evaluate(env)
        hi = self.ub.evaluate(env)
        if self.step > 0:
            return max(0, (hi - lo) // self.step + 1)
        return max(0, (lo - hi) // (-self.step) + 1)

    def iter_values(self, env: dict[str, int]) -> range:
        lo = self.lb.evaluate(env)
        hi = self.ub.evaluate(env)
        if self.step > 0:
            return range(lo, hi + 1, self.step)
        return range(lo, hi - 1, self.step)

    def __str__(self) -> str:
        step = f", {self.step}" if self.step != 1 else ""
        return f"DO {self.var} = {self.lb}, {self.ub}{step}"


Stmt = Union[Assign, DoLoop]

# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl:
    """An array declaration; extents are affine in program parameters."""

    name: str
    extents: tuple[Affine, ...]

    @property
    def rank(self) -> int:
        return len(self.extents)

    def shape(self, env: dict[str, int]) -> tuple[int, ...]:
        return tuple(e.evaluate(env) for e in self.extents)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(e) for e in self.extents)})"


@dataclass
class Program:
    """A parsed DSL program.

    Attributes
    ----------
    name:
        Program name from the ``PROGRAM`` header.
    params:
        Symbolic integer parameters (problem sizes, iteration limits).
    arrays:
        Declared arrays by name.
    scalars:
        Declared scalar variables (e.g. ``OMEGA``).
    body:
        Top-level statement list.
    directives:
        Fortran-D style distribution directives, per array: one specifier
        per dimension, each ``"BLOCK"``, ``"CYCLIC"`` or ``"*"``
        (replicated).  Parsed from ``DISTRIBUTE A(BLOCK, *)`` lines.
    alignments:
        HPF-style alignment constraints parsed from
        ``ALIGN V(i) WITH A(i, *)`` lines: pairs of (array, dim) nodes
        that must map to the same grid dimension.
    """

    name: str
    params: tuple[str, ...]
    arrays: dict[str, ArrayDecl]
    scalars: tuple[str, ...]
    body: list[Stmt]
    directives: dict[str, tuple[str, ...]] = field(default_factory=dict)
    alignments: tuple[tuple[tuple[str, int], tuple[str, int]], ...] = ()

    def array(self, name: str) -> ArrayDecl:
        try:
            return self.arrays[name]
        except KeyError:
            raise AffineError(f"unknown array {name!r} in program {self.name!r}") from None

    def loops(self) -> list[DoLoop]:
        """Top-level loops of the program body, in order."""
        return [s for s in self.body if isinstance(s, DoLoop)]

    def walk(self) -> Iterator[Stmt]:
        """Yield every statement in the program, pre-order."""
        yield from walk_stmts(self.body)


def walk_stmts(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Pre-order walk over a statement list."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, DoLoop):
            yield from walk_stmts(stmt.body)


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Pre-order walk over an expression tree."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_exprs(arg)


def array_refs(expr: Expr) -> list[ArrayRef]:
    """All array references in an expression tree, left to right."""
    return [e for e in walk_exprs(expr) if isinstance(e, ArrayRef)]
