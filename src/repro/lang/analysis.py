"""Loop-nest queries over the IR.

These helpers feed the component-affinity-graph builder (§3) and the
dependence analyzer (§6): they enumerate array reference *sites* together
with their loop context, and classify reads vs. writes under the
owner-computes rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    ArrayRef,
    Assign,
    DoLoop,
    Program,
    ScalarRef,
    Stmt,
    array_refs,
)


@dataclass(frozen=True)
class RefSite:
    """One textual occurrence of an array reference.

    Attributes
    ----------
    ref:
        The :class:`ArrayRef` node.
    stmt:
        The enclosing assignment.
    loops:
        Enclosing loops, outermost first.
    is_write:
        True when the reference is the assignment's left-hand side.
    """

    ref: ArrayRef
    stmt: Assign
    loops: tuple[DoLoop, ...]
    is_write: bool

    @property
    def array(self) -> str:
        return self.ref.name

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    @property
    def line(self) -> int:
        return self.stmt.line


def collect_ref_sites(stmts: list[Stmt] | Program, _loops: tuple[DoLoop, ...] = ()) -> list[RefSite]:
    """All array reference sites in *stmts*, pre-order, with loop context."""
    if isinstance(stmts, Program):
        stmts = stmts.body
    sites: list[RefSite] = []
    for stmt in stmts:
        if isinstance(stmt, DoLoop):
            sites.extend(collect_ref_sites(stmt.body, _loops + (stmt,)))
        elif isinstance(stmt, Assign):
            if isinstance(stmt.lhs, ArrayRef):
                sites.append(RefSite(stmt.lhs, stmt, _loops, True))
            sites.extend(RefSite(r, stmt, _loops, False) for r in array_refs(stmt.rhs))
    return sites


def assignments(stmts: list[Stmt] | Program) -> list[Assign]:
    """All assignments, pre-order."""
    if isinstance(stmts, Program):
        stmts = stmts.body
    out: list[Assign] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            out.append(stmt)
        else:
            out.extend(assignments(stmt.body))
    return out


def loop_depth(stmt: Stmt) -> int:
    """Maximum DO-nest depth of a statement (assignment = 0)."""
    if isinstance(stmt, Assign):
        return 0
    return 1 + max((loop_depth(s) for s in stmt.body), default=0)


def arrays_used(stmts: list[Stmt] | Program) -> frozenset[str]:
    """Names of all arrays referenced."""
    return frozenset(site.array for site in collect_ref_sites(stmts))


def scalars_used(stmts: list[Stmt] | Program) -> frozenset[str]:
    """Names of scalar *value* references (e.g. ``omega``).

    Loop indices used only inside affine subscripts are not included —
    they are part of the iteration space, not data.
    """
    if isinstance(stmts, Program):
        stmts = stmts.body
    names: set[str] = set()

    def visit_stmts(body: list[Stmt]) -> None:
        from repro.lang.ast import walk_exprs

        for stmt in body:
            if isinstance(stmt, DoLoop):
                visit_stmts(stmt.body)
            else:
                for node in walk_exprs(stmt.rhs):
                    if isinstance(node, ScalarRef):
                        names.add(node.name)
                if isinstance(stmt.lhs, ScalarRef):
                    names.add(stmt.lhs.name)

    visit_stmts(stmts)
    return frozenset(names)


def iteration_count(loop: DoLoop, env: dict[str, int]) -> int:
    """Total number of innermost iterations executed by a loop nest.

    For triangular nests the bounds depend on outer indices, so we count by
    enumeration; the paper's programs are small enough for this to be exact
    rather than symbolic.
    """

    def count(stmts: list[Stmt], bind: dict[str, int]) -> int:
        total = 0
        for stmt in stmts:
            if isinstance(stmt, Assign):
                total += 1
            else:
                for value in stmt.iter_values(bind):
                    inner = dict(bind)
                    inner[stmt.var] = value
                    total += count(stmt.body, inner)
        return total

    total = 0
    for value in loop.iter_values(env):
        bind = dict(env)
        bind[loop.var] = value
        total += count(loop.body, bind)
    return total
