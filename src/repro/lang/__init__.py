"""Fortran-style Do-loop DSL: lexer, parser, IR and canned paper programs."""

from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    DoLoop,
    Num,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)
from repro.lang.parser import parse_program
from repro.lang.printer import program_to_text
from repro.lang.programs import (
    gauss_program,
    jacobi_program,
    matmul_program,
    sor_program,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "BinOp",
    "DoLoop",
    "Num",
    "Program",
    "ScalarRef",
    "Stmt",
    "UnaryOp",
    "parse_program",
    "program_to_text",
    "jacobi_program",
    "sor_program",
    "gauss_program",
    "matmul_program",
]
