"""Recursive-descent parser for the Do-loop DSL.

Grammar (keywords case-insensitive, one statement per line)::

    program  := 'PROGRAM' NAME NL decl* stmt* 'END' NL?
    decl     := 'PARAM' NAME (',' NAME)* NL
              | 'SCALAR' NAME (',' NAME)* NL
              | 'ARRAY' arrdecl (',' arrdecl)* NL
    arrdecl  := NAME '(' expr (',' expr)* ')'
    stmt     := doloop | assign
    doloop   := 'DO' NAME '=' expr ',' expr (',' expr)? NL stmt* endloop
    endloop  := ('END' 'DO' | 'ENDDO') NL
    assign   := lvalue '=' expr NL
    lvalue   := NAME ['(' expr (',' expr)* ')']
    expr     := standard precedence over + - * / with unary -, parentheses
                and intrinsic calls min/max/mod/abs/ceiling/floor

Array subscripts and loop bounds must be affine in loop indices and
parameters; violations raise :class:`repro.errors.AffineError`.
"""

from __future__ import annotations

from repro.errors import AffineError, ParseError
from repro.lang.affine import Affine
from repro.lang.ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DoLoop,
    Expr,
    Num,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)
from repro.lang.lexer import Token, tokenize

INTRINSICS = frozenset({"min", "max", "mod", "abs", "ceiling", "floor"})


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.arrays: dict[str, ArrayDecl] = {}
        self.params: list[str] = []
        self.scalars: list[str] = []
        self.directives: dict[str, tuple[str, ...]] = {}
        self.alignments: list[tuple[tuple[str, int], tuple[str, int]]] = []

    # -- token plumbing ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}", self.cur.line, self.cur.column
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.accept("NEWLINE"):
            pass

    def end_statement(self) -> None:
        if not (self.accept("NEWLINE") or self.check("EOF")):
            raise ParseError(
                f"expected end of statement, found {self.cur.text!r}",
                self.cur.line,
                self.cur.column,
            )

    # -- grammar --------------------------------------------------------
    def parse(self) -> Program:
        self.skip_newlines()
        self.expect("KEYWORD", "PROGRAM")
        name = self.expect("NAME").text
        self.end_statement()
        self.skip_newlines()
        while self.cur.kind == "KEYWORD" and self.cur.text in (
            "PARAM", "ARRAY", "SCALAR", "DISTRIBUTE", "ALIGN",
        ):
            self.parse_decl()
            self.skip_newlines()
        body = self.parse_stmts(until_end=True)
        self.expect("KEYWORD", "END")
        self.skip_newlines()
        if self.cur.kind != "EOF":
            raise ParseError(
                f"trailing input after END: {self.cur.text!r}", self.cur.line, self.cur.column
            )
        return Program(
            name=name,
            params=tuple(self.params),
            arrays=dict(self.arrays),
            scalars=tuple(self.scalars),
            body=body,
            directives=dict(self.directives),
            alignments=tuple(self.alignments),
        )

    def parse_decl(self) -> None:
        kw = self.expect("KEYWORD").text
        if kw == "DISTRIBUTE":
            self.parse_distribute()
            return
        if kw == "ALIGN":
            self.parse_align()
            return
        if kw == "PARAM":
            while True:
                self.params.append(self.expect("NAME").text)
                if not self.accept(","):
                    break
        elif kw == "SCALAR":
            while True:
                self.scalars.append(self.expect("NAME").text)
                if not self.accept(","):
                    break
        else:  # ARRAY
            while True:
                arr_name = self.expect("NAME").text
                self.expect("(")
                extents = [self.parse_affine()]
                while self.accept(","):
                    extents.append(self.parse_affine())
                self.expect(")")
                if arr_name in self.arrays:
                    raise ParseError(f"array {arr_name!r} declared twice", self.cur.line)
                self.arrays[arr_name] = ArrayDecl(arr_name, tuple(extents))
                if not self.accept(","):
                    break
        self.end_statement()

    def parse_distribute(self) -> None:
        """``DISTRIBUTE A(BLOCK, CYCLIC)`` — Fortran-D style directive.

        One specifier per array dimension: ``BLOCK``, ``CYCLIC`` or ``*``
        (the dimension is not distributed).  The array must be declared
        before the directive.
        """
        tok = self.cur
        name = self.expect("NAME").text
        if name not in self.arrays:
            raise ParseError(f"DISTRIBUTE of undeclared array {name!r}", tok.line)
        if name in self.directives:
            raise ParseError(f"duplicate DISTRIBUTE for {name!r}", tok.line)
        self.expect("(")
        specs: list[str] = []
        while True:
            if self.accept("*"):
                specs.append("*")
            else:
                spec_tok = self.expect("NAME")
                spec = spec_tok.text.upper()
                if spec not in ("BLOCK", "CYCLIC"):
                    raise ParseError(
                        f"distribution specifier must be BLOCK, CYCLIC or *, got {spec_tok.text!r}",
                        spec_tok.line,
                    )
                specs.append(spec)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()
        decl = self.arrays[name]
        if len(specs) != decl.rank:
            raise ParseError(
                f"DISTRIBUTE {name} has {len(specs)} specifiers for rank {decl.rank}",
                tok.line,
            )
        self.directives[name] = tuple(specs)

    def parse_align(self) -> None:
        """``ALIGN V(i) WITH A(i, *)`` — HPF-style alignment constraint.

        Each placeholder variable on the left must appear exactly once on
        the right (or be matched by ``*`` positions being skipped); the
        matched dimension pairs become must-co-align constraints for the
        component-alignment solver.
        """
        tok = self.cur
        src_name = self.expect("NAME").text
        if src_name not in self.arrays:
            raise ParseError(f"ALIGN of undeclared array {src_name!r}", tok.line)
        self.expect("(")
        src_vars: list[str] = []
        while True:
            src_vars.append(self.expect("NAME").text)
            if not self.accept(","):
                break
        self.expect(")")
        if len(src_vars) != self.arrays[src_name].rank:
            raise ParseError(
                f"ALIGN {src_name} has {len(src_vars)} placeholders for rank "
                f"{self.arrays[src_name].rank}", tok.line,
            )
        if len(set(src_vars)) != len(src_vars):
            raise ParseError("ALIGN placeholders must be distinct", tok.line)
        self.expect("KEYWORD", "WITH")
        tgt_name = self.expect("NAME").text
        if tgt_name not in self.arrays:
            raise ParseError(f"ALIGN target {tgt_name!r} not declared", tok.line)
        self.expect("(")
        tgt_pattern: list[str] = []
        while True:
            if self.accept("*"):
                tgt_pattern.append("*")
            else:
                tgt_pattern.append(self.expect("NAME").text)
            if not self.accept(","):
                break
        self.expect(")")
        self.end_statement()
        if len(tgt_pattern) != self.arrays[tgt_name].rank:
            raise ParseError(
                f"ALIGN target {tgt_name} has {len(tgt_pattern)} positions for "
                f"rank {self.arrays[tgt_name].rank}", tok.line,
            )
        for d_src, var in enumerate(src_vars, start=1):
            hits = [d for d, p in enumerate(tgt_pattern, start=1) if p == var]
            if len(hits) > 1:
                raise ParseError(
                    f"ALIGN placeholder {var!r} used twice on the right", tok.line
                )
            if hits:
                self.alignments.append(((src_name, d_src), (tgt_name, hits[0])))

    def parse_stmts(self, until_end: bool) -> list[Stmt]:
        stmts: list[Stmt] = []
        self.skip_newlines()
        while True:
            if self.check("EOF"):
                if until_end:
                    raise ParseError("unexpected end of input, missing END", self.cur.line)
                break
            if self.check("KEYWORD", "END") or self.check("KEYWORD", "ENDDO"):
                break
            stmts.append(self.parse_stmt())
            self.skip_newlines()
        return stmts

    def parse_stmt(self) -> Stmt:
        if self.check("KEYWORD", "DO"):
            return self.parse_do()
        return self.parse_assign()

    def parse_do(self) -> DoLoop:
        tok = self.expect("KEYWORD", "DO")
        var = self.expect("NAME").text
        self.expect("=")
        lb = self.parse_affine()
        self.expect(",")
        ub = self.parse_affine()
        step = 1
        if self.accept(","):
            step_aff = self.parse_affine()
            if not step_aff.is_constant:
                raise ParseError("loop step must be a constant", tok.line)
            step = step_aff.const
            if step == 0:
                raise ParseError("loop step must be nonzero", tok.line)
        self.end_statement()
        body = self.parse_stmts(until_end=False)
        if self.accept("KEYWORD", "ENDDO") is None:
            self.expect("KEYWORD", "END")
            self.expect("KEYWORD", "DO")
        self.end_statement()
        return DoLoop(var=var, lb=lb, ub=ub, step=step, body=body, line=tok.line)

    def parse_assign(self) -> Assign:
        tok = self.cur
        lhs = self.parse_primary()
        if not isinstance(lhs, (ArrayRef, ScalarRef)):
            raise ParseError("left-hand side must be an array or scalar reference", tok.line)
        self.expect("=")
        rhs = self.parse_expr()
        self.end_statement()
        return Assign(lhs=lhs, rhs=rhs, line=tok.line)

    # -- expressions -----------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_additive()

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.cur.kind in ("+", "-"):
            op = self.advance().text
            right = self.parse_multiplicative()
            left = BinOp(op, left, right)
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.cur.kind in ("*", "/"):
            op = self.advance().text
            right = self.parse_unary()
            left = BinOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.cur.kind == "-":
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if self.cur.kind == "+":
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.cur
        if tok.kind == "NUMBER":
            self.advance()
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                return Num(float(tok.text))
            return Num(int(tok.text))
        if tok.kind == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind == "NAME":
            name = self.advance().text
            if self.check("("):
                self.advance()
                args: list[Expr] = [self.parse_expr()]
                while self.accept(","):
                    args.append(self.parse_expr())
                self.expect(")")
                if name in self.arrays:
                    decl = self.arrays[name]
                    if len(args) != decl.rank:
                        raise ParseError(
                            f"array {name!r} has rank {decl.rank}, got {len(args)} subscripts",
                            tok.line,
                        )
                    subs = tuple(self.expr_to_affine(a, where=f"subscript of {name}") for a in args)
                    return ArrayRef(name, subs)
                if name.lower() in INTRINSICS:
                    return Call(name.lower(), tuple(args))
                raise ParseError(f"{name!r} is not a declared array or intrinsic", tok.line)
            return ScalarRef(name)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.column)

    # -- affine conversion ------------------------------------------------
    def parse_affine(self) -> Affine:
        tok = self.cur
        expr = self.parse_expr()
        return self.expr_to_affine(expr, where=f"near line {tok.line}")

    def expr_to_affine(self, expr: Expr, where: str) -> Affine:
        try:
            return expr_to_affine(expr)
        except AffineError as exc:
            raise AffineError(f"{exc} ({where})") from None


def expr_to_affine(expr: Expr) -> Affine:
    """Convert an expression tree to an :class:`Affine`, or raise."""
    if isinstance(expr, Num):
        if isinstance(expr.value, float) and not expr.value.is_integer():
            raise AffineError(f"non-integer literal {expr.value!r} in affine context")
        return Affine.constant(int(expr.value))
    if isinstance(expr, ScalarRef):
        return Affine.var(expr.name)
    if isinstance(expr, UnaryOp):
        inner = expr_to_affine(expr.operand)
        return -inner if expr.op == "-" else inner
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return expr_to_affine(expr.left) + expr_to_affine(expr.right)
        if expr.op == "-":
            return expr_to_affine(expr.left) - expr_to_affine(expr.right)
        if expr.op == "*":
            left = expr_to_affine(expr.left)
            right = expr_to_affine(expr.right)
            if left.is_constant:
                return right * left.const
            if right.is_constant:
                return left * right.const
            raise AffineError(f"product of two non-constants is not affine: {expr}")
        raise AffineError(f"operator {expr.op!r} not allowed in affine context: {expr}")
    raise AffineError(f"expression is not affine: {expr}")


def parse_program(source: str) -> Program:
    """Parse DSL *source* text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse()
