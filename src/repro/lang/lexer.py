"""Tokenizer for the Do-loop DSL.

Syntax is a structured Fortran dialect:

* keywords (case-insensitive): PROGRAM, PARAM, ARRAY, SCALAR, DO, END,
  ENDDO;
* comments: ``{* ... *}`` (possibly multi-line) and ``!`` to end of line;
* one statement per line, continuation not supported (the paper's programs
  do not need it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset(
    {
        "PROGRAM", "PARAM", "ARRAY", "SCALAR", "DO", "END", "ENDDO",
        "DISTRIBUTE", "ALIGN", "WITH",
    }
)

_SINGLE = frozenset("+-*/(),=")


@dataclass(frozen=True)
class Token:
    kind: str  # NAME, NUMBER, KEYWORD, NEWLINE, EOF, or a literal char
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            if tokens and tokens[-1].kind != "NEWLINE":
                tokens.append(Token("NEWLINE", "\n", line, col))
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "!":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "{" and source.startswith("{*", i):
            end = source.find("*}", i + 2)
            if end < 0:
                raise error("unterminated comment {* ...")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = col
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
                col += 1
            # exponent part, e.g. 1.0e-6
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    while j < n and source[j].isdigit():
                        j += 1
                    col += j - i
                    i = j
            text = source[start:i]
            if text.count(".") > 1:
                raise error(f"malformed number {text!r}")
            tokens.append(Token("NUMBER", text, line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            text = source[start:i]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, start_col))
            else:
                tokens.append(Token("NAME", text, line, start_col))
            continue
        if ch in _SINGLE:
            tokens.append(Token(ch, ch, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")

    if tokens and tokens[-1].kind != "NEWLINE":
        tokens.append(Token("NEWLINE", "\n", line, col))
    tokens.append(Token("EOF", "", line, col))
    return tokens
