"""Integer affine expressions over named symbols.

Array subscripts in the Do-loop DSL are required to be *affine* in the
enclosing loop indices and program parameters — this is the class of
subscripts the paper's analyses (component affinity, dependence vectors,
index-processor mappings) are defined on.

An :class:`Affine` is ``sum(coeff[v] * v) + const`` with integer
coefficients.  Instances are immutable and hashable.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Union

from repro.errors import AffineError

Number = Union[int, float]


class Affine:
    """An immutable integer affine form ``c0 + sum(ci * vi)``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, int] | None = None, const: int = 0) -> None:
        clean: dict[str, int] = {}
        for var, coeff in (coeffs or {}).items():
            if not isinstance(coeff, int):
                raise AffineError(f"coefficient of {var!r} must be int, got {coeff!r}")
            if coeff != 0:
                clean[var] = coeff
        if not isinstance(const, int):
            raise AffineError(f"constant term must be int, got {const!r}")
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", const)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Affine is immutable")

    # Immutability makes copies identities; pickling rebuilds from parts.
    def __copy__(self) -> "Affine":
        return self

    def __deepcopy__(self, memo: dict) -> "Affine":
        return self

    def __reduce__(self):
        return (Affine, (dict(self.coeffs), self.const))

    # -- constructors -------------------------------------------------
    @staticmethod
    def var(name: str) -> "Affine":
        """The affine form of a single variable."""
        return Affine({name: 1}, 0)

    @staticmethod
    def constant(value: int) -> "Affine":
        """The affine form of an integer constant."""
        return Affine({}, value)

    # -- queries ------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def coeff(self, var: str) -> int:
        """Coefficient of *var* (0 when absent)."""
        return self.coeffs.get(var, 0)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under an integer environment; all variables must bind."""
        total = self.const
        for var, coeff in self.coeffs.items():
            if var not in env:
                raise AffineError(f"unbound variable {var!r} in {self}")
            total += coeff * env[var]
        return total

    def substitute(self, env: Mapping[str, "Affine | int"]) -> "Affine":
        """Substitute variables by affine forms (or ints), leaving others."""
        result = Affine.constant(self.const)
        for var, coeff in self.coeffs.items():
            repl = env.get(var)
            if repl is None:
                result = result + Affine({var: coeff})
            elif isinstance(repl, int):
                result = result + Affine.constant(coeff * repl)
            else:
                result = result + repl * coeff
        return result

    # -- arithmetic ---------------------------------------------------
    def _combine(self, other: "Affine", sign: int) -> "Affine":
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + sign * coeff
        return Affine(coeffs, self.const + sign * other.const)

    def __add__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self._combine(other, +1)

    __radd__ = __add__

    def __sub__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self._combine(other, -1)

    def __rsub__(self, other: int) -> "Affine":
        return Affine.constant(other) - self

    def __mul__(self, factor: int) -> "Affine":
        if not isinstance(factor, int):
            return NotImplemented
        return Affine({v: c * factor for v, c in self.coeffs.items()}, self.const * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "Affine":
        return self * -1

    # -- identity -----------------------------------------------------
    def _key(self) -> tuple:
        return (tuple(sorted(self.coeffs.items())), self.const)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.is_constant and self.const == other
        if not isinstance(other, Affine):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"Affine({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for var in sorted(self.coeffs):
            coeff = self.coeffs[var]
            if not parts:
                if coeff == 1:
                    parts.append(var)
                elif coeff == -1:
                    parts.append(f"-{var}")
                else:
                    parts.append(f"{coeff}*{var}")
            else:
                sign = "+" if coeff > 0 else "-"
                mag = abs(coeff)
                term = var if mag == 1 else f"{mag}*{var}"
                parts.append(f" {sign} {term}")
        if self.const or not parts:
            if not parts:
                parts.append(str(self.const))
            else:
                sign = "+" if self.const > 0 else "-"
                parts.append(f" {sign} {abs(self.const)}")
        return "".join(parts)


def difference_is_constant(a: Affine, b: Affine) -> int | None:
    """Return ``a - b`` as an int when the difference is constant, else None.

    This is the paper's affinity-relation test (§3): two array dimensions
    have an affinity relation when the difference of their subscripts is a
    constant value.
    """
    diff = a - b
    return diff.const if diff.is_constant else None
