"""Cannon's matrix multiplication on skewed 2-D distributions (§2.1).

The paper's rotated distribution functions (Fig 1 (b), (c)) exist to
express Cannon's initial alignment *as a data layout*: when A is stored
under ``f(i,j) = (z1, (z2 - z1) mod q)`` and B under
``((z1 - z2) mod q, z2)``, the algorithm needs no skewing phase at all —
just ``q`` multiply-shift steps.

:func:`cannon_matmul` runs on a ``q x q`` grid (row-major ranks); each
processor starts from the full matrices and slices the block the skewed
layout assigns it, exactly like loading a pre-distributed file.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.machine.collectives import shift
from repro.machine.engine import Proc


def cannon_matmul(
    p: Proc, B: np.ndarray, C: np.ndarray, q: int
) -> Generator:
    """Compute ``A = B x C`` by Cannon's algorithm on a ``q x q`` torus.

    Returns each rank's local block of A (block row-major assembly is the
    caller's job; see :func:`assemble_blocks`).
    """
    if q * q != p.nprocs:
        raise MachineError(f"Cannon needs q^2 processors, got {p.nprocs} for q={q}")
    n = B.shape[0]
    if n % q != 0:
        raise MachineError(f"Cannon needs q | n, got n={n}, q={q}")
    nb = n // q
    p1, p2 = divmod(p.rank, q)

    def blk(M: np.ndarray, i: int, j: int) -> np.ndarray:
        return np.ascontiguousarray(M[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb])

    # Skewed initial layout (the paper's rotated distribution functions):
    # processor (p1, p2) holds B block (p1, p1+p2) and C block (p1+p2, p2).
    B_loc = blk(B, p1, (p1 + p2) % q).astype(np.float64)
    C_loc = blk(C, (p1 + p2) % q, p2).astype(np.float64)
    A_loc = np.zeros((nb, nb))

    row_group = tuple(p1 * q + c for c in range(q))
    col_group = tuple(r * q + p2 for r in range(q))

    with p.scoped("cannon"):
        for step in range(q):
            A_loc += B_loc @ C_loc
            p.compute(2 * nb * nb * nb, label=f"block gemm step {step + 1}")
            if q > 1 and step < q - 1:
                # Shift B one position left along the grid row, C one position
                # up along the grid column (paper Shift primitive).
                B_loc = yield from shift(p, B_loc, row_group, delta=-1, tag=80)
                C_loc = yield from shift(p, C_loc, col_group, delta=-1, tag=81)
    return A_loc


def assemble_blocks(values: list[np.ndarray], q: int) -> np.ndarray:
    """Assemble per-rank blocks (row-major ranks) into the full matrix."""
    rows = []
    for p1 in range(q):
        rows.append(np.hstack([values[p1 * q + p2] for p2 in range(q)]))
    return np.vstack(rows)
