"""Kernels restructured for communication/computation overlap (§5).

Each overlapped kernel here has a *matched blocking twin* that performs
the identical floating-point operations in the identical order, so the
pair is bit-identical numerically and differs only in communication
structure:

* :func:`heat_stencil_blocking` / :func:`heat_stencil_overlap` — 1-D
  three-point heat sweep, block-distributed with one-element halos.
  The overlapped twin posts its halo ``irecv``/``isend`` first, updates
  the *interior* (which needs no halo) while the transfers fly, then
  waits and updates the two boundary elements.
* :func:`jacobi_ring_blocking` / :func:`jacobi_ring_overlap` — Jacobi
  with the X vector block-distributed and circulated around a ring
  (systolic GEMV): each of the ``N`` steps sends the in-hand X block to
  the right while accumulating its contribution locally.  The
  overlapped twin's per-block GEMV hides the block transfer.  Both
  twins accumulate the per-block partial products in the same ring
  order, so their floating-point sums are identical.
* :func:`sor_pipelined_overlap` — the Fig 6 SOR ring pipeline with the
  incoming partial sum pre-posted before the local partial-product
  computation, hiding each hop's wire time behind the ``2 m/N`` flops
  of the local contribution.  Numerically identical to
  :func:`repro.kernels.sor.sor_pipelined`.

Timing contract (the ``report.py --overlap`` reconciliation): a posted
transfer costs ``alpha`` at each endpoint with the full ``alpha + w tc``
on the wire — exactly the ``overlap=True`` split of the machine model —
so running the *blocking* twin on ``replace(model, overlap=True)``
predicts the overlapped twin's makespan (exactly for the ring Jacobi,
whose twins have identical event sequences; within a documented band
for the stencil, whose interior/boundary split reorders compute).
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.kernels.jacobi import _row_block
from repro.machine.engine import Proc
from repro.machine.nonblocking import NBComm

#: Tags of the halo exchange (left-going / right-going) and ring traffic.
_TAG_TO_LEFT = 90
_TAG_TO_RIGHT = 91
_TAG_RING = 70
_TAG_SOR = 60


def _heat_update(pad: np.ndarray, coeff: float, j0: int, j1: int) -> np.ndarray:
    """New values of local elements ``[j0, j1)`` of a 1-halo pad.

    One vectorized expression shared by both twins and by both the
    interior and boundary slices of the overlapped twin — NumPy
    elementwise ops are elementwise-identical under slicing, which is
    what makes the twins bit-identical.
    """
    center = pad[1 + j0 : 1 + j1]
    left = pad[j0 : j1]
    right = pad[2 + j0 : 2 + j1]
    return coeff * (left + right) + (1.0 - 2.0 * coeff) * center


#: Flops per updated element of :func:`_heat_update` (add, mul, mul, add).
_HEAT_FLOPS = 4


def _heat_setup(p: Proc, u0: np.ndarray) -> tuple:
    m = len(u0)
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"heat stencil needs N | m, got m={m}, N={n}")
    cnt = m // n
    if n > 1 and cnt < 2:
        raise MachineError(
            f"heat stencil needs blocks of >= 2 elements, got m/N={cnt}"
        )
    lo = p.rank * cnt
    pad = np.zeros(cnt + 2)
    pad[1 : 1 + cnt] = np.asarray(u0, dtype=np.float64)[lo : lo + cnt]
    left = p.rank - 1 if p.rank > 0 else None
    right = p.rank + 1 if p.rank < n - 1 else None
    # Dirichlet ends: global elements 0 and m-1 are never updated.
    j0 = 1 if left is None else 0
    j1 = cnt - 1 if right is None else cnt
    return cnt, pad, left, right, j0, j1


def heat_stencil_blocking(
    p: Proc, u0: np.ndarray, steps: int, coeff: float = 0.25
) -> Generator:
    """Three-point heat sweep, blocking halo exchange (reference twin)."""
    cnt, pad, left, right, j0, j1 = _heat_setup(p, u0)
    for _ in range(steps):
        if left is not None:
            p.send(left, pad[1], words=1, tag=_TAG_TO_LEFT)
        if right is not None:
            p.send(right, pad[cnt], words=1, tag=_TAG_TO_RIGHT)
        if left is not None:
            pad[0] = yield from p.recv(left, tag=_TAG_TO_RIGHT)
        if right is not None:
            pad[cnt + 1] = yield from p.recv(right, tag=_TAG_TO_LEFT)
        new = _heat_update(pad, coeff, j0, j1)
        p.compute(_HEAT_FLOPS * (j1 - j0), label="sweep")
        pad[1 + j0 : 1 + j1] = new
    return pad[1 : 1 + cnt].copy()


def heat_stencil_overlap(
    p: Proc, u0: np.ndarray, steps: int, coeff: float = 0.25
) -> Generator:
    """Three-point heat sweep with halo transfers hidden behind the interior.

    Per step: post ``irecv`` for both halos, ``isend`` both boundary
    elements, update the interior (no halo needed), ``wait`` the
    receives, then update the one boundary element per side.
    """
    cnt, pad, left, right, j0, j1 = _heat_setup(p, u0)
    comm = NBComm(p)
    for _ in range(steps):
        rl = comm.irecv(left, tag=_TAG_TO_RIGHT) if left is not None else None
        rr = comm.irecv(right, tag=_TAG_TO_LEFT) if right is not None else None
        if left is not None:
            comm.isend(left, pad[1], words=1, tag=_TAG_TO_LEFT)
        if right is not None:
            comm.isend(right, pad[cnt], words=1, tag=_TAG_TO_RIGHT)
        # Interior: local elements whose 3-point window stays inside the
        # block.  Element j reads pad[j] .. pad[j+2], so j >= 1 avoids
        # the left halo and j <= cnt - 2 avoids the right one.
        i0 = max(j0, 1)
        i1 = min(j1, cnt - 1)
        interior = _heat_update(pad, coeff, i0, i1)
        p.compute(_HEAT_FLOPS * (i1 - i0), label="interior")
        if rl is not None:
            pad[0] = yield from rl.wait()
        if rr is not None:
            pad[cnt + 1] = yield from rr.wait()
        edges = []
        if j0 < i0:  # left boundary element (needs the left halo)
            edges.append((j0, _heat_update(pad, coeff, j0, i0)))
        if i1 < j1:  # right boundary element (needs the right halo)
            edges.append((i1, _heat_update(pad, coeff, i1, j1)))
        pad[1 + i0 : 1 + i1] = interior
        for jb, vals in edges:
            pad[1 + jb : 1 + jb + len(vals)] = vals
        if edges:
            p.compute(
                _HEAT_FLOPS * sum(len(vals) for _, vals in edges),
                label="boundary",
            )
    return pad[1 : 1 + cnt].copy()


def _ring_setup(p: Proc, A: np.ndarray, b: np.ndarray, x0: np.ndarray) -> tuple:
    m = len(b)
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"ring Jacobi needs N | m, got m={m}, N={n}")
    lo, hi = _row_block(m, n, p.rank)
    A_loc = np.ascontiguousarray(A[lo:hi, :])
    b_loc = b[lo:hi].copy()
    diag_loc = np.diag(A)[lo:hi].copy()
    x_loc = np.array(x0[lo:hi], dtype=np.float64)
    return m, n, lo, hi, A_loc, b_loc, diag_loc, x_loc


def jacobi_ring_blocking(
    p: Proc, A: np.ndarray, b: np.ndarray, x0: np.ndarray, iterations: int
) -> Generator:
    """Row-block Jacobi with the X blocks circulated on a ring (twin).

    Unlike :func:`repro.kernels.jacobi.jacobi_rowdist` (allgather per
    iteration), X stays distributed: each iteration performs ``N``
    systolic steps, accumulating ``A[:, blk] @ x_blk`` while the block
    in hand moves one hop right.  The accumulation visits blocks in ring
    order ``me, me-1, ..., me-N+1`` — the same order as the overlapped
    twin, so the two are bit-identical.
    """
    m, n, lo, hi, A_loc, b_loc, diag_loc, x_loc = _ring_setup(p, A, b, x0)
    rows = hi - lo
    right = (p.rank + 1) % n
    left = (p.rank - 1) % n
    for _ in range(iterations):
        v = np.zeros(rows)
        cur = x_loc
        cur_owner = p.rank
        for s in range(n):
            if n > 1 and s < n - 1:
                p.send(right, cur, tag=_TAG_RING)
            blo, bhi = _row_block(m, n, cur_owner)
            v += A_loc[:, blo:bhi] @ cur
            p.compute(2 * rows * (bhi - blo), label="gemv-block")
            if n > 1 and s < n - 1:
                cur = yield from p.recv(left, tag=_TAG_RING)
                cur_owner = (cur_owner - 1) % n
        x_loc = x_loc + (b_loc - v) / diag_loc
        p.compute(3 * rows, label="update")
    return x_loc


def jacobi_ring_overlap(
    p: Proc, A: np.ndarray, b: np.ndarray, x0: np.ndarray, iterations: int
) -> Generator:
    """Ring Jacobi with each block transfer hidden behind its GEMV.

    Per systolic step: post the next block's ``irecv``, ``isend`` the
    block in hand, accumulate its GEMV contribution (hiding the wire
    time), then ``wait``.  Identical accumulation order to
    :func:`jacobi_ring_blocking` — bit-identical results.
    """
    m, n, lo, hi, A_loc, b_loc, diag_loc, x_loc = _ring_setup(p, A, b, x0)
    rows = hi - lo
    right = (p.rank + 1) % n
    left = (p.rank - 1) % n
    comm = NBComm(p)
    for _ in range(iterations):
        v = np.zeros(rows)
        cur = x_loc
        cur_owner = p.rank
        for s in range(n):
            req = None
            if n > 1 and s < n - 1:
                req = comm.irecv(left, tag=_TAG_RING)
                comm.isend(right, cur, tag=_TAG_RING)
            blo, bhi = _row_block(m, n, cur_owner)
            v += A_loc[:, blo:bhi] @ cur
            p.compute(2 * rows * (bhi - blo), label="gemv-block")
            if req is not None:
                cur = yield from req.wait()
                cur_owner = (cur_owner - 1) % n
        x_loc = x_loc + (b_loc - v) / diag_loc
        p.compute(3 * rows, label="update")
    return x_loc


def sor_pipelined_overlap(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    omega: float,
    iterations: int,
) -> Generator:
    """Fig 6 pipelined SOR with pre-posted ring receives.

    The four-phase ring schedule of
    :func:`repro.kernels.sor._pipelined_sweep` is kept verbatim; the
    only change is that each hop's incoming partial sum is ``irecv``-ed
    *before* the local partial product is computed, so the hop's wire
    time hides behind the ``2 m/N`` multiply-adds, and the outgoing sum
    is posted rather than injected synchronously.  Arithmetic order is
    unchanged — results are bit-identical to the blocking pipeline.
    """
    m = len(b)
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"pipelined SOR needs N | m, got m={m}, N={n}")
    block = m // n
    before = p.rank * block
    A_loc = np.ascontiguousarray(A[:, before : before + block])
    b_loc = b[before : before + block].copy()
    diag_loc = np.diag(A)[before : before + block].copy()
    x_loc = np.array(x0[before : before + block], dtype=np.float64)
    right = (p.rank + 1) % n
    left = (p.rank - 1) % n
    comm = NBComm(p)

    for _ in range(iterations):
        if n == 1:
            for ii in range(block):
                v = float(A_loc[ii, :] @ x_loc)
                p.compute(2 * block + 4, label=f"row {ii + 1}")
                x_loc[ii] += omega * (b_loc[ii] - v) / diag_loc[ii]
            continue
        with p.scoped("sor-pipeline"):
            # Phase 1: rows owned by earlier processors (old X needed).
            for i in range(before):
                req = comm.irecv(left, tag=_TAG_SOR)
                temp = float(A_loc[i, :] @ x_loc)
                p.compute(2 * block, label=f"row {i + 1} partial")
                v = yield from req.wait()
                v += temp
                comm.isend(right, v, words=1, tag=_TAG_SOR)
            # Phase 2: start my own rows (columns j >= i, old X).
            for ii in range(block):
                cur = before + ii
                v_start = float(A_loc[cur, ii:] @ x_loc[ii:])
                p.compute(2 * (block - ii), label=f"row {cur + 1} start")
                comm.isend(right, v_start, words=1, tag=_TAG_SOR)
            # Phase 3: my rows return; add updated in-block predecessors.
            for ii in range(block):
                cur = before + ii
                req = comm.irecv(left, tag=_TAG_SOR)
                temp = float(A_loc[cur, :ii] @ x_loc[:ii])
                p.compute(2 * ii, label=f"row {cur + 1} finish")
                v = yield from req.wait()
                v += temp
                x_loc[ii] += omega * (b_loc[ii] - v) / diag_loc[ii]
                p.compute(4, label=f"X({cur + 1})")
            # Phase 4: rows owned by later processors (new X needed).
            for i in range(before + block, m):
                req = comm.irecv(left, tag=_TAG_SOR)
                temp = float(A_loc[i, :] @ x_loc)
                p.compute(2 * block, label=f"row {i + 1} partial")
                v = yield from req.wait()
                v += temp
                comm.isend(right, v, words=1, tag=_TAG_SOR)

    return x_loc
