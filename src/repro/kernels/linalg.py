"""Sequential reference implementations (the paper's source listings).

These are the ground truth every SPMD kernel is checked against.  They
follow the paper's loop structures (including the explicit ``V``
accumulator arrays) but are vectorized with NumPy where the loop order
permits, per the HPC-Python guides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def jacobi_seq(
    A: np.ndarray, b: np.ndarray, x0: np.ndarray, iterations: int
) -> np.ndarray:
    """Jacobi iteration exactly as the §3 listing.

    ``V = A @ X; X = X + (B - V) / diag(A)`` repeated *iterations* times.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x = np.array(x0, dtype=np.float64)
    diag = np.diag(A).copy()
    if np.any(diag == 0):
        raise ReproError("Jacobi requires a nonzero diagonal")
    for _ in range(iterations):
        v = A @ x
        x = x + (b - v) / diag
    return x


def sor_seq(
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    omega: float,
    iterations: int,
) -> np.ndarray:
    """SOR exactly as the §5 listing (Gauss-Seidel order with relaxation).

    At step ``i``, ``V(i) = sum_j A(i,j) X(j)`` uses the *current* X —
    already-updated values for ``j < i``, old values for ``j >= i``.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x = np.array(x0, dtype=np.float64)
    m = len(x)
    diag = np.diag(A).copy()
    if np.any(diag == 0):
        raise ReproError("SOR requires a nonzero diagonal")
    for _ in range(iterations):
        for i in range(m):
            v = A[i, :] @ x
            x[i] = x[i] + omega * (b[i] - v) / diag[i]
    return x


def gauss_seq(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gauss elimination + back substitution as the §6 listing.

    No pivoting (the paper's algorithm); the caller must supply a system
    whose leading minors are nonsingular (e.g. diagonally dominant).
    Returns ``x`` with ``A x = b``.
    """
    U = np.array(A, dtype=np.float64)
    y = np.array(b, dtype=np.float64)
    m = len(y)
    if U.shape != (m, m):
        raise ReproError(f"A must be {m}x{m}, got {U.shape}")
    # Triangularization (paper lines 2-8).
    for k in range(m - 1):
        pivot = U[k, k]
        if pivot == 0:
            raise ReproError(f"zero pivot at k={k + 1}; the paper's method does not pivot")
        ell = U[k + 1 :, k] / pivot
        y[k + 1 :] -= ell * y[k]
        U[k + 1 :, k + 1 :] -= np.outer(ell, U[k, k + 1 :])
        U[k + 1 :, k] = 0.0
    # Triangular system U x = y (paper lines 9-17, with the V accumulator).
    x = np.zeros(m)
    v = np.zeros(m)
    for j in range(m - 1, -1, -1):
        x[j] = (y[j] - v[j]) / U[j, j]
        v[:j] += U[:j, j] * x[j]
    return x


def matmul_seq(B: np.ndarray, C: np.ndarray) -> np.ndarray:
    """The §2 three-nested-loop product ``A = B x C``."""
    return np.asarray(B, dtype=np.float64) @ np.asarray(C, dtype=np.float64)


def make_spd_system(
    m: int, seed: int = 0, dominance: float = 2.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random diagonally-dominant system (A, b, x_true).

    Diagonal dominance guarantees Jacobi/SOR convergence and pivot-free
    Gauss elimination stability — the implicit assumption behind the
    paper's kernels.
    """
    if m < 1:
        raise ReproError(f"system size must be >= 1, got {m}")
    rng = np.random.default_rng(seed)
    A = rng.uniform(-1.0, 1.0, size=(m, m))
    A[np.diag_indices(m)] = np.abs(A).sum(axis=1) + dominance
    x_true = rng.uniform(-1.0, 1.0, size=m)
    b = A @ x_true
    return A, b, x_true
