"""Reference and SPMD kernels for the paper's three algorithms (+ Cannon).

Each parallel kernel is an SPMD generator function for
:func:`repro.machine.run_spmd`; numerics are computed with NumPy on local
blocks while simulated time is accounted through ``p.compute`` and the
message costs.  Sequential references live in
:mod:`repro.kernels.linalg`.
"""

from repro.kernels.linalg import (
    gauss_seq,
    jacobi_seq,
    make_spd_system,
    matmul_seq,
    sor_seq,
)
from repro.kernels.jacobi import (
    jacobi_coldist,
    jacobi_grid2d,
    jacobi_rowdist,
    jacobi_rowdist_adaptive,
)
from repro.kernels.overlap import (
    heat_stencil_blocking,
    heat_stencil_overlap,
    jacobi_ring_blocking,
    jacobi_ring_overlap,
    sor_pipelined_overlap,
)
from repro.kernels.sor import sor_naive, sor_pipelined
from repro.kernels.gauss import gauss_broadcast, gauss_pipelined, gauss_pivoted
from repro.kernels.cannon import cannon_matmul
from repro.kernels.cg import cg_parallel, cg_seq
from repro.kernels.matmul3d import matmul_3d
from repro.kernels.multiphase import (
    multiphase_gemv,
    multiphase_gemv_seq,
    multiphase_sections,
)
from repro.kernels.redblack import redblack_sor, redblack_sor_seq
from repro.kernels.resilient import resilient_cg, resilient_jacobi, resilient_sor
from repro.kernels.sparse_cg import sparse_cg_parallel, sparse_cg_seq
from repro.kernels.spmv import spmv_parallel, spmv_seq

__all__ = [
    "jacobi_seq",
    "sor_seq",
    "gauss_seq",
    "matmul_seq",
    "make_spd_system",
    "jacobi_rowdist",
    "jacobi_rowdist_adaptive",
    "jacobi_coldist",
    "jacobi_grid2d",
    "sor_naive",
    "sor_pipelined",
    "sor_pipelined_overlap",
    "heat_stencil_blocking",
    "heat_stencil_overlap",
    "jacobi_ring_blocking",
    "jacobi_ring_overlap",
    "gauss_broadcast",
    "gauss_pipelined",
    "gauss_pivoted",
    "cannon_matmul",
    "matmul_3d",
    "cg_seq",
    "cg_parallel",
    "multiphase_gemv",
    "multiphase_gemv_seq",
    "multiphase_sections",
    "redblack_sor",
    "redblack_sor_seq",
    "resilient_jacobi",
    "resilient_sor",
    "resilient_cg",
    "spmv_seq",
    "spmv_parallel",
    "sparse_cg_seq",
    "sparse_cg_parallel",
]
