"""SPMD SOR kernels (paper §5).

Both kernels use the §5 layout (Table 4): the ``j``-th *column* of A and
the ``j``-th elements of B and X live on the block owner of ``j``; the V
accumulator is transient.

* :func:`sor_naive` — the paper's naive schedule: for every row ``i``,
  each processor computes a partial inner product over its column block,
  a Reduction combines them, and the owner of ``X(i)`` updates it.  Per
  iteration: ``(2 m^2/N + 4 m) tf + ~m (log N + 1) tc``.

* :func:`sor_pipelined` — the Fig 5/Fig 6 software pipeline on a ring:
  row ``i``'s partial sum is started by the owner of ``X(i)`` (columns
  ``j >= i`` of its block, still-old values), circulates the ring where
  every processor adds its column-block contribution with its *current*
  X values, and returns to the owner, which adds the contributions of
  already-updated in-block elements and updates ``X(i)``.  The pipeline
  timing makes the Gauss-Seidel update order exact, and the per-iteration
  time drops to ``<= (m + N)(2 (m/N) tf + 2 tc)``.

Numerically both equal :func:`repro.kernels.linalg.sor_seq` to roundoff.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.machine.collectives import PLAIN_TRANSPORT, Transport, allgather, reduce
from repro.machine.engine import Proc
from repro.kernels.jacobi import _row_block


def sor_naive(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    omega: float,
    iterations: int,
) -> Generator:
    """Naive SOR: Reduction + owner update per row (§5's first schedule)."""
    m = len(b)
    n = p.nprocs
    lo, hi = _row_block(m, n, p.rank)
    A_loc = np.ascontiguousarray(A[:, lo:hi])
    b_loc = b[lo:hi].copy()
    diag = np.diag(A).copy()
    x_loc = np.array(x0[lo:hi], dtype=np.float64)
    group = tuple(range(n))
    cols = hi - lo

    def owner(i: int) -> int:
        size = -(-m // n)
        return i // size

    for _ in range(iterations):
        for i in range(m):
            partial = float(A_loc[i, :] @ x_loc)
            p.compute(2 * cols, label=f"partial V({i + 1})")
            # Reduction to rank 0 (binomial root), then Transfer to the
            # owner of X(i) — the paper's Reduction(1, N) + Transfer(1).
            total = yield from reduce(p, partial, root=0, group=group)
            own = owner(i)
            if p.rank == 0 and own != 0:
                p.send(own, total, tag=50)
            if p.rank == own:
                if own != 0:
                    total = yield from p.recv(0, tag=50)
                x_loc[i - lo] += omega * (b_loc[i - lo] - total) / diag[i]
                p.compute(4, label=f"update X({i + 1})")
    blocks = yield from allgather(p, x_loc, group)
    return np.concatenate([np.atleast_1d(blk) for blk in blocks])


def _pipelined_sweep(
    p: Proc,
    A_loc: np.ndarray,
    b_loc: np.ndarray,
    diag_loc: np.ndarray,
    x_loc: np.ndarray,
    omega: float,
    m: int,
    block: int,
    tx: Transport,
    tag: int = 60,
) -> Generator:
    """One pipelined Gauss-Seidel sweep (Fig 6 body); mutates ``x_loc``.

    Factored out so the resilient kernel
    (:func:`repro.kernels.resilient.resilient_sor`) can reuse the exact
    ring schedule over a reliable transport and checkpoint between
    sweeps.
    """
    n = p.nprocs
    me = p.rank
    before = me * block
    right = (me + 1) % n
    left = (me - 1) % n
    if n == 1:
        # Degenerate ring: plain sequential sweep.
        for ii in range(block):
            v = float(A_loc[ii, :] @ x_loc)
            p.compute(2 * block + 4, label=f"row {ii + 1}")
            x_loc[ii] += omega * (b_loc[ii] - v) / diag_loc[ii]
        return
    with p.scoped("sor-pipeline"):
        # Phase 1 (Fig 6 lines 7-15): rows owned by earlier processors.
        # Their partials arrive from the left; my X block is still old,
        # which is exactly what rows i < before need from columns j > i.
        for i in range(before):
            temp = float(A_loc[i, :] @ x_loc)
            p.compute(2 * block, label=f"row {i + 1} partial")
            v = yield from tx.recv(p, left, tag=tag)
            v += temp
            yield from tx.send(p, right, v, tag=tag)
        # Phase 2 (lines 16-23): start my own rows with columns j >= i.
        for ii in range(block):
            cur = before + ii
            v_start = float(A_loc[cur, ii:] @ x_loc[ii:])
            p.compute(2 * (block - ii), label=f"row {cur + 1} start")
            yield from tx.send(p, right, v_start, tag=tag)
        # Phase 3 (lines 24-34): my rows come back around the ring;
        # add contributions of already-updated in-block predecessors,
        # then update X.
        for ii in range(block):
            cur = before + ii
            temp = float(A_loc[cur, :ii] @ x_loc[:ii])
            p.compute(2 * ii, label=f"row {cur + 1} finish")
            v = yield from tx.recv(p, left, tag=tag)
            v += temp
            x_loc[ii] += omega * (b_loc[ii] - v) / diag_loc[ii]
            p.compute(4, label=f"X({cur + 1})")
        # Phase 4 (lines 35-43): rows owned by later processors; my X
        # block is now new, which rows i > before+block need (j < i).
        for i in range(before + block, m):
            temp = float(A_loc[i, :] @ x_loc)
            p.compute(2 * block, label=f"row {i + 1} partial")
            v = yield from tx.recv(p, left, tag=tag)
            v += temp
            yield from tx.send(p, right, v, tag=tag)


def sor_pipelined(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    omega: float,
    iterations: int,
    transport: Transport | None = None,
) -> Generator:
    """Pipelined SOR on a ring — the generated program of Fig 6.

    Requires ``m`` divisible by the processor count (as the paper's
    ``block = m/N`` does).
    """
    tx = transport or PLAIN_TRANSPORT
    m = len(b)
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"pipelined SOR needs N | m, got m={m}, N={n}")
    block = m // n
    before = p.rank * block

    # Table 4 layout: my column block of A, my elements of B and X.
    A_loc = np.ascontiguousarray(A[:, before : before + block])
    b_loc = b[before : before + block].copy()
    diag_loc = np.diag(A)[before : before + block].copy()
    x_loc = np.array(x0[before : before + block], dtype=np.float64)

    for _ in range(iterations):
        yield from _pipelined_sweep(
            p, A_loc, b_loc, diag_loc, x_loc, omega, m, block, tx
        )

    group = tuple(range(n))
    blocks = yield from allgather(p, x_loc, group, transport=transport)
    return np.concatenate([np.atleast_1d(blk) for blk in blocks])
