"""Conjugate gradient on the distributed sparse operator.

The dense :mod:`repro.kernels.cg` re-replicates the full search
direction with an allgather every iteration — O(n) words per rank per
sweep regardless of structure.  Here the matvec goes through the
inspector/executor path instead: each rank gathers only its **halo**
(``schedule.gather_words`` words total per sweep), which is the entire
point of compiling the indirection structure.

Bit-identity contract: a row-partitioned CG cannot reproduce the plain
``r @ r`` of a sequential solver (numpy's dot uses pairwise summation
over the full vector, which does not factor over blocks).  So the
sequential reference :func:`sparse_cg_seq` takes a ``blocks`` parameter:
it computes every inner product as per-block ``np.dot`` partials summed
left to right.  ``blocks=1`` is ordinary CG; ``blocks=P`` is the exact
arithmetic the parallel solver performs (each rank's partial is a local
``np.dot``, allgathered, summed in rank order on every rank) — and the
parallel solver on *P* ranks matches ``sparse_cg_seq(..., blocks=P)``
**bit for bit**, on both engines.  The matvec itself is bit-identical to
the unblocked reference (rows are never split), so ``blocks`` only
perturbs inner products — both references converge to the same answer
within normal CG tolerance, and the tests pin both facts.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.distribution.sparse import SparsePlacement
from repro.errors import ReproError
from repro.machine.collectives import allgather
from repro.machine.engine import Proc
from repro.pipeline.inspector import (
    CommSchedule,
    build_comm_schedule,
    gather_ghosts,
    inspector_exchange,
    spmv_local,
    stamp_sparse,
)
from repro.sparse.csr import CSRMatrix, spmv_reference


def _block_bounds(n: int, blocks: int) -> list[tuple[int, int]]:
    size = -(-n // blocks)
    return [(min(b * size, n), min((b + 1) * size, n)) for b in range(blocks)]


def _blocked_dot(u: np.ndarray, v: np.ndarray, bounds) -> float:
    """Per-block ``np.dot`` partials summed left to right.

    The scalar arithmetic of a distributed inner product: partial dots
    in rank order, accumulated sequentially — reproducible bitwise by
    summing an allgathered partial list the same way.
    """
    acc = 0.0
    for lo, hi in bounds:
        acc += float(np.dot(u[lo:hi], v[lo:hi]))
    return acc


def sparse_cg_seq(
    csr: CSRMatrix,
    b: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int | None = None,
    blocks: int = 1,
) -> tuple[np.ndarray, int]:
    """Single-rank sparse CG reference.

    ``blocks=P`` makes every inner product use the P-rank distributed
    summation order, so the parallel solver on *P* ranks is bit-identical
    to this function; ``blocks=1`` is the ordinary sequential solver.
    """
    n = csr.nrows
    if csr.ncols != n:
        raise ReproError(f"CG needs a square matrix, got {n}x{csr.ncols}")
    b = np.asarray(b, dtype=np.float64)
    max_iterations = max_iterations or 2 * n
    bounds = _block_bounds(n, blocks)
    x = np.zeros(n)
    r = b.copy()
    d = r.copy()
    rs = _blocked_dot(r, r, bounds)
    used = 0
    for _ in range(max_iterations):
        if rs**0.5 <= tol:
            break
        Ad = spmv_reference(csr, d)
        denom = _blocked_dot(d, Ad, bounds)
        if denom <= 0:
            raise ReproError("matrix is not positive definite")
        alpha = rs / denom
        x += alpha * d
        r -= alpha * Ad
        rs_new = _blocked_dot(r, r, bounds)
        d = r + (rs_new / rs) * d
        rs = rs_new
        used += 1
    return x, used


def sparse_cg_parallel(
    p: Proc,
    csr: CSRMatrix,
    b: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int | None = None,
    schedule: CommSchedule | None = None,
    aggregate_words: int = 0,
) -> Generator:
    """Distributed sparse CG; returns ``(x, iterations)`` on every rank.

    The search direction's halo is gathered through the schedule each
    iteration (``sparse-gather`` scope); inner products allgather scalar
    partials and sum them in rank order, matching
    ``sparse_cg_seq(..., blocks=p.nprocs)`` bit for bit.
    """
    n = csr.nrows
    if csr.ncols != n:
        raise ReproError(f"CG needs a square matrix, got {n}x{csr.ncols}")
    placement = SparsePlacement(csr.pattern, p.nprocs)
    builds = reuses = inspector_runs = 0
    if schedule is None:
        local = yield from inspector_exchange(p, placement)
        schedule = build_comm_schedule(placement)
        builds, inspector_runs = 1, 1
    else:
        local = schedule.rank_schedule(p.rank)
        reuses = 1
    b = np.asarray(b, dtype=np.float64)
    max_iterations = max_iterations or 2 * n
    group = tuple(range(p.nprocs))
    rows = local.rows
    data_loc = csr.data[
        csr.pattern.indptr[local.row_lo] : csr.pattern.indptr[local.row_hi]
    ]
    nnz_loc = len(data_loc)

    def ordered_dot(u_loc, v_loc, tag):
        local_partial = float(np.dot(u_loc, v_loc))
        p.compute(2 * rows, label="dot")
        partials = yield from allgather(p, local_partial, group, tag=tag)
        acc = 0.0
        for partial in partials:
            acc += float(partial)
        return acc

    x_loc = np.zeros(rows)
    r_loc = b[local.row_lo : local.row_hi].copy()
    d_loc = r_loc.copy()
    rs = yield from ordered_dot(r_loc, r_loc, 930)

    used = 0
    for _ in range(max_iterations):
        if rs**0.5 <= tol:
            break
        ghosts = yield from gather_ghosts(
            p, local, d_loc, aggregate_words=aggregate_words
        )
        Ad_loc = spmv_local(local, data_loc, d_loc, ghosts)
        p.compute(2 * nnz_loc, label="spmv")
        denom = yield from ordered_dot(d_loc, Ad_loc, 931)
        if denom <= 0:
            raise ReproError("matrix is not positive definite")
        alpha = rs / denom
        x_loc += alpha * d_loc
        r_loc -= alpha * Ad_loc
        p.compute(4 * rows, label="axpy")
        rs_new = yield from ordered_dot(r_loc, r_loc, 932)
        d_loc = r_loc + (rs_new / rs) * d_loc
        p.compute(2 * rows, label="update d")
        rs = rs_new
        used += 1

    blocks = yield from allgather(p, x_loc, group, tag=933)
    if p.rank == 0:
        stamp_sparse(
            p._engine.metrics,
            schedule,
            iterations=used,
            schedule_builds=builds,
            schedule_reuses=reuses,
            inspector_runs=inspector_runs,
        )
    x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
    return x, used
