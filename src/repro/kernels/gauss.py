"""SPMD Gauss elimination kernels (paper §6).

Layout per §6: cyclic row distribution on a ring,
``f(i) = (i - 1) mod N`` for the rows of A/L and the elements of B, V, X
— cyclic because the triangular iteration space would leave contiguous
blocks badly imbalanced.

* :func:`gauss_broadcast` — what "a naive compiler" generates: for every
  pivot ``k`` the owner OneToManyMulticasts the pivot row and ``B(k)``;
  in back substitution every ``X(j)`` is multicast too.

* :func:`gauss_pipelined` — the Fig 8 program: every multicast is
  replaced by a neighbor Shift justified by the dependence information of
  Table 5 (all tokens map to dot-product 0 or 1 under the index-processor
  mapping ``i -> PE (i-1) mod N``).  Pivot rows travel rightward around
  the ring, X values leftward, and processors overlap their update work
  with the propagation — software pipelining.

Both kernels return the solution vector on every rank and agree with
:func:`repro.kernels.linalg.gauss_seq` to roundoff.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.machine.collectives import allreduce, bcast
from repro.machine.engine import Proc


def _row_setup(p: Proc, A: np.ndarray, b: np.ndarray, distribution: str):
    """Local row set under cyclic or contiguous-block distribution.

    The paper chooses *cyclic* (``f(i) = (i-1) mod N``) "because the index
    space includes an oblique pyramid and a triangle" — contiguous blocks
    leave low-rank processors idle once their rows are eliminated.  The
    block option exists for the ablation that demonstrates this.
    """
    m = len(b)
    n = p.nprocs
    if distribution == "cyclic":
        mine = np.arange(p.rank, m, n)
    elif distribution == "block":
        size = -(-m // n)
        mine = np.arange(min(p.rank * size, m), min((p.rank + 1) * size, m))
    else:
        raise ValueError(f"distribution must be cyclic|block, got {distribution!r}")
    A_loc = np.ascontiguousarray(A[mine, :]).astype(np.float64)
    b_loc = b[mine].astype(np.float64).copy()
    return m, n, mine, A_loc, b_loc


def _owner_of(k: int, m: int, n: int, distribution: str) -> int:
    if distribution == "cyclic":
        return k % n
    size = -(-m // n)
    return k // size


def gauss_broadcast(
    p: Proc, A: np.ndarray, b: np.ndarray, distribution: str = "cyclic"
) -> Generator:
    """Naive Gauss elimination: OneToManyMulticast per pivot (§6)."""
    m, n, mine, A_loc, b_loc = _row_setup(p, A, b, distribution)
    group = tuple(range(n))

    # ---- triangularization ------------------------------------------------
    for k in range(m):
        owner = _owner_of(k, m, n, distribution)
        if p.rank == owner:
            li = int(np.searchsorted(mine, k))  # local index of global row k
            packet = (A_loc[li, k:].copy(), float(b_loc[li]))
            packet = yield from bcast(p, packet, root=owner, group=group)
        else:
            packet = yield from bcast(p, None, root=owner, group=group)
        pivot_row, pivot_b = packet
        pivot = pivot_row[0]
        below = mine > k
        if below.any():
            rows = np.nonzero(below)[0]
            ell = A_loc[rows, k] / pivot
            b_loc[rows] -= ell * pivot_b
            A_loc[np.ix_(rows, range(k, m))] -= np.outer(ell, pivot_row)
            p.compute(len(rows) * (2 * (m - k) + 3), label=f"elim k={k + 1}")

    # ---- back substitution --------------------------------------------------
    x = np.zeros(m)
    v_loc = np.zeros(len(mine))
    for j in range(m - 1, -1, -1):
        owner = _owner_of(j, m, n, distribution)
        if p.rank == owner:
            lj = int(np.searchsorted(mine, j))
            xj = (b_loc[lj] - v_loc[lj]) / A_loc[lj, j]
            p.compute(2, label=f"X({j + 1})")
            xj = yield from bcast(p, xj, root=owner, group=group)
        else:
            xj = yield from bcast(p, None, root=owner, group=group)
        x[j] = xj
        above = mine < j
        if above.any():
            rows = np.nonzero(above)[0]
            v_loc[rows] += A_loc[rows, j] * xj
            p.compute(2 * len(rows), label=f"V update j={j + 1}")
    return x


def gauss_pivoted(
    p: Proc, A: np.ndarray, b: np.ndarray, distribution: str = "cyclic"
) -> Generator:
    """Gauss elimination with partial pivoting — an extension.

    The paper's algorithm does not pivot (its kernels are diagonally
    dominant).  This variant adds the standard parallel partial pivoting:
    at every step an Allreduce picks the global maximum-magnitude
    candidate in the pivot column, the owning processors swap rows, and
    the pivot row is multicast.  Note the structural consequence: pivot
    *selection* is a global synchronization per step, so the §6 Shift
    pipeline no longer applies — pivoting and pipelining are at odds,
    which is why the paper's method targets the pivot-free kernels.
    """
    m, n, mine, A_loc, b_loc = _row_setup(p, A, b, distribution)
    group = tuple(range(n))

    def local_index(row: int) -> int:
        return int(np.searchsorted(mine, row))

    def best_pair(x, y):
        return x if (x[0], -x[1]) >= (y[0], -y[1]) else y

    mine_list = mine.copy()  # global row held at each local slot

    for k in range(m):
        # 1. global pivot search over rows >= k (tie: smallest index).
        cand_rows = np.nonzero(mine_list >= k)[0]
        if len(cand_rows):
            vals = np.abs(A_loc[cand_rows, k])
            p.compute(len(cand_rows), label=f"pivot scan k={k + 1}")
            best_local = int(cand_rows[np.argmax(vals)])
            local_best = (float(vals.max()), int(mine_list[best_local]))
        else:
            local_best = (-1.0, m)
        best_val, pivot_row = yield from allreduce(
            p, local_best, group, op=best_pair, tag=73
        )
        if best_val == 0.0:
            raise ZeroDivisionError(f"matrix is singular at step {k + 1}")

        # 2. swap logical rows k and pivot_row (by slot relabeling +
        #    explicit exchange when they live on different processors).
        slot_k = np.nonzero(mine_list == k)[0]
        slot_p = np.nonzero(mine_list == pivot_row)[0]
        if pivot_row != k:
            if len(slot_k) and len(slot_p):
                i1, i2 = int(slot_k[0]), int(slot_p[0])
                A_loc[[i1, i2], :] = A_loc[[i2, i1], :]
                b_loc[[i1, i2]] = b_loc[[i2, i1]]
            elif len(slot_k):
                i1 = int(slot_k[0])
                other = _owner_of(pivot_row, m, n, distribution)
                p.send(other, (A_loc[i1, :].copy(), float(b_loc[i1])), tag=74)
                row, bv = yield from p.recv(other, tag=74)
                A_loc[i1, :] = row
                b_loc[i1] = bv
            elif len(slot_p):
                i2 = int(slot_p[0])
                other = _owner_of(k, m, n, distribution)
                p.send(other, (A_loc[i2, :].copy(), float(b_loc[i2])), tag=74)
                row, bv = yield from p.recv(other, tag=74)
                A_loc[i2, :] = row
                b_loc[i2] = bv

        # 3. multicast the pivot row and eliminate below.
        owner = _owner_of(k, m, n, distribution)
        if p.rank == owner:
            li = local_index(k)
            packet = (A_loc[li, k:].copy(), float(b_loc[li]))
            packet = yield from bcast(p, packet, root=owner, group=group, tag=75)
        else:
            packet = yield from bcast(p, None, root=owner, group=group, tag=75)
        pivot_row_vals, pivot_b = packet
        pivot = pivot_row_vals[0]
        below = mine_list > k
        if below.any():
            rows = np.nonzero(below)[0]
            ell = A_loc[rows, k] / pivot
            b_loc[rows] -= ell * pivot_b
            A_loc[np.ix_(rows, range(k, m))] -= np.outer(ell, pivot_row_vals)
            p.compute(len(rows) * (2 * (m - k) + 3), label=f"elim k={k + 1}")

    # ---- back substitution (multicast, as in gauss_broadcast) ------------
    x = np.zeros(m)
    v_loc = np.zeros(len(mine_list))
    for j in range(m - 1, -1, -1):
        owner = _owner_of(j, m, n, distribution)
        if p.rank == owner:
            lj = local_index(j)
            xj = (b_loc[lj] - v_loc[lj]) / A_loc[lj, j]
            p.compute(2, label=f"X({j + 1})")
            xj = yield from bcast(p, xj, root=owner, group=group, tag=76)
        else:
            xj = yield from bcast(p, None, root=owner, group=group, tag=76)
        x[j] = xj
        above = mine_list < j
        if above.any():
            rows = np.nonzero(above)[0]
            v_loc[rows] += A_loc[rows, j] * xj
            p.compute(2 * len(rows), label=f"V update j={j + 1}")
    return x


def gauss_pipelined(
    p: Proc, A: np.ndarray, b: np.ndarray, distribution: str = "cyclic"
) -> Generator:
    """Pipelined Gauss elimination — the generated program of Fig 8.

    Pivot packets shift rightward; each processor receives a packet,
    forwards it immediately (send before update, so the successor can
    start while we eliminate), then updates its local rows.  The packet
    dies at the owner's left neighbor, having visited every other
    processor exactly once.  Back substitution shifts X values leftward
    the same way.
    """
    m, n, mine, A_loc, b_loc = _row_setup(p, A, b, distribution)
    right = (p.rank + 1) % n
    left = (p.rank - 1) % n

    # ---- triangularization ------------------------------------------------
    for k in range(m):
        owner = _owner_of(k, m, n, distribution)
        if n == 1:
            li = int(np.searchsorted(mine, k))
            pivot_row = A_loc[li, k:].copy()
            pivot_b = float(b_loc[li])
        elif p.rank == owner:
            li = int(np.searchsorted(mine, k))
            pivot_row = A_loc[li, k:].copy()
            pivot_b = float(b_loc[li])
            p.send(right, (pivot_row, pivot_b), tag=70)
        else:
            pivot_row, pivot_b = yield from p.recv(left, tag=70)
            if right != owner:
                p.send(right, (pivot_row, pivot_b), tag=70)
        pivot = pivot_row[0]
        below = mine > k
        if below.any():
            rows = np.nonzero(below)[0]
            ell = A_loc[rows, k] / pivot
            b_loc[rows] -= ell * pivot_b
            A_loc[np.ix_(rows, range(k, m))] -= np.outer(ell, pivot_row)
            p.compute(len(rows) * (2 * (m - k) + 3), label=f"elim k={k + 1}")

    # ---- back substitution: X values pipeline leftward ----------------------
    x = np.zeros(m)
    v_loc = np.zeros(len(mine))
    for j in range(m - 1, -1, -1):
        owner = _owner_of(j, m, n, distribution)
        if n == 1:
            lj = int(np.searchsorted(mine, j))
            xj = float((b_loc[lj] - v_loc[lj]) / A_loc[lj, j])
            p.compute(2, label=f"X({j + 1})")
        elif p.rank == owner:
            lj = int(np.searchsorted(mine, j))
            xj = float((b_loc[lj] - v_loc[lj]) / A_loc[lj, j])
            p.compute(2, label=f"X({j + 1})")
            p.send(left, xj, tag=71)
        else:
            xj = yield from p.recv(right, tag=71)
            if left != owner:
                p.send(left, xj, tag=71)
        x[j] = xj
        above = mine < j
        if above.any():
            rows = np.nonzero(above)[0]
            v_loc[rows] += A_loc[rows, j] * xj
            p.compute(2 * len(rows), label=f"V update j={j + 1}")
    return x
