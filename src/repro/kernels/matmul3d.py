"""3-D matrix multiplication on a ``q x q x q`` grid (paper §2 remark).

"It is possible to use higher dimensional grids for achieving faster
computation.  For example, we can use a 3-D grid for computing the
3-nested-loop matrix multiplication algorithm, although each data array
used in the algorithm is 2-D."

The classic 3-D algorithm: processor ``(i, j, k)`` computes the partial
product of block ``B[i, k]`` with block ``C[k, j]``:

1. ``B[i, k]`` lives on the ``j = k`` processor of its grid line and is
   OneToManyMulticast along grid dimension 2 (j);
2. ``C[k, j]`` likewise along grid dimension 1 (i);
3. one local block GEMM;
4. the partials are combined by a Reduction along grid dimension 3 (k)
   to the ``k = 0`` plane, which holds the result blocks of ``A``.

Per-processor compute matches Cannon at equal processor count
(``2 n^3 / P``), but communication drops from O(sqrt(P)) shift rounds to
O(log P) multicast/reduction rounds of smaller blocks — the paper's
"faster computation" through a higher-dimensional grid.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.machine.collectives import bcast, reduce
from repro.machine.engine import Proc
from repro.machine.topology import Grid3D


def matmul_3d(
    p: Proc, B: np.ndarray, C: np.ndarray, q: int
) -> Generator:
    """Compute ``A = B x C`` on a q^3-processor 3-D grid.

    Returns the local A block on the ``k = 0`` plane (None elsewhere);
    assemble with :func:`assemble_3d`.
    """
    topo = p.topology
    if not isinstance(topo, Grid3D) or (topo.n1, topo.n2, topo.n3) != (q, q, q):
        raise MachineError(f"matmul_3d needs a Grid3D({q}, {q}, {q})")
    n = B.shape[0]
    if n % q != 0:
        raise MachineError(f"matmul_3d needs q | n, got n={n}, q={q}")
    nb = n // q
    p1, p2, p3 = topo.coords(p.rank)

    def blk(M: np.ndarray, bi: int, bj: int) -> np.ndarray:
        return np.ascontiguousarray(
            M[bi * nb : (bi + 1) * nb, bj * nb : (bj + 1) * nb]
        ).astype(np.float64)

    # 1. broadcast B[i, k] along grid dim 2 (the j line), root at j = k.
    j_group = topo.dim_group(p.rank, 2)
    root_j = topo.rank_of(p1, p3, p3)
    payload = blk(B, p1, p3) if p.rank == root_j else None
    B_loc = yield from bcast(p, payload, root=root_j, group=j_group, tag=120)

    # 2. broadcast C[k, j] along grid dim 1 (the i line), root at i = k.
    i_group = topo.dim_group(p.rank, 1)
    root_i = topo.rank_of(p3, p2, p3)
    payload = blk(C, p3, p2) if p.rank == root_i else None
    C_loc = yield from bcast(p, payload, root=root_i, group=i_group, tag=121)

    # 3. local block product.
    partial = B_loc @ C_loc
    p.compute(2 * nb * nb * nb, label="block gemm")

    # 4. reduce partials along grid dim 3 to the k = 0 plane.
    k_group = topo.dim_group(p.rank, 3)
    root_k = topo.rank_of(p1, p2, 0)
    total = yield from reduce(p, partial, root=root_k, group=k_group, tag=122)
    return total if p.rank == root_k else None


def assemble_3d(values: list, topo: Grid3D) -> np.ndarray:
    """Assemble the k=0-plane blocks into the full product matrix."""
    q = topo.n1
    rows = []
    for p1 in range(q):
        row = [values[topo.rank_of(p1, p2, 0)] for p2 in range(q)]
        rows.append(np.hstack(row))
    return np.vstack(rows)
