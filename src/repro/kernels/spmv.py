"""Distributed CSR sparse matrix–vector product (inspector/executor).

Owner-computes on the row partition: each rank stores its CSR row block
and the conformal operand block, gathers its halo through the
precomputed :class:`~repro.pipeline.inspector.CommSchedule`, and applies
its rows locally.  Because rows are never split and the local kernel
sums nonzeros in CSR order, the assembled result is **bit-identical** to
the single-rank :func:`~repro.sparse.csr.spmv_reference` — no tolerance
anywhere in the sparse test suite.

``spmv_parallel(iterations=k)`` replays the executor *k* times against
the same schedule, which is what the inspector-amortization band
measures: analysis cost is paid once, communication per sweep is exactly
``schedule.gather_words``.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.distribution.sparse import SparsePlacement
from repro.machine.collectives import allgather
from repro.machine.engine import Proc
from repro.pipeline.inspector import (
    GATHER_TAG,
    CommSchedule,
    build_comm_schedule,
    gather_ghosts,
    inspector_exchange,
    spmv_local,
    stamp_sparse,
)
from repro.sparse.csr import CSRMatrix, spmv_reference


def spmv_seq(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Sequential oracle — alias of :func:`repro.sparse.csr.spmv_reference`."""
    return spmv_reference(csr, x)


def spmv_parallel(
    p: Proc,
    csr: CSRMatrix,
    x: np.ndarray,
    schedule: CommSchedule | None = None,
    iterations: int = 1,
    aggregate_words: int = 0,
    reinspect_every_iteration: bool = False,
) -> Generator:
    """Row-partitioned SpMV; returns the full ``y = A @ x`` on every rank.

    With *schedule* supplied (e.g. from a warm
    :func:`~repro.pipeline.inspector.cached_comm_schedule`) the inspector
    does not run at all — the executor replays the precomputed gather.
    Without one, the inspector runs **once** on-machine
    (:func:`inspector_exchange`) and the schedule is reused for every
    subsequent iteration.  ``reinspect_every_iteration=True`` is the
    deliberately naive strawman the X13 amortization bench compares
    against: it re-derives the schedule before every sweep, the way an
    uncompiled irregular loop would.
    """
    placement = SparsePlacement(csr.pattern, p.nprocs)
    builds = reuses = inspector_runs = 0
    if schedule is None:
        local = yield from inspector_exchange(p, placement)
        schedule = build_comm_schedule(placement)
        builds, inspector_runs = 1, 1
    else:
        local = schedule.rank_schedule(p.rank)
        reuses = 1
    x = np.asarray(x, dtype=np.float64)
    x_loc = x[local.col_lo : local.col_hi]
    data_loc = csr.data[
        csr.pattern.indptr[local.row_lo] : csr.pattern.indptr[local.row_hi]
    ]
    y_loc = np.zeros(local.rows)
    for _ in range(max(1, iterations)):
        if reinspect_every_iteration:
            local = yield from inspector_exchange(p, placement)
            inspector_runs += 1
        ghosts = yield from gather_ghosts(
            p, local, x_loc, aggregate_words=aggregate_words
        )
        y_loc = spmv_local(local, data_loc, x_loc, ghosts)
        p.compute(2 * len(data_loc), label="spmv")
    blocks = yield from allgather(
        p, y_loc, tuple(range(p.nprocs)), tag=GATHER_TAG + 10
    )
    if p.rank == 0:
        stamp_sparse(
            p._engine.metrics,
            schedule,
            iterations=max(1, iterations),
            schedule_builds=builds,
            schedule_reuses=reuses,
            inspector_runs=inspector_runs,
        )
    return np.concatenate([np.atleast_1d(blk) for blk in blocks])
