"""Fault-tolerant variants of the iterative kernels (Jacobi, SOR, CG).

Each kernel is the corresponding plain kernel run over a
:class:`repro.machine.resilient.ReliableTransport` (acked, retransmitted
point-to-point transfers) with a checkpoint/restore protocol layered on
the iteration loop:

* at kernel start, every rank asks the shared
  :class:`repro.machine.resilient.CheckpointStore` for the newest step
  *all* ranks have saved and, if one exists, restores its state from it
  and resumes the loop there — this is how a program restarted by
  :func:`repro.machine.resilient.run_resilient` after an injected crash
  avoids recomputing from scratch;
* every ``interval`` iterations, right after the sweep's closing
  collective (so ranks are causally within one interval of each other),
  each rank saves its state.

Checkpoint reads happen before any rank's first save of a run (a save
sits behind a collective every rank has entered after reading), so all
ranks always restore the *same* step: the protocol is consistent on both
engine backends without any extra synchronization.

Under a crash-free fault plan the reliable transport delivers exactly
the plain kernel's payload sequence (see ``docs/RESILIENCE.md``), so
these kernels return results bit-identical to their plain counterparts
— the determinism contract the property tests pin down.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError, ReproError
from repro.kernels.jacobi import _row_block
from repro.kernels.sor import _pipelined_sweep
from repro.machine.collectives import allgather, allreduce
from repro.machine.engine import Proc
from repro.machine.resilient import CheckpointStore, ReliableTransport, RetryPolicy


def _restore_point(
    p: Proc, store: CheckpointStore | None
) -> tuple[int | None, object]:
    """The consistent restart step and this rank's state there, if any."""
    if store is None:
        return None, None
    step = store.latest_common_step()
    if step is None:
        return None, None
    state = store.load(p.rank, step)
    p.mark("restore")
    return step, state


def _maybe_save(
    p: Proc,
    store: CheckpointStore | None,
    interval: int,
    step: int,
    total: int,
    state: object,
) -> None:
    """Checkpoint after iteration *step* when the interval says so."""
    if store is None or step % interval != 0 or step >= total:
        return
    store.save(p.rank, step, state)
    p.mark("checkpoint")


def resilient_jacobi(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    iterations: int,
    checkpoints: CheckpointStore | None = None,
    interval: int = 2,
    policy: RetryPolicy | None = None,
) -> Generator:
    """Row-block Jacobi over reliable transfers with checkpoint/restart.

    Same schedule and numerics as
    :func:`repro.kernels.jacobi.jacobi_rowdist`; checkpoints the full X
    vector every *interval* iterations (X is replicated after the
    allgather, so it is the complete loop-carried state).
    """
    tx = ReliableTransport(policy)
    m = len(b)
    n = p.nprocs
    lo, hi = _row_block(m, n, p.rank)
    A_loc = np.ascontiguousarray(A[lo:hi, :])
    b_loc = b[lo:hi].copy()
    diag_loc = np.diag(A)[lo:hi].copy()
    x = np.array(x0, dtype=np.float64)
    group = tuple(range(n))
    rows = hi - lo

    start, state = _restore_point(p, checkpoints)
    if start is not None:
        x = np.asarray(state)
    for it in range(start or 0, iterations):
        v_loc = A_loc @ x
        p.compute(2 * rows * m, label="gemv")
        x_loc = x[lo:hi] + (b_loc - v_loc) / diag_loc
        p.compute(3 * rows, label="update")
        blocks = yield from allgather(p, x_loc, group, transport=tx)
        x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
        _maybe_save(p, checkpoints, interval, it + 1, iterations, x)
    return x


def resilient_sor(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    omega: float,
    iterations: int,
    checkpoints: CheckpointStore | None = None,
    interval: int = 1,
    policy: RetryPolicy | None = None,
) -> Generator:
    """Pipelined SOR (Fig 6 ring schedule) over reliable transfers.

    Checkpoints this rank's X block between sweeps.  One full sweep
    keeps the ring causally coupled, so the drift between ranks is below
    one sweep and any ``interval >= 1`` yields consistent restore
    points.
    """
    tx = ReliableTransport(policy)
    m = len(b)
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"pipelined SOR needs N | m, got m={m}, N={n}")
    block = m // n
    before = p.rank * block
    A_loc = np.ascontiguousarray(A[:, before : before + block])
    b_loc = b[before : before + block].copy()
    diag_loc = np.diag(A)[before : before + block].copy()
    x_loc = np.array(x0[before : before + block], dtype=np.float64)

    start, state = _restore_point(p, checkpoints)
    if start is not None:
        x_loc = np.asarray(state)
    for it in range(start or 0, iterations):
        yield from _pipelined_sweep(
            p, A_loc, b_loc, diag_loc, x_loc, omega, m, block, tx
        )
        _maybe_save(p, checkpoints, interval, it + 1, iterations, x_loc)

    group = tuple(range(n))
    blocks = yield from allgather(p, x_loc, group, transport=tx)
    return np.concatenate([np.atleast_1d(blk) for blk in blocks])


def resilient_cg(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int | None = None,
    checkpoints: CheckpointStore | None = None,
    interval: int = 2,
    policy: RetryPolicy | None = None,
) -> Generator:
    """Row-block CG over reliable transfers with checkpoint/restart.

    The loop-carried state is ``(x_loc, r_loc, d_loc, rs, used)``; it is
    checkpointed after the iteration's closing allreduce.  Returns
    ``(x, iterations)`` like :func:`repro.kernels.cg.cg_parallel`.
    """
    tx = ReliableTransport(policy)
    m = len(b)
    n = p.nprocs
    max_iterations = max_iterations or 2 * m
    lo, hi = _row_block(m, n, p.rank)
    rows = hi - lo
    A_loc = np.ascontiguousarray(np.asarray(A, dtype=np.float64)[lo:hi, :])
    group = tuple(range(n))

    x_loc = np.zeros(rows)
    r_loc = np.asarray(b, dtype=np.float64)[lo:hi].copy()
    d_loc = r_loc.copy()

    start, state = _restore_point(p, checkpoints)
    if start is not None:
        x_loc, r_loc, d_loc, rs, used = state
    else:
        local = float(r_loc @ r_loc)
        p.compute(2 * rows, label="dot")
        rs = yield from allreduce(p, local, group, tag=140, transport=tx)
        used = 0

    for it in range(start or 0, max_iterations):
        if rs**0.5 <= tol:
            break
        # Re-replicate the search direction for the matvec (allgather).
        blocks = yield from allgather(p, d_loc, group, tag=141, transport=tx)
        d_full = np.concatenate([np.atleast_1d(blk) for blk in blocks])
        Ad_loc = A_loc @ d_full
        p.compute(2 * rows * m, label="matvec")
        local = float(d_loc @ Ad_loc)
        p.compute(2 * rows, label="dot")
        denom = yield from allreduce(p, local, group, tag=142, transport=tx)
        if denom <= 0:
            raise ReproError("matrix is not positive definite")
        alpha = rs / denom
        x_loc += alpha * d_loc
        r_loc -= alpha * Ad_loc
        p.compute(4 * rows, label="axpy")
        local = float(r_loc @ r_loc)
        p.compute(2 * rows, label="dot")
        rs_new = yield from allreduce(p, local, group, tag=143, transport=tx)
        d_loc = r_loc + (rs_new / rs) * d_loc
        p.compute(2 * rows, label="update d")
        rs = rs_new
        used += 1
        _maybe_save(
            p, checkpoints, interval, it + 1, max_iterations,
            (x_loc, r_loc, d_loc, rs, used),
        )

    blocks = yield from allgather(p, x_loc, group, tag=144, transport=tx)
    x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
    return x, used
