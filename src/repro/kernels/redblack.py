"""Red-black SOR for the 2-D Poisson problem — the reordering alternative.

§5 parallelizes a Gauss-Seidel-type recurrence by *pipelining* it.  When
the operator is a local stencil there is a second classic route the
HPF-era compilers knew: *reorder* the sweep red-black, making each
half-sweep fully parallel (every red point depends only on black
neighbors and vice versa), at the price of a different — usually slightly
slower — convergence trajectory.  This kernel provides that comparison
point for the pipelining discussion.

The problem: ``-laplace(u) = f`` on an ``(m+2) x (m+2)`` grid with
Dirichlet boundary, solved by SOR with relaxation ``omega``:

    u[i,j] += omega/4 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1]
                         + h^2 f[i,j] - 4 u[i,j])

Distribution: interior row blocks on a linear array; each half-sweep
exchanges one halo row per direction (Shift), so a full sweep costs
``4 m`` halo words total versus the dense pipeline's circulating sums.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.machine.collectives import allgather, allreduce
from repro.machine.engine import Proc


def redblack_sor_seq(
    f: np.ndarray, omega: float, sweeps: int, u0: np.ndarray | None = None
) -> np.ndarray:
    """Sequential red-black SOR reference (grid includes the boundary)."""
    mp2 = f.shape[0]
    u = np.zeros_like(f) if u0 is None else u0.copy()
    h2 = 1.0 / (mp2 - 1) ** 2
    ii, jj = np.meshgrid(np.arange(mp2), np.arange(mp2), indexing="ij")
    interior = (ii > 0) & (ii < mp2 - 1) & (jj > 0) & (jj < mp2 - 1)
    for _ in range(sweeps):
        for color in (0, 1):
            mask = interior & (((ii + jj) % 2) == color)
            residual = (
                np.roll(u, 1, axis=0)
                + np.roll(u, -1, axis=0)
                + np.roll(u, 1, axis=1)
                + np.roll(u, -1, axis=1)
                + h2 * f
                - 4.0 * u
            )
            u[mask] += (omega / 4.0) * residual[mask]
    return u


def redblack_sor(
    p: Proc,
    f: np.ndarray,
    omega: float,
    sweeps: int,
) -> Generator:
    """Parallel red-black SOR on a linear array of row blocks.

    Returns the full grid on every rank.  Interior rows (1..m) must
    divide evenly by the processor count.
    """
    mp2 = f.shape[0]
    m = mp2 - 2  # interior rows
    n = p.nprocs
    if m % n != 0:
        raise MachineError(f"red-black SOR needs N | m, got m={m}, N={n}")
    cnt = m // n
    lo = 1 + p.rank * cnt  # first interior row owned (global index)
    up = (p.rank - 1) % n
    down = (p.rank + 1) % n

    h2 = 1.0 / (mp2 - 1) ** 2
    # Local pad: one halo row above and below the owned rows.
    u_pad = np.zeros((cnt + 2, mp2))
    f_loc = np.asarray(f, dtype=np.float64)[lo : lo + cnt, :]
    ii = (np.arange(lo, lo + cnt))[:, None]
    jj = np.arange(mp2)[None, :]
    colors = (ii + jj) % 2
    interior_cols = (jj > 0) & (jj < mp2 - 1)

    for _ in range(sweeps):
        for color in (0, 1):
            if n > 1:
                # Halo exchange: owned boundary rows to both neighbors.
                if p.rank > 0:
                    p.send(up, u_pad[1, :].copy(), tag=130)
                if p.rank < n - 1:
                    p.send(down, u_pad[cnt, :].copy(), tag=131)
                if p.rank < n - 1:
                    u_pad[cnt + 1, :] = yield from p.recv(down, tag=130)
                if p.rank > 0:
                    u_pad[0, :] = yield from p.recv(up, tag=131)
            body = u_pad[1 : cnt + 1, :]
            residual = (
                u_pad[0:cnt, :]
                + u_pad[2 : cnt + 2, :]
                + np.roll(body, 1, axis=1)
                + np.roll(body, -1, axis=1)
                + h2 * f_loc
                - 4.0 * body
            )
            mask = (colors == color) & interior_cols
            body[mask] += (omega / 4.0) * residual[mask]
            p.compute(7 * int(mask.sum()), label=f"half sweep color {color}")

    blocks = yield from allgather(p, u_pad[1 : cnt + 1, :].copy(), tuple(range(n)))
    full = np.zeros((mp2, mp2))
    full[1 : mp2 - 1, :] = np.vstack(blocks)
    return full


def residual_norm(p: Proc, u_loc: np.ndarray, f_loc: np.ndarray) -> Generator:
    """Allreduce helper: global residual 2-norm of local interior blocks."""
    local = float(np.sum(u_loc * u_loc))
    p.compute(2 * u_loc.size, label="norm")
    total = yield from allreduce(p, local, tuple(range(p.nprocs)), tag=132)
    return float(total) ** 0.5
