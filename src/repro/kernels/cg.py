"""Parallel conjugate gradient — the reduction-heavy iterative kernel.

The paper's taxonomy (§1) casts scientific iterative loops as parallel
computation + reduction + update.  Conjugate gradient is the extreme
case: *two inner products per iteration* (Allreduce each) on top of the
distributed matvec, which is why CG became the canonical bandwidth/latency
benchmark for exactly the machines the paper targets.  Included as a
fourth solver validating the machine and collective layers on a kernel
the paper does not cover.

Layout: row blocks of A with matching vector blocks (the §4 Jacobi
layout); the search direction ``d`` is re-replicated for the matvec by an
allgather, the inner products by Allreduce.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import ReproError
from repro.machine.collectives import allgather, allreduce
from repro.machine.engine import Proc
from repro.kernels.jacobi import _row_block


def cg_seq(
    A: np.ndarray, b: np.ndarray, tol: float = 1e-12, max_iterations: int | None = None
) -> tuple[np.ndarray, int]:
    """Sequential CG reference; A must be symmetric positive definite."""
    m = len(b)
    max_iterations = max_iterations or 2 * m
    x = np.zeros(m)
    r = b.copy()
    d = r.copy()
    rs = float(r @ r)
    used = 0
    for _ in range(max_iterations):
        if rs**0.5 <= tol:
            break
        Ad = A @ d
        denom = float(d @ Ad)
        if denom <= 0:
            raise ReproError("matrix is not positive definite")
        alpha = rs / denom
        x += alpha * d
        r -= alpha * Ad
        rs_new = float(r @ r)
        d = r + (rs_new / rs) * d
        rs = rs_new
        used += 1
    return x, used


def cg_parallel(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int | None = None,
) -> Generator:
    """Row-block parallel CG; returns ``(x, iterations)`` on every rank."""
    m = len(b)
    n = p.nprocs
    max_iterations = max_iterations or 2 * m
    lo, hi = _row_block(m, n, p.rank)
    rows = hi - lo
    A_loc = np.ascontiguousarray(np.asarray(A, dtype=np.float64)[lo:hi, :])
    group = tuple(range(n))

    x_loc = np.zeros(rows)
    r_loc = np.asarray(b, dtype=np.float64)[lo:hi].copy()
    d_loc = r_loc.copy()

    local = float(r_loc @ r_loc)
    p.compute(2 * rows, label="dot")
    rs = yield from allreduce(p, local, group, tag=140)

    used = 0
    for _ in range(max_iterations):
        if rs**0.5 <= tol:
            break
        # Re-replicate the search direction for the matvec (allgather).
        blocks = yield from allgather(p, d_loc, group, tag=141)
        d_full = np.concatenate([np.atleast_1d(blk) for blk in blocks])
        Ad_loc = A_loc @ d_full
        p.compute(2 * rows * m, label="matvec")
        local = float(d_loc @ Ad_loc)
        p.compute(2 * rows, label="dot")
        denom = yield from allreduce(p, local, group, tag=142)
        if denom <= 0:
            raise ReproError("matrix is not positive definite")
        alpha = rs / denom
        x_loc += alpha * d_loc
        r_loc -= alpha * Ad_loc
        p.compute(4 * rows, label="axpy")
        local = float(r_loc @ r_loc)
        p.compute(2 * rows, label="dot")
        rs_new = yield from allreduce(p, local, group, tag=143)
        d_loc = r_loc + (rs_new / rs) * d_loc
        p.compute(2 * rows, label="update d")
        rs = rs_new
        used += 1

    blocks = yield from allgather(p, x_loc, group, tag=144)
    x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
    return x, used
