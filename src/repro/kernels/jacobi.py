"""SPMD Jacobi kernels for the three grid shapes of Table 2 and §4.

All kernels take the *full* problem (A, b, x0) on every rank and slice
their local blocks — the paper treats the initial layout as given, so no
distribution cost is charged.  Simulated time is charged for every flop
(via ``p.compute``) and every message.

* :func:`jacobi_rowdist` — grid ``(N, 1)``: the §4 DP scheme (Table 3
  layout).  Per iteration: local GEMV (``2 m^2/N`` flops), local update
  (``3 m/N``), then an allgather of the new X blocks
  (ManyToManyMulticast, the paper's ``CTime2 = m tc``).
* :func:`jacobi_coldist` — grid ``(1, N)``: §3's computation-optimal but
  communication-heavy scheme.  Per iteration: local partial GEMV, an
  allreduce of V (Reduction + OneToManyMulticast = ``2 m log N tc``),
  local update of the owned X block.
* :func:`jacobi_grid2d` — grid ``(sqrt N, sqrt N)``: 2-D blocks; row
  reduction of partials to diagonal blocks, X update there, column
  broadcast of the new X blocks.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MachineError
from repro.machine.collectives import allgather, allreduce, bcast, reduce
from repro.machine.engine import Proc


def _row_block(m: int, nprocs: int, rank: int) -> tuple[int, int]:
    """Contiguous block bounds [lo, hi) of ``floor((i-1)/ceil(m/N))``."""
    size = -(-m // nprocs)
    lo = min(rank * size, m)
    hi = min(lo + size, m)
    return lo, hi


def jacobi_rowdist(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    iterations: int,
) -> Generator:
    """Row-block Jacobi on a linear array of ``nprocs`` (§4 / Table 3)."""
    m = len(b)
    n = p.nprocs
    lo, hi = _row_block(m, n, p.rank)
    A_loc = np.ascontiguousarray(A[lo:hi, :])
    b_loc = b[lo:hi].copy()
    diag_loc = np.diag(A)[lo:hi].copy()
    x = np.array(x0, dtype=np.float64)
    group = tuple(range(n))
    rows = hi - lo

    for _ in range(iterations):
        v_loc = A_loc @ x
        p.compute(2 * rows * m, label="gemv")
        x_loc = x[lo:hi] + (b_loc - v_loc) / diag_loc
        p.compute(3 * rows, label="update")
        blocks = yield from allgather(p, x_loc, group)
        x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
    return x


def jacobi_rowdist_adaptive(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    tol: float,
    max_iterations: int,
) -> Generator:
    """Row-block Jacobi with a convergence test — §1's iterative shape.

    The paper's introduction describes the canonical iterative loop as
    "(1) parallel computation step; (2) reduction step; (3) updating
    step".  This kernel makes the reduction step explicit: after each
    sweep, the squared residual-update norm is combined with an
    Allreduce and every processor stops at the same iteration.

    Returns ``(x, iterations_used)``.
    """
    m = len(b)
    n = p.nprocs
    lo, hi = _row_block(m, n, p.rank)
    A_loc = np.ascontiguousarray(A[lo:hi, :])
    b_loc = b[lo:hi].copy()
    diag_loc = np.diag(A)[lo:hi].copy()
    x = np.array(x0, dtype=np.float64)
    group = tuple(range(n))
    rows = hi - lo

    used = 0
    for it in range(max_iterations):
        v_loc = A_loc @ x  # (1) parallel computation step
        p.compute(2 * rows * m, label="gemv")
        delta = (b_loc - v_loc) / diag_loc
        x_loc = x[lo:hi] + delta
        p.compute(3 * rows, label="update")
        local_sq = float(delta @ delta)
        p.compute(2 * rows, label="norm")
        total_sq = yield from allreduce(p, local_sq, group)  # (2) reduction
        blocks = yield from allgather(p, x_loc, group)  # (3) updating step
        x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
        used = it + 1
        if total_sq**0.5 <= tol:
            break
    return x, used


def jacobi_coldist(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    iterations: int,
) -> Generator:
    """Column-block Jacobi on grid ``(1, N)`` (§3, Table 2 row 1)."""
    m = len(b)
    n = p.nprocs
    lo, hi = _row_block(m, n, p.rank)  # same block arithmetic, on columns
    A_loc = np.ascontiguousarray(A[:, lo:hi])
    b_loc = b[lo:hi].copy()
    diag_loc = np.diag(A)[lo:hi].copy()
    x_loc = np.array(x0[lo:hi], dtype=np.float64)
    group = tuple(range(n))
    cols = hi - lo

    for _ in range(iterations):
        partial = A_loc @ x_loc
        p.compute(2 * m * cols, label="partial-gemv")
        v = yield from allreduce(p, partial, group)
        x_loc = x_loc + (b_loc - v[lo:hi]) / diag_loc
        p.compute(3 * cols, label="update")
    blocks = yield from allgather(p, x_loc, group)
    return np.concatenate([np.atleast_1d(blk) for blk in blocks])


def jacobi_grid2d(
    p: Proc,
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    iterations: int,
    shape: tuple[int, int],
) -> Generator:
    """2-D block Jacobi on an ``n1 x n2`` grid (Table 2 row 3).

    Rank layout is row-major over *shape*.  Per iteration:

    1. local partial GEMV on the ``(m/n1) x (m/n2)`` block;
    2. Reduction of partials across each grid row to its column-0
       processor (``Reduction(m/n1, n2)``);
    3. X-block update there (``3 m/n1`` flops);
    4. ManyToManyMulticast of the new blocks within grid column 0, then
       OneToManyMulticast of the full X along each grid row — the
       loop-carried redistribution of X, mirroring the paper's
       ``N1 x OneToManyMulticast`` + multicast terms for this grid.

    Returns the full X vector on every rank.
    """
    n1, n2 = shape
    if n1 * n2 != p.nprocs:
        raise MachineError(f"grid {shape} does not match {p.nprocs} processors")
    m = len(b)
    p1, p2 = divmod(p.rank, n2)
    rlo, rhi = _row_block(m, n1, p1)
    clo, chi = _row_block(m, n2, p2)
    A_loc = np.ascontiguousarray(A[rlo:rhi, clo:chi])
    rows = rhi - rlo
    cols = chi - clo
    x = np.array(x0, dtype=np.float64)

    row_group = tuple(p1 * n2 + q for q in range(n2))
    col0_group = tuple(q * n2 for q in range(n1))
    row_root = p1 * n2  # column-0 processor of this grid row
    b_loc = b[rlo:rhi].copy()
    diag_loc = np.diag(A)[rlo:rhi].copy()

    for _ in range(iterations):
        partial = A_loc @ x[clo:chi]
        p.compute(2 * rows * cols, label="partial-gemv")
        v = yield from reduce(p, partial, root=row_root, group=row_group)
        if p.rank == row_root:
            x_blk = x[rlo:rhi] + (b_loc - v) / diag_loc
            p.compute(3 * rows, label="update")
            blocks = yield from allgather(p, x_blk, col0_group)
            x = np.concatenate([np.atleast_1d(blk) for blk in blocks])
            x = yield from bcast(p, x, root=row_root, group=row_group)
        else:
            x = yield from bcast(p, None, root=row_root, group=row_group)
    return x
