"""Component alignment solvers.

The component alignment problem (§3): partition the CAG's node set into
``q`` disjoint subsets minimizing the total weight of edges *across*
subsets, such that no two nodes of the same array share a subset.  The
general problem is NP-hard; Li & Chen solve it heuristically.  We provide

* :func:`exact_alignment` — branch-and-bound over subset assignments,
  optimal for the paper-sized graphs (<= ~16 nodes);
* :func:`greedy_alignment` — a Li-Chen-style heuristic: merge node
  clusters in decreasing edge-weight order when no array constraint is
  violated, then color clusters onto grid dimensions.

Both return an :class:`Alignment` mapping each node to a grid dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alignment.graph import CAG, Node
from repro.distribution.function import Kind
from repro.distribution.schemes import ArrayPlacement, Scheme
from repro.errors import AlignmentError
from repro.util.spans import spanned


@dataclass(frozen=True)
class Alignment:
    """A solved alignment: node -> grid dimension (1-based)."""

    assignment: tuple[tuple[Node, int], ...]
    cut_weight: float
    method: str

    def dim_of(self, node: Node) -> int:
        for n, g in self.assignment:
            if n == node:
                return g
        raise AlignmentError(f"node {node} not in alignment")

    def subsets(self) -> dict[int, list[Node]]:
        out: dict[int, list[Node]] = {}
        for node, g in self.assignment:
            out.setdefault(g, []).append(node)
        return {g: sorted(nodes) for g, nodes in sorted(out.items())}

    def describe(self, cag: CAG | None = None) -> str:
        label = (lambda n: cag.node_label(n)) if cag else (lambda n: f"{n[0]}{n[1]}")
        parts = []
        for g, nodes in self.subsets().items():
            names = ", ".join(label(n) for n in nodes)
            parts.append(f"grid dim {g}: {{{names}}}")
        return "; ".join(parts) + f"  (cut={self.cut_weight:g}, {self.method})"


def _cut_weight(cag: CAG, assign: dict[Node, int]) -> float:
    total = 0.0
    for edge in cag.edges.values():
        if assign[edge.u] != assign[edge.v]:
            total += edge.weight
    return total


def _validate(cag: CAG, assign: dict[Node, int]) -> None:
    seen: dict[tuple[str, int], Node] = {}
    for (array, dim), g in assign.items():
        key = (array, g)
        if key in seen:
            raise AlignmentError(
                f"dimensions {seen[key]} and {(array, dim)} of array {array!r} "
                f"share grid dimension {g}"
            )
        seen[key] = (array, dim)


def _merge_groups(
    cag: CAG, must_align: tuple[tuple[Node, Node], ...]
) -> dict[Node, int]:
    """Union-find pre-merge of must-co-align nodes; returns node -> group."""
    parent: dict[Node, Node] = {n: n for n in cag.nodes}

    def find(n: Node) -> Node:
        while parent[n] != n:
            parent[n] = parent[parent[n]]
            n = parent[n]
        return n

    for u, v in must_align:
        if u not in parent or v not in parent:
            raise AlignmentError(f"ALIGN constraint references unknown node {u} or {v}")
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[rv] = ru
    groups: dict[Node, int] = {}
    roots: dict[Node, int] = {}
    for n in sorted(cag.nodes):
        r = find(n)
        if r not in roots:
            roots[r] = len(roots)
        groups[n] = roots[r]
    # A group may not contain two dims of one array.
    seen: dict[tuple[str, int], Node] = {}
    for n, g in groups.items():
        key = (n[0], g)
        if key in seen:
            raise AlignmentError(
                f"ALIGN constraints force {seen[key]} and {n} of array {n[0]!r} together"
            )
        seen[key] = n
    return groups


@spanned("alignment/solve")
def exact_alignment(
    cag: CAG,
    q: int = 2,
    must_align: tuple[tuple[Node, Node], ...] = (),
) -> Alignment:
    """Optimal alignment by branch and bound (small graphs).

    *must_align* pairs (e.g. from HPF-style ``ALIGN`` directives) are
    pre-merged: both nodes of each pair always land in the same subset.
    """
    nodes = sorted(cag.nodes)
    if len(nodes) > 24:
        raise AlignmentError(
            f"exact solver limited to 24 nodes, got {len(nodes)}; use greedy_alignment"
        )
    groups = _merge_groups(cag, must_align)
    group_ids = sorted(set(groups.values()))
    members: dict[int, list[Node]] = {g: [] for g in group_ids}
    for n, g in groups.items():
        members[g].append(n)
    adj: dict[int, dict[int, float]] = {g: {} for g in group_ids}
    for e in cag.edges.values():
        gu, gv = groups[e.u], groups[e.v]
        if gu == gv:
            continue  # co-aligned by constraint: this edge is never cut
        adj[gu][gv] = adj[gu].get(gv, 0.0) + e.weight
        adj[gv][gu] = adj[gv].get(gu, 0.0) + e.weight

    best_cut = float("inf")
    best_assign: dict[int, int] | None = None
    assign: dict[int, int] = {}
    used: dict[tuple[str, int], int] = {}

    def arrays_of(g: int) -> list[str]:
        return [n[0] for n in members[g]]

    def recurse(idx: int, cut: float) -> None:
        nonlocal best_cut, best_assign
        if cut >= best_cut:
            return
        if idx == len(group_ids):
            best_cut = cut
            best_assign = dict(assign)
            return
        group = group_ids[idx]
        dims = range(1, 2 if idx == 0 else q + 1)
        for dim in dims:
            if any(used.get((arr, dim), 0) for arr in arrays_of(group)):
                continue
            extra = 0.0
            for other, w in adj[group].items():
                od = assign.get(other)
                if od is not None and od != dim:
                    extra += w
            assign[group] = dim
            for arr in arrays_of(group):
                used[(arr, dim)] = used.get((arr, dim), 0) + 1
            recurse(idx + 1, cut + extra)
            for arr in arrays_of(group):
                used[(arr, dim)] -= 1
            del assign[group]

    recurse(0, 0.0)
    if best_assign is None:
        raise AlignmentError(
            f"no feasible {q}-way alignment (an array has more than {q} dimensions,"
            " or ALIGN constraints conflict)"
        )
    node_assign = {n: best_assign[groups[n]] for n in nodes}
    _validate(cag, node_assign)
    return Alignment(
        assignment=tuple(sorted(node_assign.items())),
        cut_weight=best_cut,
        method="exact",
    )


@spanned("alignment/solve")
def greedy_alignment(
    cag: CAG,
    q: int = 2,
    must_align: tuple[tuple[Node, Node], ...] = (),
) -> Alignment:
    """Li-Chen-style heuristic: cluster by descending edge weight, color.

    Clusters start as singleton nodes (pre-merged by any *must_align*
    constraints); an edge merges its endpoints' clusters when the merged
    cluster would contain at most one dimension of each array.  Finally
    clusters are assigned grid dimensions greedily (largest accumulated
    weight first); needing more than ``q`` colors is an error.
    """
    parent: dict[Node, Node] = {n: n for n in cag.nodes}

    def find(n: Node) -> Node:
        while parent[n] != n:
            parent[n] = parent[parent[n]]
            n = parent[n]
        return n

    members: dict[Node, set[Node]] = {n: {n} for n in cag.nodes}

    for u, v in must_align:
        if u not in parent or v not in parent:
            raise AlignmentError(f"ALIGN constraint references unknown node {u} or {v}")
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        merged_arrays = [a for (a, _) in members[ru]] + [a for (a, _) in members[rv]]
        if len(merged_arrays) != len(set(merged_arrays)):
            raise AlignmentError(
                f"ALIGN constraints force two dimensions of one array together: {u}, {v}"
            )
        parent[rv] = ru
        members[ru] |= members.pop(rv)

    def arrays_of(root: Node) -> set[str]:
        return {a for (a, _) in members[root]}

    for edge in cag.edge_list():
        ru, rv = find(edge.u), find(edge.v)
        if ru == rv:
            continue
        if {a for (a, _) in members[ru]} & {a for (a, _) in members[rv]}:
            continue  # would co-locate two dims of one array
        parent[rv] = ru
        members[ru] |= members.pop(rv)

    clusters = [members[r] for r in members if find(r) == r]
    # Weight of a cluster: total weight of internal edges (bigger first).
    def cluster_weight(cluster: set[Node]) -> float:
        return sum(
            e.weight for e in cag.edges.values() if e.u in cluster and e.v in cluster
        )

    clusters.sort(key=lambda c: (-cluster_weight(c), sorted(c)[0]))
    assign: dict[Node, int] = {}
    used_arrays: dict[int, set[str]] = {g: set() for g in range(1, q + 1)}
    for cluster in clusters:
        arrays = {a for (a, _) in cluster}
        placed = False
        for g in range(1, q + 1):
            if used_arrays[g] & arrays:
                continue
            for node in cluster:
                assign[node] = g
            used_arrays[g] |= arrays
            placed = True
            break
        if not placed:
            raise AlignmentError(
                f"greedy alignment needs more than q={q} grid dimensions"
            )
    _validate(cag, assign)
    return Alignment(
        assignment=tuple(sorted(assign.items())),
        cut_weight=_cut_weight(cag, assign),
        method="greedy",
    )


def alignment_to_scheme(
    alignment: Alignment,
    cag: CAG,
    kinds: dict[str, Kind] | None = None,
    replicated_reads: frozenset[str] | set[str] = frozenset(),
    name: str = "",
) -> Scheme:
    """Materialize an alignment into a :class:`Scheme`.

    *kinds* optionally overrides the partitioning kind per array (default
    contiguous, per §3's "as the iteration space is rectangular");
    arrays in *replicated_reads* get ``rest="replicated"`` (values needed
    by every processor row, like ``X`` in Jacobi's L1).
    """
    kinds = kinds or {}
    placements = []
    for array, rank in sorted(cag.arrays.items()):
        dim_map = tuple(alignment.dim_of((array, d)) for d in range(1, rank + 1))
        kind = kinds.get(array, Kind.BLOCK)
        placements.append(
            ArrayPlacement(
                array=array,
                dim_map=dim_map,
                kinds=tuple(kind for _ in range(rank)),
                rest="replicated" if array in replicated_reads else "fixed",
            )
        )
    return Scheme.of(*placements, name=name)
