"""Component affinity graph construction (paper §3, Figs 2 and 7).

Nodes are array *dimensions* ``(array, dim)``; an edge joins two
dimensions whose subscripts (within one statement) differ by a constant —
the paper's affinity relation.  Edge weights accumulate the priced
occurrences over all statements (see :mod:`repro.alignment.weights`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.primitives import CommCosts
from repro.lang.affine import difference_is_constant
from repro.lang.analysis import RefSite, collect_ref_sites
from repro.lang.ast import ArrayRef, Program, Stmt
from repro.machine.model import MachineModel
from repro.alignment.weights import WeightTerm, edge_weight
from repro.util.spans import spanned
from repro.util.tables import Table

Node = tuple[str, int]  # (array name, 1-based dimension)


@dataclass
class CagEdge:
    """An affinity edge with its accumulated weight."""

    u: Node
    v: Node
    weight: float = 0.0
    terms: list[WeightTerm] = field(default_factory=list)

    def key(self) -> tuple[Node, Node]:
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)

    def describe(self) -> str:
        body = " + ".join(t.describe() for t in self.terms)
        return f"{_node_name(self.u)} -- {_node_name(self.v)}: {body} = {self.weight:g}"


def _node_name(node: Node) -> str:
    name, dim = node
    return f"{name}{dim}" if dim > 0 else name


@dataclass
class CAG:
    """A component affinity graph."""

    nodes: list[Node]
    edges: dict[tuple[Node, Node], CagEdge]
    arrays: dict[str, int]  # array -> rank

    def edge_list(self) -> list[CagEdge]:
        return sorted(self.edges.values(), key=lambda e: (-e.weight, e.key()))

    def node_label(self, node: Node) -> str:
        name, dim = node
        return f"{name}{dim}" if self.arrays.get(name, 1) > 1 else name

    def total_weight(self) -> float:
        return sum(e.weight for e in self.edges.values())

    def render(self, title: str | None = None) -> str:
        table = Table(["edge", "weight", "terms"], title=title)
        for e in self.edge_list():
            terms = " + ".join(t.describe() for t in e.terms)
            table.add_row(
                [f"{self.node_label(e.u)} -- {self.node_label(e.v)}", f"{e.weight:g}", terms]
            )
        return table.render()


def _edge_pairs(site_a: RefSite, site_b: RefSite) -> list[tuple[int, int]]:
    """(dim_a, dim_b) pairs whose subscripts differ by a constant."""
    pairs: list[tuple[int, int]] = []
    for da, sa in enumerate(site_a.ref.subscripts, start=1):
        if not sa.variables():
            continue  # constant subscripts carry no alignment information
        for db, sb in enumerate(site_b.ref.subscripts, start=1):
            if not sb.variables():
                continue
            if difference_is_constant(sa, sb) is not None:
                pairs.append((da, db))
    return pairs


@spanned("alignment/cag")
def build_cag(
    fragment: Program | list[Stmt],
    program: Program,
    env: dict[str, int],
    model: MachineModel,
    nprocs: int,
) -> CAG:
    """Build the CAG of *fragment* (whole program or a statement subset).

    *program* supplies array declarations; *env* binds the size parameters
    used for weighting; *nprocs* is the assumed processor count N (the
    paper prices weights before the grid shape is known, assuming equal
    extents per §2.2).
    """
    costs = CommCosts(model)
    stmts = fragment.body if isinstance(fragment, Program) else fragment
    sites = collect_ref_sites(stmts)

    nodes: list[Node] = []
    arrays: dict[str, int] = {}
    for site in sites:
        rank = site.ref.rank
        if site.array not in arrays:
            arrays[site.array] = rank
            for d in range(1, rank + 1):
                nodes.append((site.array, d))

    edges: dict[tuple[Node, Node], CagEdge] = {}
    # Group sites per statement.
    by_stmt: dict[int, list[RefSite]] = {}
    for site in sites:
        by_stmt.setdefault(id(site.stmt), []).append(site)

    for raw_sites in by_stmt.values():
        # Deduplicate textually identical references within one statement
        # (the accumulation pattern ``V(i) = V(i) + ...``), preferring the
        # write so owner-computes pins correctly.
        unique: dict[tuple[str, tuple], RefSite] = {}
        for site in raw_sites:
            key2 = (site.array, site.ref.subscripts)
            if key2 not in unique or site.is_write:
                unique[key2] = site
        stmt_sites = list(unique.values())
        for i, sa in enumerate(stmt_sites):
            for sb in stmt_sites[i + 1 :]:
                if sa.array == sb.array:
                    continue  # same-array dims may never co-align (constraint)
                for da, db in _edge_pairs(sa, sb):
                    u: Node = (sa.array, da)
                    v: Node = (sb.array, db)
                    key = (u, v) if u <= v else (v, u)
                    edge = edges.get(key)
                    if edge is None:
                        edge = CagEdge(u=key[0], v=key[1])
                        edges[key] = edge
                    term = edge_weight(sa, sb, program, env, costs, nprocs)
                    edge.terms.append(term)
                    edge.weight += term.cost

    return CAG(nodes=nodes, edges=edges, arrays=arrays)
