"""Edge weights for the component affinity graph.

The weight of an affinity edge is "the communication cost [that] is
necessary if two dimensions of arrays are distributed along different
dimensions of the processor grid" (§3).  We price it with the rule
implied by the paper's examples (Fig 2's ``c1..c4``, §5's ``e1..e4``):

* the **mover** is the array whose data would have to travel — the RHS
  array when the edge involves the left-hand side (owner computes pins
  the LHS), otherwise the smaller of the two arrays;
* the mover contributes one message per *distinct element* accessed by
  the statement (the product of the trip counts of the loop variables in
  its subscripts);
* each message is a ``Transfer(1)`` when the element has a single
  consumer, and a ``OneToManyMulticast(1, N)`` when the other reference
  is additionally driven by a loop variable absent from the mover (the
  element is consumed across a grid dimension).

This reproduces §5's ``e1 = m^2 * Transfer(1)`` (A against the LHS ``V``),
``e2 = m * OneToManyMulticast(1, N)`` (X against A's second dimension) and
``e3 = e4 = m * Transfer(1)`` (B, V against X), and Fig 2's ordering
``c1 > c4``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.primitives import CommCosts
from repro.lang.analysis import RefSite
from repro.lang.ast import Program


@dataclass(frozen=True)
class WeightTerm:
    """A priced affinity occurrence, printable in the paper's notation."""

    count: float
    primitive: str
    nprocs: int
    cost: float
    line: int

    def describe(self) -> str:
        if self.primitive == "Transfer":
            return f"{self.count:g} x Transfer(1) (line {self.line})"
        return f"{self.count:g} x {self.primitive}(1, N) (line {self.line})"


def _array_size(program: Program, name: str, env: dict[str, int]) -> int:
    decl = program.arrays[name]
    total = 1
    for extent in decl.extents:
        total *= extent.evaluate(env)
    return total


def _trip_counts(site: RefSite, env: dict[str, int]) -> dict[str, float]:
    """Average trip count per enclosing loop var (midpoint-bound inner)."""
    bind = dict(env)
    trips: dict[str, float] = {}
    for loop in site.loops:
        lo = loop.lb.evaluate(bind)
        hi = loop.ub.evaluate(bind)
        if loop.step > 0:
            trips[loop.var] = float(max(0, (hi - lo) // loop.step + 1))
        else:
            trips[loop.var] = float(max(0, (lo - hi) // (-loop.step) + 1))
        bind[loop.var] = (lo + hi) // 2
    return trips


def _subscript_vars(site: RefSite) -> set[str]:
    out: set[str] = set()
    loop_vars = set(site.loop_vars)
    for sub in site.ref.subscripts:
        out |= set(sub.variables()) & loop_vars
    return out


def edge_weight(
    site_a: RefSite,
    site_b: RefSite,
    program: Program,
    env: dict[str, int],
    costs: CommCosts,
    nprocs: int,
) -> WeightTerm:
    """Price the affinity between two reference sites of one statement."""
    # Decide which array moves if the two dimensions are misaligned.
    if site_a.is_write:
        mover, other = site_b, site_a
    elif site_b.is_write:
        mover, other = site_a, site_b
    else:
        size_a = _array_size(program, site_a.array, env)
        size_b = _array_size(program, site_b.array, env)
        mover, other = (site_a, site_b) if size_a <= size_b else (site_b, site_a)

    trips = _trip_counts(mover, env)
    mover_vars = _subscript_vars(mover)
    distinct = 1.0
    for var in mover_vars:
        distinct *= trips.get(var, 1.0)

    other_vars = _subscript_vars(other)
    spans = bool(other_vars - mover_vars)
    if spans and nprocs > 1:
        per = costs.one_to_many(1, nprocs)
        primitive = "OneToManyMulticast"
    else:
        per = costs.transfer(1)
        primitive = "Transfer"
    return WeightTerm(
        count=distinct,
        primitive=primitive,
        nprocs=nprocs,
        cost=distinct * per,
        line=site_a.line,
    )
