"""Component alignment (paper §3, after Li & Chen).

* :mod:`~repro.alignment.graph` builds the component affinity graph (CAG)
  of a program fragment (Fig 2, Fig 7);
* :mod:`~repro.alignment.weights` prices the edges with the Table 1
  primitives (the ``c1..c4`` / ``e1..e4`` expressions);
* :mod:`~repro.alignment.solver` partitions the node set into ``q`` grid
  dimensions minimizing the cross-subset weight, with the constraint that
  two dimensions of one array never share a subset.
"""

from repro.alignment.graph import CAG, CagEdge, Node, build_cag
from repro.alignment.solver import (
    Alignment,
    alignment_to_scheme,
    exact_alignment,
    greedy_alignment,
)

__all__ = [
    "CAG",
    "CagEdge",
    "Node",
    "build_cag",
    "Alignment",
    "exact_alignment",
    "greedy_alignment",
    "alignment_to_scheme",
]
