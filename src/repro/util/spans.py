"""Wall-clock span instrumentation for the compiler passes.

The simulator side of the repo measures *simulated* seconds; this module
is the real-time twin for the compiler itself (ISSUE 5): alignment, the
Algorithm 1 DP, redistribution planning and code generation are wrapped
in :func:`span` context managers which are free when no recorder is
installed (one context-variable read) and record nested wall-clock
intervals when run under :func:`recording`.

Usage::

    with recording() as rec:
        tables, result = solve_program_distribution(...)
    rec.totals()        # {"alignment/cag": 0.012, "dp/solve": ...}
    rec.as_dicts()      # JSON-ready span list, sorted by start time

Spans nest naturally (``depth`` records the nesting level at entry), so
the recorded list can be rendered as a flame graph — see
:func:`repro.machine.export.chrome_trace_events`, which draws them as a
dedicated *compiler* lane next to the simulated-run lanes, putting
compile time and run time on one Perfetto timeline.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One completed wall-clock interval, relative to the recorder epoch."""

    name: str
    start: float
    end: float
    depth: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "duration": self.duration,
        }


class SpanRecorder:
    """Collects spans; install one with :func:`recording`."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._depth = 0
        self._epoch = time.perf_counter()

    @contextmanager
    def span(self, name: str):
        depth = self._depth
        self._depth += 1
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            self._depth -= 1
            end = time.perf_counter() - self._epoch
            self.spans.append(Span(name, start, end, depth))

    def instant(self, name: str) -> None:
        """Record a zero-duration marker (crash, respawn, fallback, ...).

        Instants render as thread-scoped instant events on the compiler
        Perfetto lane (:func:`repro.machine.export.compiler_lane_events`)
        — the wall-clock twin of the simulator's ``fault`` markers.
        """
        t = time.perf_counter() - self._epoch
        self.spans.append(Span(name, t, t, self._depth))

    def now(self) -> float:
        """Current time on this recorder's clock (seconds since epoch)."""
        return time.perf_counter() - self._epoch

    def graft(self, span_dicts, *, at: float, prefix: str = "") -> None:
        """Splice spans recorded on *another* clock into this recorder.

        Used by the worker supervisor (docs/OBSERVABILITY.md): a worker
        process records spans against its own epoch; the hub re-anchors
        them so the earliest grafted span starts at *at* on the hub's
        clock (typically the dispatch time from :meth:`now`), optionally
        prefixing names (``worker0/``) so lanes stay distinguishable.
        """
        span_dicts = list(span_dicts)
        if not span_dicts:
            return
        base = min(float(s["start"]) for s in span_dicts)
        for s in span_dicts:
            self.spans.append(
                Span(
                    name=prefix + str(s["name"]),
                    start=float(s["start"]) - base + at,
                    end=float(s["end"]) - base + at,
                    depth=int(s.get("depth", 0)),
                )
            )

    # -- views -----------------------------------------------------------
    def sorted_spans(self) -> list[Span]:
        """Spans in start order (they are appended in *end* order).

        The name tie-break makes the order — and hence every export —
        deterministic even when instants share a timestamp; exact
        duplicates keep insertion order (the sort is stable).
        """
        return sorted(self.spans, key=lambda s: (s.start, s.depth, s.name))

    def totals(self) -> dict[str, float]:
        """Summed duration per span name, deterministically ordered."""
        out: dict[str, float] = {}
        for s in self.sorted_spans():
            out[s.name] = out.get(s.name, 0.0) + s.duration
        return dict(sorted(out.items()))

    @property
    def wall_seconds(self) -> float:
        """End of the latest span (total instrumented wall clock)."""
        return max((s.end for s in self.spans), default=0.0)

    def as_dicts(self) -> list[dict]:
        return [s.as_dict() for s in self.sorted_spans()]


_current: ContextVar[SpanRecorder | None] = ContextVar(
    "repro_span_recorder", default=None
)


def current_recorder() -> SpanRecorder | None:
    return _current.get()


@contextmanager
def recording():
    """Install a fresh :class:`SpanRecorder` for the enclosed block."""
    rec = SpanRecorder()
    token = _current.set(rec)
    try:
        yield rec
    finally:
        _current.reset(token)


@contextmanager
def span(name: str):
    """Record *name* if a recorder is installed; otherwise do nothing."""
    rec = _current.get()
    if rec is None:
        yield
        return
    with rec.span(name):
        yield


def instant(name: str) -> None:
    """Record a zero-duration marker if a recorder is installed."""
    rec = _current.get()
    if rec is not None:
        rec.instant(name)


def spanned(name: str):
    """Decorator form of :func:`span` for whole-function phases."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
