"""Number formatting helpers used by benchmark and layout printers."""

from __future__ import annotations

import math

_ENG_SUFFIXES = {
    -4: "p",
    -3: "n",
    -2: "u",
    -1: "m",
    0: "",
    1: "k",
    2: "M",
    3: "G",
    4: "T",
}


def eng(value: float, unit: str = "", digits: int = 3) -> str:
    """Format *value* in engineering notation (powers of 1000).

    >>> eng(0.00125, "s")
    '1.25ms'
    >>> eng(43_200, "flop")
    '43.2kflop'
    """
    if value == 0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    sign = "-" if value < 0 else ""
    mag = abs(value)
    exp3 = int(math.floor(math.log10(mag) / 3))
    exp3 = max(min(exp3, max(_ENG_SUFFIXES)), min(_ENG_SUFFIXES))
    scaled = mag / (1000.0**exp3)
    # Keep `digits` significant digits.
    if scaled >= 100:
        text = f"{scaled:.{max(digits - 3, 0)}f}"
    elif scaled >= 10:
        text = f"{scaled:.{max(digits - 2, 0)}f}"
    else:
        text = f"{scaled:.{max(digits - 1, 0)}f}"
    return f"{sign}{text}{_ENG_SUFFIXES[exp3]}{unit}"


def fixed(value: float, decimals: int = 2) -> str:
    """Format *value* with a fixed number of decimals, stripping ``-0``."""
    text = f"{value:.{decimals}f}"
    if text == f"-0.{'0' * decimals}":
        text = text[1:]
    return text


def ratio(numerator: float, denominator: float, decimals: int = 2) -> str:
    """Format a speedup-style ratio, guarding against zero denominators.

    >>> ratio(3.0, 1.5)
    '2.00x'
    """
    if denominator == 0:
        return "inf" if numerator > 0 else "n/a"
    return f"{numerator / denominator:.{decimals}f}x"
