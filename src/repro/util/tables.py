"""ASCII table rendering for paper-style tables and layouts.

The benchmark harnesses print the same rows the paper reports; this module
keeps all of that formatting in one place so the benches stay declarative.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """A simple left-aligned ASCII table with a header row.

    >>> t = Table(["N1 x N2", "Time"])
    >>> t.add_row(["1 x 4", "12.5"])
    >>> print(t.render())
    | N1 x N2 | Time |
    |---------|------|
    | 1 x 4   | 12.5 |
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
            return f"| {inner} |"

        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append(sep)
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_grid(
    cells: Sequence[Sequence[Any]],
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a 2-D grid of cells (used for Fig 1-style layout pictures).

    Every cell is stringified; columns are padded to a common width so the
    grid reads like the paper's block diagrams.
    """
    text_cells = [[str(c) for c in row] for row in cells]
    ncols = max((len(r) for r in text_cells), default=0)
    for row in text_cells:
        row.extend([""] * (ncols - len(row)))

    col_head = [str(c) for c in col_labels] if col_labels else None
    row_head = [str(r) for r in row_labels] if row_labels else None

    widths = [0] * ncols
    for row in text_cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if col_head:
        for i, cell in enumerate(col_head[:ncols]):
            widths[i] = max(widths[i], len(cell))
    label_w = max((len(r) for r in row_head), default=0) if row_head else 0

    lines: list[str] = []
    if title:
        lines.append(title)
    if col_head:
        prefix = " " * (label_w + 2) if row_head else ""
        lines.append(prefix + "  ".join(c.center(w) for c, w in zip(col_head, widths)))
    for irow, row in enumerate(text_cells):
        prefix = (row_head[irow].ljust(label_w) + "  ") if row_head else ""
        lines.append(prefix + "  ".join(c.center(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
