"""Shared utilities: table rendering and number formatting."""

from repro.util.fmt import eng, fixed, ratio
from repro.util.tables import Table, render_grid

__all__ = ["Table", "render_grid", "eng", "fixed", "ratio"]
