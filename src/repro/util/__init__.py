"""Shared utilities: table rendering, number formatting, span profiling."""

from repro.util.fmt import eng, fixed, ratio
from repro.util.spans import (
    Span,
    SpanRecorder,
    current_recorder,
    recording,
    span,
    spanned,
)
from repro.util.tables import Table, render_grid

__all__ = [
    "Table",
    "render_grid",
    "eng",
    "fixed",
    "ratio",
    "Span",
    "SpanRecorder",
    "current_recorder",
    "recording",
    "span",
    "spanned",
]
