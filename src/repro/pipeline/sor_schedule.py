"""Fig 5 — the pipelined SOR schedule as a step table.

The paper's Fig 5 shows, for ``A_{16x16}`` on a four-processor ring, which
block of work each processor performs at each pipeline step.  We
reconstruct the same table from the *simulator trace* of the pipelined
kernel: each compute event on a processor is one step cell, labelled
``A(i, j1..j2)`` for a partial-sum block or ``X(i)`` for an update.
Deriving the figure from the executed schedule (rather than retyping it)
means the figure stays truthful to the implementation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.machine.trace import TraceEvent
from repro.util.tables import Table


@dataclass(frozen=True)
class ScheduleCell:
    step: int
    proc: int
    label: str
    start: float
    end: float


_ROW_RE = re.compile(r"row (\d+)")
_X_RE = re.compile(r"X\((\d+)\)")


def _cell_label(event: TraceEvent, block: int, proc: int, m: int) -> str | None:
    """Human label for one compute event of the pipelined SOR kernel."""
    d = event.detail
    x = _X_RE.fullmatch(d)
    if x:
        return f"X({x.group(1)})"
    row = _ROW_RE.match(d)
    if not row:
        return None
    i = int(row.group(1))
    lo = proc * block + 1
    hi = proc * block + block
    if d.endswith("start"):
        col_lo = lo + (i - lo)  # columns j >= i within the block
        return f"A({i},{col_lo}..{hi})"
    if d.endswith("finish"):
        if i == lo:
            return None  # empty prefix: no flops, not a schedule cell
        return f"A({i},{lo}..{i - 1})"
    return f"A({i},{lo}..{hi})"


def sor_schedule_from_trace(
    trace: list[list[TraceEvent]],
    m: int,
    nprocs: int,
    model_unit: float | None = None,
) -> list[ScheduleCell]:
    """Extract Fig 5 cells from a traced pipelined-SOR run (1 iteration).

    Cells are binned into global pipeline steps of duration *model_unit*
    (defaults to the paper's step length ``2 (m/N) tf + 2 tc`` inferred
    from the longest compute event plus two unit transfers), so the
    staircase structure of Fig 5 — row ``i`` reaching processor ``q`` at
    step ``i + q`` — is visible across processors.
    """
    block = m // nprocs
    raw: list[tuple[int, str, float, float]] = []
    for proc, lane in enumerate(trace):
        for event in lane:
            if event.kind != "compute" or event.duration == 0:
                continue
            label = _cell_label(event, block, proc, m)
            if label is None:
                continue
            raw.append((proc, label, event.start, event.end))
    if not raw:
        return []
    if model_unit is None:
        comm = max(
            (e.duration for lane in trace for e in lane if e.kind == "send"),
            default=0.0,
        )
        model_unit = max(r[3] - r[2] for r in raw) + 2 * comm
    cells: list[ScheduleCell] = []
    used: set[tuple[int, int]] = set()
    for proc, label, start, end in sorted(raw, key=lambda r: (r[2], r[0])):
        step = int(start // model_unit) + 1
        while (step, proc) in used:
            step += 1
        used.add((step, proc))
        cells.append(ScheduleCell(step=step, proc=proc, label=label, start=start, end=end))
    return cells


def render_schedule(cells: list[ScheduleCell], nprocs: int, max_steps: int | None = None) -> str:
    """Render the Fig 5 grid: one row per step, one column per processor."""
    by_key = {(c.step, c.proc): c.label for c in cells}
    steps = sorted({c.step for c in cells})
    if max_steps is not None:
        steps = steps[:max_steps]
    table = Table(["step"] + [f"PROCESSOR {q}" for q in range(nprocs)])
    for s in steps:
        table.add_row([s] + [by_key.get((s, q), "") for q in range(nprocs)])
    return table.render()


def schedule_properties(cells: list[ScheduleCell], m: int, nprocs: int) -> dict[str, bool]:
    """Structural invariants of the Fig 5 pipeline (used by tests).

    * every ``X(i)`` appears exactly once;
    * each processor's cells are time-ordered;
    * a row's partial at processor q starts only after the preceding
      processor on the ring finished its contribution to the same row.
    """
    x_counts: dict[int, int] = {}
    for c in cells:
        match = _X_RE.fullmatch(c.label)
        if match:
            i = int(match.group(1))
            x_counts[i] = x_counts.get(i, 0) + 1
    every_x_once = all(x_counts.get(i, 0) == 1 for i in range(1, m + 1))

    ordered = True
    for q in range(nprocs):
        lane = [c for c in cells if c.proc == q]
        ordered &= all(a.end <= b.start + 1e-9 for a, b in zip(lane, lane[1:]))

    # Row wavefront: contribution of row i at proc q happens after the
    # contribution at the ring predecessor that feeds it.
    row_events: dict[tuple[int, int], float] = {}
    for c in cells:
        match = re.match(r"A\((\d+),", c.label)
        if match:
            key = (int(match.group(1)), c.proc)
            # First contribution of this processor to this row.
            row_events[key] = min(row_events.get(key, c.start), c.start)
    block = m // nprocs
    wavefront = True
    for (i, q), t in row_events.items():
        owner = (i - 1) // block
        prev = (q - 1) % nprocs
        if q != owner and (i, prev) in row_events:
            wavefront &= row_events[(i, prev)] <= t + 1e-9
    return {
        "every_x_once": every_x_once,
        "per_proc_ordered": ordered,
        "row_wavefront": wavefront,
    }
