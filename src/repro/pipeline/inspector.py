"""Inspector–executor communication schedules for sparse kernels.

Dense kernels know their communication at compile time; a sparse
operator's traffic depends on an indirection array, so the classic
inspector/executor split applies (docs/SPARSE.md):

* the **inspector** walks the indirection structure *once* and
  precomputes a :class:`CommSchedule` — per-rank gather lists, pack and
  unpack index vectors, per-nnz local column positions — everything the
  communication and the local SpMV need;
* the **executor** (:func:`gather_ghosts` + :func:`spmv_local`) replays
  the schedule every iteration with **zero re-analysis**: no index
  arithmetic beyond applying the precomputed vectors, one aggregated
  message per neighbor pair, exactly ``schedule.gather_words`` words on
  the wire per sweep.

Schedules are a pure function of ``(pattern, placement)`` — building
twice yields bit-identical index vectors — and are content-addressed by
the placement digest, so they cache in the PR 7
:class:`~repro.service.cache.PlanCache` (:func:`cached_comm_schedule`):
a repeated sparsity pattern is served its schedule without re-running
the inspector, across services and processes.

:func:`inspector_exchange` additionally *measures* the inspector on the
simulated machine: each rank derives its needs from its own rows and
ships the request lists to their owners, bundling the per-neighbor
count+index messages through the PR 4 ``aggregate_words`` path, under
the ``sparse-inspect`` metrics scope.  The executor's traffic lands
under ``sparse-gather``, so measured words reconcile against the
schedule's analytic counts per scope (the ``sparse-redist-words``
band).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.distribution.sparse import SparsePlacement
from repro.errors import DistributionError
from repro.machine.engine import Proc
from repro.machine.nonblocking import NBComm, waitall
from repro.obs.context import stamp_current

#: Default tag bases; kernels may override to avoid collisions.
INSPECT_TAG = 900
GATHER_TAG = 920


@dataclass(frozen=True, eq=False)
class RankSchedule:
    """One rank's precomputed slice of a :class:`CommSchedule`."""

    rank: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    #: Sorted global operand indices this rank gathers (its halo).
    ghosts: np.ndarray
    #: ``(source, global indices)`` pairs, ascending source order.
    recv_from: tuple[tuple[int, np.ndarray], ...]
    #: ``(dest, global indices)`` pairs, ascending dest order.
    send_to: tuple[tuple[int, np.ndarray], ...]
    #: ``(dest, positions into the local operand block)`` — the pack
    #: vectors: ``x_loc[pack]`` is the exact payload for *dest*.
    pack: tuple[tuple[int, np.ndarray], ...]
    #: ``(source, positions into the ghost buffer)`` — the unpack
    #: vectors: ``ghosts[unpack] = payload`` lands values in place.
    unpack: tuple[tuple[int, np.ndarray], ...]
    #: Per-nonzero position into ``concat(owned block, ghosts)``.
    local_cols: np.ndarray
    #: Per-nonzero local row index (0-based within the row block).
    local_rows: np.ndarray

    @property
    def rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def owned(self) -> int:
        return self.col_hi - self.col_lo


@dataclass(frozen=True, eq=False)
class CommSchedule:
    """A replayable gather schedule for one (pattern, placement) pair.

    Immutable and pickleable; ``digest`` is the content address under
    which :func:`cached_comm_schedule` stores it.
    """

    nrows: int
    ncols: int
    nprocs: int
    digest: str
    ranks: tuple[RankSchedule, ...]

    # -- analytic cost-model entries (docs/SPARSE.md) -------------------
    @property
    def gather_words(self) -> int:
        """Words one executor sweep moves: one per (rank, ghost) pair."""
        return sum(len(r.ghosts) for r in self.ranks)

    @property
    def gather_messages(self) -> int:
        """Messages per sweep: one aggregated message per neighbor pair."""
        return sum(len(r.recv_from) for r in self.ranks)

    @property
    def inspector_words(self) -> int:
        """Words the on-machine inspector exchange moves (once).

        Every ordered rank pair ships a one-word request count; pairs
        with a nonempty request additionally ship the index list.
        """
        pairs = self.nprocs * (self.nprocs - 1)
        return pairs + self.gather_words

    def rank_schedule(self, rank: int) -> RankSchedule:
        if not (0 <= rank < self.nprocs):
            raise DistributionError(f"rank {rank} outside 0..{self.nprocs - 1}")
        return self.ranks[rank]

    def content_equal(self, other: "CommSchedule") -> bool:
        """Bit-level equality of every precomputed index vector."""
        if (self.nrows, self.ncols, self.nprocs, self.digest) != (
            other.nrows, other.ncols, other.nprocs, other.digest,
        ):
            return False
        for a, b in zip(self.ranks, other.ranks):
            if (a.rank, a.row_lo, a.row_hi, a.col_lo, a.col_hi) != (
                b.rank, b.row_lo, b.row_hi, b.col_lo, b.col_hi,
            ):
                return False
            pairs = [
                (a.ghosts, b.ghosts),
                (a.local_cols, b.local_cols),
                (a.local_rows, b.local_rows),
            ]
            for lists_a, lists_b in (
                (a.recv_from, b.recv_from), (a.send_to, b.send_to),
                (a.pack, b.pack), (a.unpack, b.unpack),
            ):
                if [p for p, _ in lists_a] != [p for p, _ in lists_b]:
                    return False
                pairs.extend(
                    (va, vb) for (_, va), (_, vb) in zip(lists_a, lists_b)
                )
            if any(va.tobytes() != vb.tobytes() for va, vb in pairs):
                return False
        return True

    def describe(self) -> str:
        return (
            f"CommSchedule[{self.nrows}x{self.ncols} on {self.nprocs} ranks: "
            f"{self.gather_words} gather words / {self.gather_messages} "
            f"messages per sweep, inspector {self.inspector_words} words]"
        )


def build_comm_schedule(placement: SparsePlacement) -> CommSchedule:
    """The inspector proper: one pass over the indirection structure.

    A pure function of ``(pattern, placement)``: equal digests imply
    bit-identical schedules (pinned by the hypothesis sweep in
    ``tests/test_inspector_executor.py``).
    """
    pat = placement.pattern
    nprocs = placement.nprocs
    col_owner = placement.col_owner
    # Pass 1: each rank's needs, grouped by owning neighbor.
    needs: list[list[tuple[int, np.ndarray]]] = []
    ghosts_per_rank: list[np.ndarray] = []
    for rank in range(nprocs):
        ghosts = placement.ghost_indices(rank)
        ghosts_per_rank.append(ghosts)
        owners = col_owner[ghosts] if len(ghosts) else ghosts
        needs.append(
            [(int(o), ghosts[owners == o]) for o in np.unique(owners)]
        )
    # Pass 2: mirror into send/pack lists on the owning side.
    send_lists: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(nprocs)]
    for rank, pairs in enumerate(needs):
        for owner, idx in pairs:
            send_lists[owner].append((rank, idx))
    ranks = []
    for rank in range(nprocs):
        row_lo, row_hi = placement.row_block(rank)
        col_lo, col_hi = placement.col_block(rank)
        ghosts = ghosts_per_rank[rank]
        recv_from = tuple(needs[rank])
        send_to = tuple(sorted(send_lists[rank], key=lambda pair: pair[0]))
        pack = tuple((dest, idx - col_lo) for dest, idx in send_to)
        unpack = tuple(
            (src, np.searchsorted(ghosts, idx)) for src, idx in recv_from
        )
        seg = pat.indices[pat.indptr[row_lo] : pat.indptr[row_hi]]
        owned = col_hi - col_lo
        in_block = (seg >= col_lo) & (seg < col_hi)
        local_cols = np.where(
            in_block, seg - col_lo, owned + np.searchsorted(ghosts, seg)
        ).astype(np.int64)
        local_rows = np.repeat(
            np.arange(row_hi - row_lo, dtype=np.int64),
            np.diff(pat.indptr[row_lo : row_hi + 1]),
        )
        ranks.append(
            RankSchedule(
                rank=rank, row_lo=row_lo, row_hi=row_hi,
                col_lo=col_lo, col_hi=col_hi, ghosts=ghosts,
                recv_from=recv_from, send_to=send_to,
                pack=pack, unpack=unpack,
                local_cols=local_cols, local_rows=local_rows,
            )
        )
    return CommSchedule(
        nrows=pat.nrows, ncols=pat.ncols, nprocs=nprocs,
        digest=placement.digest, ranks=tuple(ranks),
    )


def schedule_digest(placement: SparsePlacement) -> str:
    """The content address a schedule is cached under."""
    return placement.digest


def cached_comm_schedule(
    placement: SparsePlacement, cache=None
) -> tuple[CommSchedule, bool]:
    """Serve the placement's schedule through a PR 7 plan cache.

    Returns ``(schedule, hit)``; *cache* is any
    :class:`repro.service.cache.PlanCache`-shaped object (or ``None``
    to build uncached).  On a hit the inspector does not run at all —
    the whole point of content-addressing sparsity patterns.
    """
    if cache is None:
        return build_comm_schedule(placement), False
    key = schedule_digest(placement)
    found = cache.get(key)
    if isinstance(found, CommSchedule):
        return found, True
    schedule = build_comm_schedule(placement)
    cache.put(key, schedule)
    return schedule, False


# -- the on-machine inspector ------------------------------------------
def inspector_exchange(
    p: Proc,
    placement: SparsePlacement,
    tag_base: int = INSPECT_TAG,
    aggregate_words: int = 64,
) -> Generator:
    """Run the inspector as SPMD traffic and return the local schedule.

    Each rank derives its ghost needs from its *own* rows only (charging
    one flop per local nonzero for the pattern walk), then ships each
    owner the request list — a one-word count plus the index vector,
    coalesced into a single wire message per neighbor by the PR 4
    aggregation path.  The result is this rank's :class:`RankSchedule`,
    bit-identical to the offline :func:`build_comm_schedule` slice
    (asserted by the executor tests); traffic lands under the
    ``sparse-inspect`` scope for reconciliation against
    ``CommSchedule.inspector_words``.
    """
    schedule = build_comm_schedule(placement)
    local = schedule.rank_schedule(p.rank)
    nprocs = placement.nprocs
    if nprocs == 1:
        return local
    with p.scoped("sparse-inspect"):
        p.compute(len(local.local_cols), label="inspect")
        comm = NBComm(p, aggregate_words=aggregate_words)
        count_reqs = [
            comm.irecv(src, tag_base) for src in range(nprocs) if src != p.rank
        ]
        wanted = dict(local.recv_from)
        for dest in range(nprocs):
            if dest == p.rank:
                continue
            idx = wanted.get(dest)
            if idx is None:
                comm.isend(dest, 0, words=1, tag=tag_base)
            else:
                # Count + indices on one channel: with aggregation on,
                # both buffer and ship as one bundled wire message.
                comm.isend(dest, len(idx), words=1, tag=tag_base)
                comm.isend(dest, idx, words=len(idx), tag=tag_base)
        counts = yield from waitall(count_reqs)
        index_reqs = []
        sources = [src for src in range(nprocs) if src != p.rank]
        for src, count in zip(sources, counts):
            if count:
                index_reqs.append((src, comm.irecv(src, tag_base)))
        served: list[tuple[int, np.ndarray]] = []
        for src, req in index_reqs:
            idx = yield from req.wait()
            served.append((src, np.asarray(idx, dtype=np.int64)))
    served.sort(key=lambda pair: pair[0])
    expected = [(dest, idx.tobytes()) for dest, idx in local.send_to]
    if [(src, idx.tobytes()) for src, idx in served] != expected:
        raise DistributionError(
            f"rank {p.rank}: inspector exchange disagrees with the offline "
            "schedule — indirection arrays changed between build and run"
        )
    return local


# -- the executor -------------------------------------------------------
def gather_ghosts(
    p: Proc,
    local: RankSchedule,
    x_loc: np.ndarray,
    tag_base: int = GATHER_TAG,
    aggregate_words: int = 0,
) -> Generator:
    """Replay one gather sweep; returns the rank's ghost value buffer.

    Zero re-analysis: the pack/unpack vectors were precomputed by the
    inspector.  One message per neighbor pair, ``len(indices)`` words
    each, under the ``sparse-gather`` scope — so a run's measured scope
    words equal ``iterations * schedule.gather_words`` exactly.
    """
    ghosts = np.empty(len(local.ghosts), dtype=np.float64)
    if not local.recv_from and not local.send_to:
        return ghosts
    with p.scoped("sparse-gather"):
        comm = NBComm(p, aggregate_words=aggregate_words)
        reqs = [(src, pos, comm.irecv(src, tag_base)) for (src, _), (_, pos)
                in zip(local.recv_from, local.unpack)]
        for (dest, _), (_, pos) in zip(local.send_to, local.pack):
            payload = np.ascontiguousarray(x_loc[pos])
            comm.isend(dest, payload, words=len(pos), tag=tag_base)
        for _src, pos, req in reqs:
            values = yield from req.wait()
            ghosts[pos] = values
    return ghosts


def spmv_local(
    local: RankSchedule,
    data_loc: np.ndarray,
    x_loc: np.ndarray,
    ghosts: np.ndarray,
) -> np.ndarray:
    """Owner-computes rows: ``y_loc = A_loc @ concat(x_loc, ghosts)``.

    Per-row summation is unbuffered in CSR order — the same order as
    :func:`repro.sparse.csr.spmv_reference` — so the distributed result
    is bit-identical to the single-rank reference.
    """
    xcat = np.concatenate([x_loc, ghosts]) if len(ghosts) else np.asarray(
        x_loc, dtype=np.float64
    )
    y = np.zeros(local.rows)
    np.add.at(y, local.local_rows, data_loc * xcat[local.local_cols])
    return y


def stamp_sparse(
    metrics,
    schedule: CommSchedule,
    *,
    iterations: int,
    schedule_builds: int = 0,
    schedule_reuses: int = 0,
    inspector_runs: int = 0,
) -> None:
    """Fold one sparse run into ``Metrics.sparse`` (rank 0 stamps).

    Mirrors how the compile service stamps ``Metrics.service``: pure
    counters, rendered by :meth:`repro.machine.metrics.Metrics.sparse_table`
    and on their own Perfetto lane by
    :func:`repro.machine.export.sparse_lane_events`.
    """
    metrics.sparse.update(
        {
            "iterations": int(iterations),
            "gather_words_per_iter": schedule.gather_words,
            "gather_messages_per_iter": schedule.gather_messages,
            "inspector_words": schedule.inspector_words * int(inspector_runs),
            "inspector_runs": int(inspector_runs),
            "schedule_builds": int(schedule_builds),
            "schedule_reuses": int(schedule_reuses),
        }
    )
    # Sparse drivers stamp metrics after the engine returns, so runs
    # launched outside Plan.run still pick up the installed trace
    # context (harmless re-stamp of the same keys otherwise).
    stamp_current(metrics)
