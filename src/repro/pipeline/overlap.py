"""Overlap scheduling pass: rewrite halo-exchange sweeps for latency hiding.

Given a recognized :class:`repro.codegen.stencil.StencilPattern`, this
pass rewrites each sweep's loop body from the blocking shape

    exchange halos (send/recv) ; compute whole block

into the overlapped shape

    post irecv ; isend halos ; compute interior ; wait ; compute boundary

where the *interior* is the subrange of the block whose stencil windows
stay inside the local pad (no halo value needed), and the *boundary*
strips are the at-most-``hl + hr`` edge elements that must wait for the
transfers.  The pass output (:class:`OverlapSchedule`) is consumed by
:func:`repro.codegen.overlap.emit_stencil_overlap`, which prints the
rewritten SPMD listing, and doubles as the analytic cost model behind
``report.py --overlap``:

* per-sweep blocking time estimate: ``2 (alpha + w tc)`` per exchanged
  halo side (send + matching recv occupancy; the wire is hidden by the
  symmetric schedule) plus the whole-block compute;
* per-sweep overlapped time estimate: ``2 alpha`` per halo side (post +
  drain) plus the interior compute, plus any *exposed* wire time the
  interior is too short to hide, plus the boundary compute.

Safety: the rewrite is sound only when no statement reads, at a nonzero
offset, an array written earlier in the same sweep (the interior pass of
the reader would see stale boundary elements of the writer).  The
dependence filter in :func:`repro.codegen.stencil.match_stencil_sweep`
already rejects such sweeps (any cross-statement nonzero-offset read of
an in-sweep-written array is a loop-carried dependence), but the pass
re-checks and raises :class:`repro.errors.CodegenError` defensively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CodegenError
from repro.machine.model import MachineModel

if TYPE_CHECKING:  # avoid the codegen <-> pipeline import cycle at runtime
    from repro.codegen.stencil import StencilPattern, Sweep


@dataclass(frozen=True)
class HaloExchange:
    """One halo side of one array in one sweep.

    ``direction`` is the side of *this* rank's pad being filled:
    ``"left"`` means my left halo arrives from my left neighbor (so I
    isend my rightmost ``width`` elements rightward), ``"right"`` the
    mirror.  ``width`` is the halo width in elements (= message words).
    """

    array: str
    direction: str
    width: int


@dataclass(frozen=True)
class SweepOverlap:
    """The rewritten loop body of one sweep.

    ``margin_left``/``margin_right`` are the number of block-edge
    elements excluded from the interior pass (the max halo width any
    statement of the sweep reads on that side); ``flops_per_elem`` is
    the summed arithmetic op count of the sweep's statements.
    """

    index: int
    var: str
    exchanges: tuple[HaloExchange, ...]
    margin_left: int
    margin_right: int
    flops_per_elem: int

    @property
    def phases(self) -> tuple[str, ...]:
        """The rewritten body shape, in emission order."""
        if not self.exchanges:
            return ("compute",)
        return ("irecv", "isend", "interior", "wait", "boundary")

    # -- analytic per-sweep times (one interior rank, one time step) ----
    def time_blocking(self, model: MachineModel, cnt: int) -> float:
        comm = sum(
            2.0 * (model.alpha + ex.width * model.tc) for ex in self.exchanges
        )
        return comm + self.flops_per_elem * cnt * model.tf

    def time_overlapped(self, model: MachineModel, cnt: int) -> float:
        if not self.exchanges:
            return self.flops_per_elem * cnt * model.tf
        interior_elems = max(0, cnt - self.margin_left - self.margin_right)
        interior = self.flops_per_elem * interior_elems * model.tf
        boundary = self.flops_per_elem * (cnt - interior_elems) * model.tf
        posts = sum(model.alpha for _ in self.exchanges)
        drains = posts
        # Last transfer's wire time minus what the interior hides.
        wire = max(
            model.alpha + ex.width * model.tc for ex in self.exchanges
        )
        exposed = max(0.0, wire - interior)
        return posts + interior + exposed + drains + boundary

    def hidden(self, model: MachineModel, cnt: int) -> float:
        """Wire time the rewrite hides on this sweep (estimate)."""
        return self.time_blocking(model, cnt) - self.time_overlapped(model, cnt)


@dataclass(frozen=True)
class OverlapSchedule:
    """The overlap pass output for a whole stencil pattern."""

    pattern: StencilPattern
    sweeps: tuple[SweepOverlap, ...]

    def step_time_blocking(self, model: MachineModel, cnt: int) -> float:
        return sum(s.time_blocking(model, cnt) for s in self.sweeps)

    def step_time_overlapped(self, model: MachineModel, cnt: int) -> float:
        return sum(s.time_overlapped(model, cnt) for s in self.sweeps)

    def speedup(self, model: MachineModel, cnt: int) -> float:
        over = self.step_time_overlapped(model, cnt)
        return self.step_time_blocking(model, cnt) / over if over else 1.0


def _check_sound(sweep: Sweep) -> None:
    written: set[str] = set()
    for stmt in sweep.stmts:
        for name, off in stmt.offsets:
            if off != 0 and name in written:
                raise CodegenError(
                    f"overlap rewrite unsound: sweep over {sweep.var!r} reads "
                    f"{name}({sweep.var}{off:+d}) after writing {name} in the "
                    "same sweep"
                )
        written.add(stmt.lhs_array)


def overlap_schedule(pattern: StencilPattern) -> OverlapSchedule:
    """Rewrite every sweep of *pattern* into overlapped form."""
    halo = pattern.halo
    sweeps: list[SweepOverlap] = []
    for si, sweep in enumerate(pattern.sweeps):
        _check_sound(sweep)
        read = sorted({name for st in sweep.stmts for name, _ in st.offsets})
        exchanges: list[HaloExchange] = []
        margin_left = 0
        margin_right = 0
        for name in read:
            hl, hr = halo[name]
            if hl:
                exchanges.append(HaloExchange(name, "left", hl))
            if hr:
                exchanges.append(HaloExchange(name, "right", hr))
            margin_left = max(margin_left, hl)
            margin_right = max(margin_right, hr)
        flops = sum(_stmt_flops(st) for st in sweep.stmts)
        sweeps.append(
            SweepOverlap(
                index=si,
                var=sweep.var,
                exchanges=tuple(exchanges),
                margin_left=margin_left,
                margin_right=margin_right,
                flops_per_elem=flops,
            )
        )
    return OverlapSchedule(pattern=pattern, sweeps=tuple(sweeps))


def _stmt_flops(stmt) -> int:
    from repro.codegen.stencil import _count_ops

    return _count_ops(stmt.rhs)


def overlap_table(
    schedule: OverlapSchedule, model: MachineModel, cnt: int
) -> str:
    """Render the per-sweep rewrite decisions and analytic savings."""
    lines = [
        f"{'sweep':>5}  {'halos':>5}  {'margin':>6}  "
        f"{'T_block':>10}  {'T_overlap':>10}  {'hidden':>8}  phases"
    ]
    for s in schedule.sweeps:
        tb = s.time_blocking(model, cnt)
        to = s.time_overlapped(model, cnt)
        lines.append(
            f"{s.index + 1:>5}  {len(s.exchanges):>5}  "
            f"{s.margin_left}+{s.margin_right:<4}  "
            f"{tb:>10.1f}  {to:>10.1f}  {tb - to:>8.1f}  "
            f"{' -> '.join(s.phases)}"
        )
    tb = schedule.step_time_blocking(model, cnt)
    to = schedule.step_time_overlapped(model, cnt)
    lines.append(
        f"{'total':>5}  {'':>5}  {'':>6}  {tb:>10.1f}  {to:>10.1f}  "
        f"{tb - to:>8.1f}  speedup x{schedule.speedup(model, cnt):.3f}"
    )
    return "\n".join(lines)
