"""Index-processor mapping selection (paper §6, Table 5).

The §6 method maps iteration points to virtual processors with a row
vector ``pi`` (iteration ``I`` runs on PE ``pi . I``).  The mapping is
pinned by **owner computes**: an iteration must run on the processor that
owns the element it writes, so for each statement ``pi`` is the unit
vector of the loop variable driving the LHS's distributed subscript
(its first-dimension subscript under §6's row/element distributions).

With the per-statement mappings fixed, every communicated token is
classified by ``pi . e_v`` over its free-use directions
(:func:`repro.dependence.tokens.classify_token`):

* all zero — local (Table 5's ``(i-1) mod N`` column);
* a single ``+-1`` — pipelinable to a neighbor (Shift instead of
  OneToManyMulticast);
* anything else — a real multicast.

Because the paper distributes all arrays with the *same* cyclic function
``(index - 1) mod N``, the per-statement unit mappings are mutually
consistent: ``X(j)`` is computed at PE ``(j-1) mod N`` while the
accumulate runs at ``(i-1) mod N``, both instances of one virtual-PE
function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.tokens import TokenClass, TokenInfo, analyze_tokens, classify_token
from repro.errors import DependenceError
from repro.lang.ast import ArrayRef, DoLoop
from repro.util.tables import Table


def _owner_var(token: TokenInfo, lhs_dim: int = 0) -> str | None:
    """Loop variable driving the LHS's distributed subscript.

    Under §6's distributions the first array dimension is the distributed
    one; the owner variable is the unique nest variable in that
    subscript.  ``None`` when the LHS subscript is constant over the nest
    (the statement's placement is then not iteration-dependent).
    """
    lhs = token.site.stmt.lhs
    if not isinstance(lhs, ArrayRef) or lhs.rank <= lhs_dim:
        return None
    nest_vars = set(token.nest_vars)
    candidates = [v for v in lhs.subscripts[lhs_dim].variables() if v in nest_vars]
    if len(candidates) == 1:
        return candidates[0]
    return None


@dataclass(frozen=True)
class MappingChoice:
    """Per-statement owner-computes mappings for one loop nest."""

    var: str  # the dominant virtual-PE variable (for display)
    nest_vars: tuple[str, ...]
    rows: tuple[TokenClass, ...]
    broadcasts: int
    pipelines: int
    unaligned_writes: int

    def vector_for(self, nest_vars: tuple[str, ...]) -> tuple[int, ...]:
        """The row vector ``pi`` over *nest_vars* (paper's (0, 1, 0) style)."""
        return tuple(1 if v == self.var else 0 for v in nest_vars)

    def describe(self) -> str:
        return (
            f"owner-computes mapping (dominant PE variable {self.var!r}): "
            f"{self.pipelines} pipelined token(s), {self.broadcasts} broadcast(s)"
        )


def choose_mapping(
    nest: DoLoop,
    arrays: frozenset[str] | None = None,
    lhs_dim: int = 0,
) -> MappingChoice:
    """Derive the owner-computes mapping of *nest* and classify tokens.

    Raises :class:`~repro.errors.DependenceError` when the nest contains
    no array assignments to pin the mapping.
    """
    tokens = analyze_tokens(nest, arrays=arrays)
    rows: list[TokenClass] = []
    owner_counts: dict[str, int] = {}
    unaligned = 0
    for token in tokens:
        var = _owner_var(token, lhs_dim=lhs_dim)
        if var is None:
            unaligned += 1
            pi = tuple(0 for _ in token.nest_vars)
        else:
            owner_counts[var] = owner_counts.get(var, 0) + 1
            pi = tuple(1 if v == var else 0 for v in token.nest_vars)
        rows.append(classify_token(token, pi))
    if not owner_counts:
        raise DependenceError("nest has no iteration-driven array writes to map")
    dominant = max(owner_counts, key=lambda v: (owner_counts[v], v))
    broadcasts = sum(1 for r in rows if r.pattern == "broadcast")
    pipelines = sum(1 for r in rows if r.pattern == "pipeline")
    nest_vars: list[str] = []

    def visit(loop: DoLoop) -> None:
        if loop.var not in nest_vars:
            nest_vars.append(loop.var)
        for stmt in loop.body:
            if isinstance(stmt, DoLoop):
                visit(stmt)

    visit(nest)
    return MappingChoice(
        var=dominant,
        nest_vars=tuple(nest_vars),
        rows=tuple(rows),
        broadcasts=broadcasts,
        pipelines=pipelines,
        unaligned_writes=unaligned,
    )


def mapping_table(choices: list[MappingChoice], nprocs_symbol: str = "N") -> str:
    """Render Table 5: token, line, use family, mappings, used-in PEs."""
    table = Table(
        ["token", "line", "used in indices", "virtual-PE mapping",
         "dependence-vector mapping", "used in PEs"]
    )
    for choice in choices:
        for row in choice.rows:
            token = row.token
            pi_str = "(" + ", ".join(str(c) for c in row.mapping) + ")"
            idx = "(" + ", ".join(token.nest_vars) + ")^t"
            dots = ", ".join(str(d) for d in row.dots) if row.dots else "-"
            used = row.used_in_pes().replace("N", nprocs_symbol)
            mapped_var = [
                v for v, c in zip(token.nest_vars, row.mapping) if c == 1
            ]
            target = mapped_var[0] if mapped_var else "-"
            table.add_row(
                [
                    str(token.site.ref),
                    token.line,
                    token.use_family(),
                    f"{pi_str}{idx} = {target}",
                    dots,
                    used,
                ]
            )
    return table.render()
