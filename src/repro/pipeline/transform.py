"""Broadcast-to-Shift rewriting decisions (paper §6).

Given a nest, its token analysis and a chosen index-processor mapping,
decide for every token which communication it needs:

* ``none`` — producer and all consumers share a processor;
* ``shift`` — consumers advance one processor per use: pipeline with
  send/receive to the neighbor (the paper's substitution of
  OneToManyMulticast by Shift in Fig 8);
* ``multicast`` — irregular consumers: keep OneToManyMulticast.

:func:`pipeline_savings` prices the rewrite with the Table 1 primitives,
quantifying §6's "a naive compiler ... certainly incurs excessive
communication overhead".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.primitives import CommCosts
from repro.dependence.tokens import TokenClass
from repro.lang.ast import DoLoop
from repro.machine.model import MachineModel
from repro.pipeline.mapping import MappingChoice, choose_mapping
from repro.util.tables import Table


@dataclass(frozen=True)
class CommDecision:
    """Final communication choice for one token."""

    token_text: str
    line: int
    pattern: str  # "none", "shift", or "multicast"
    direction: int  # +1 toward increasing PE, -1 decreasing, 0 n/a

    def describe(self) -> str:
        if self.pattern == "none":
            return f"{self.token_text}: local (no communication)"
        if self.pattern == "shift":
            arrow = "right" if self.direction > 0 else "left"
            return f"{self.token_text}: pipeline (Shift {arrow})"
        return f"{self.token_text}: OneToManyMulticast"


def _decision(row: TokenClass) -> CommDecision:
    if row.pattern == "local":
        pattern, direction = "none", 0
    elif row.pattern == "pipeline":
        nz = [d for d in row.dots if d != 0]
        pattern, direction = "shift", (1 if nz[0] > 0 else -1)
    else:
        pattern, direction = "multicast", 0
    return CommDecision(
        token_text=str(row.token.site.ref),
        line=row.token.line,
        pattern=pattern,
        direction=direction,
    )


def pipeline_decisions(nest: DoLoop) -> tuple[MappingChoice, list[CommDecision]]:
    """Choose a mapping for *nest* and derive all token decisions."""
    choice = choose_mapping(nest)
    return choice, [_decision(row) for row in choice.rows]


@dataclass(frozen=True)
class TokenCost:
    token_text: str
    line: int
    pattern: str
    uses: float
    naive_cost: float
    pipelined_cost: float


def pipeline_savings(
    nest: DoLoop,
    env: dict[str, int],
    model: MachineModel,
    nprocs: int,
) -> tuple[list[TokenCost], float, float]:
    """Analytic naive-vs-pipelined communication cost per token.

    Naive: every non-local token instance is OneToManyMulticast to the
    ring; pipelined: each instance is received once and forwarded once
    per visited processor, but off the critical path — we charge the two
    endpoint transfers the owner-to-next-owner chain pays (``2 tc`` per
    word, §5's accounting).  Returns (rows, naive_total, pipelined_total).
    """
    costs = CommCosts(model)
    choice, decisions = pipeline_decisions(nest)
    rows: list[TokenCost] = []
    naive_total = 0.0
    pipe_total = 0.0
    for row, decision in zip(choice.rows, decisions):
        token = row.token
        # Count of distinct token instances: product of trip counts of the
        # *bound* variables (those appearing in the subscripts).
        bind = dict(env)
        uses = 1.0
        for loop in token.site.loops:
            lo = loop.lb.evaluate(bind)
            hi = loop.ub.evaluate(bind)
            trips = max(0, (abs(hi - lo) // abs(loop.step)) + 1)
            bind[loop.var] = (lo + hi) // 2
            if loop.var not in token.free_vars:
                uses *= trips
        if decision.pattern == "none":
            naive, pipe = 0.0, 0.0
        elif decision.pattern == "shift":
            naive = uses * costs.one_to_many(1, nprocs)
            pipe = uses * 2 * costs.shift(1)
        else:
            naive = uses * costs.one_to_many(1, nprocs)
            pipe = naive
        naive_total += naive
        pipe_total += pipe
        rows.append(
            TokenCost(
                token_text=str(token.site.ref),
                line=token.line,
                pattern=decision.pattern,
                uses=uses,
                naive_cost=naive,
                pipelined_cost=pipe,
            )
        )
    return rows, naive_total, pipe_total


def savings_table(rows: list[TokenCost]) -> str:
    table = Table(["token", "line", "pattern", "instances", "naive", "pipelined"])
    for r in rows:
        table.add_row(
            [r.token_text, r.line, r.pattern, f"{r.uses:g}",
             f"{r.naive_cost:g}", f"{r.pipelined_cost:g}"]
        )
    return table.render()
