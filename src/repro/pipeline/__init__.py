"""Pipelining (paper §5-§6): schedules, mappings, broadcast elimination."""

from repro.pipeline.mapping import MappingChoice, choose_mapping, mapping_table
from repro.pipeline.overlap import (
    HaloExchange,
    OverlapSchedule,
    SweepOverlap,
    overlap_schedule,
    overlap_table,
)
from repro.pipeline.sor_schedule import ScheduleCell, sor_schedule_from_trace
from repro.pipeline.transform import CommDecision, pipeline_decisions, pipeline_savings

__all__ = [
    "MappingChoice",
    "choose_mapping",
    "mapping_table",
    "ScheduleCell",
    "sor_schedule_from_trace",
    "CommDecision",
    "pipeline_decisions",
    "pipeline_savings",
    "HaloExchange",
    "OverlapSchedule",
    "SweepOverlap",
    "overlap_schedule",
    "overlap_table",
]
