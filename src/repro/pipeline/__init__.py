"""Pipelining and scheduling passes (paper §5-§6, plus irregular sweeps).

Affine passes: pipeline schedules/mappings and broadcast elimination,
stencil overlap rewriting.  Irregular pass: the inspector/executor
communication-schedule compiler (:mod:`repro.pipeline.inspector`,
docs/SPARSE.md).
"""

from repro.pipeline.inspector import (
    CommSchedule,
    RankSchedule,
    build_comm_schedule,
    cached_comm_schedule,
    gather_ghosts,
    inspector_exchange,
    schedule_digest,
    spmv_local,
    stamp_sparse,
)
from repro.pipeline.mapping import MappingChoice, choose_mapping, mapping_table
from repro.pipeline.overlap import (
    HaloExchange,
    OverlapSchedule,
    SweepOverlap,
    overlap_schedule,
    overlap_table,
)
from repro.pipeline.sor_schedule import (
    ScheduleCell,
    render_schedule,
    schedule_properties,
    sor_schedule_from_trace,
)
from repro.pipeline.transform import (
    CommDecision,
    TokenCost,
    pipeline_decisions,
    pipeline_savings,
    savings_table,
)

__all__ = [
    "MappingChoice",
    "choose_mapping",
    "mapping_table",
    "ScheduleCell",
    "sor_schedule_from_trace",
    "render_schedule",
    "schedule_properties",
    "CommDecision",
    "TokenCost",
    "pipeline_decisions",
    "pipeline_savings",
    "savings_table",
    "HaloExchange",
    "OverlapSchedule",
    "SweepOverlap",
    "overlap_schedule",
    "overlap_table",
    "RankSchedule",
    "CommSchedule",
    "build_comm_schedule",
    "schedule_digest",
    "cached_comm_schedule",
    "inspector_exchange",
    "gather_ghosts",
    "spmv_local",
    "stamp_sparse",
]
