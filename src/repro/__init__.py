"""repro — reproduction of Lee & Tsai, ICPP 1993.

*Compiling Efficient Programs for Tightly-Coupled Distributed Memory
Computers* (TR-93-004, Academia Sinica).

The library provides the paper's full compilation pipeline plus the
substrate it needs:

* :mod:`repro.lang` — Fortran-style Do-loop DSL and IR;
* :mod:`repro.machine` — deterministic distributed-memory simulator
  (processors, topologies, message passing, Table 1 collectives);
* :mod:`repro.distribution` — the generalized distribution functions of
  §2.1 (block/cyclic/replicated, increasing/decreasing, rotated 2-D);
* :mod:`repro.alignment` — component affinity graphs + alignment (§3);
* :mod:`repro.costmodel` — Table 1 primitive costs, closed forms, and the
  rule-based loop-nest estimator;
* :mod:`repro.dp` — Algorithm 1, the dynamic program over distribution
  schemes (§4);
* :mod:`repro.dependence` — dependence tests, distance vectors, and the
  per-token analysis of Table 5 (§6);
* :mod:`repro.pipeline` — pipelining: Fig 5 schedules, index-processor
  mappings, broadcast-to-shift rewriting (§5-§6);
* :mod:`repro.codegen` — SPMD code generation (Figs 6, 8);
* :mod:`repro.kernels` — sequential references and hand-written SPMD
  kernels used to validate everything end to end.

Quick start (the stable facade, :mod:`repro.api`)::

    from repro import compile, jacobi_program
    plan = compile(jacobi_program())
    result = plan.run(nprocs=4, env={"m": 32, "maxiter": 10})
    print(plan.explain())

The legacy top-level entry points (``compile_and_run``,
``solve_program_distribution``, ``generate_spmd``, ``run_spmd``) still
work but emit :class:`DeprecationWarning`; import them from
:mod:`repro.api`, :mod:`repro.dp`, :mod:`repro.codegen` and
:mod:`repro.machine` instead.
"""

from __future__ import annotations

import warnings

__version__ = "0.1.0"

from repro.errors import ReproError
from repro.lang import (
    gauss_program,
    jacobi_program,
    matmul_program,
    parse_program,
    program_to_text,
    sor_program,
)
from repro.machine import (
    Grid2D,
    Hypercube,
    Linear,
    MachineModel,
    Proc,
    Ring,
    RunResult,
)
from repro.distribution import Dist1D, Dist2D, Kind, Scheme
from repro.alignment import build_cag, exact_alignment, greedy_alignment
from repro.costmodel import CommCosts
from repro.dp import algorithm1
from repro.codegen import load_generated
from repro.api import Plan, compile

__all__ = [
    "__version__",
    "ReproError",
    "parse_program",
    "program_to_text",
    "jacobi_program",
    "sor_program",
    "gauss_program",
    "matmul_program",
    "MachineModel",
    "Proc",
    "RunResult",
    "run_spmd",
    "Ring",
    "Linear",
    "Grid2D",
    "Hypercube",
    "Dist1D",
    "Dist2D",
    "Kind",
    "Scheme",
    "build_cag",
    "exact_alignment",
    "greedy_alignment",
    "CommCosts",
    "algorithm1",
    "solve_program_distribution",
    "generate_spmd",
    "load_generated",
    "Plan",
    "compile",
    "compile_and_run",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_and_run(program, nprocs, env, model=None, inputs=None, seed=0):
    """Deprecated shim — use :func:`repro.api.compile_and_run` (or
    ``compile(program).run(...)``)."""
    from repro import api

    _deprecated("compile_and_run", "repro.api.compile_and_run")
    return api.compile_and_run(
        program, nprocs, env, model=model, inputs=inputs, seed=seed
    )


def solve_program_distribution(program, nprocs, env, model, **kwargs):
    """Deprecated shim — use :func:`repro.dp.solve_program_distribution`
    or :meth:`repro.api.Plan.solve`."""
    from repro.dp import phases

    _deprecated("solve_program_distribution", "repro.dp.solve_program_distribution")
    return phases.solve_program_distribution(program, nprocs, env, model, **kwargs)


def generate_spmd(program, strategy=None):
    """Deprecated shim — use :func:`repro.codegen.generate_spmd` or
    :func:`repro.api.compile`."""
    from repro.codegen import spmd

    _deprecated("generate_spmd", "repro.codegen.generate_spmd")
    return spmd.generate_spmd(program, strategy=strategy)


def run_spmd(program, topology, model=None, **kwargs):
    """Deprecated shim — use :func:`repro.machine.run_spmd` or
    :meth:`repro.api.Plan.run`."""
    from repro.machine import engine

    _deprecated("run_spmd", "repro.machine.run_spmd")
    return engine.run_spmd(program, topology, model, **kwargs)
