"""repro — reproduction of Lee & Tsai, ICPP 1993.

*Compiling Efficient Programs for Tightly-Coupled Distributed Memory
Computers* (TR-93-004, Academia Sinica).

The library provides the paper's full compilation pipeline plus the
substrate it needs:

* :mod:`repro.lang` — Fortran-style Do-loop DSL and IR;
* :mod:`repro.machine` — deterministic distributed-memory simulator
  (processors, topologies, message passing, Table 1 collectives);
* :mod:`repro.distribution` — the generalized distribution functions of
  §2.1 (block/cyclic/replicated, increasing/decreasing, rotated 2-D);
* :mod:`repro.alignment` — component affinity graphs + alignment (§3);
* :mod:`repro.costmodel` — Table 1 primitive costs, closed forms, and the
  rule-based loop-nest estimator;
* :mod:`repro.dp` — Algorithm 1, the dynamic program over distribution
  schemes (§4);
* :mod:`repro.dependence` — dependence tests, distance vectors, and the
  per-token analysis of Table 5 (§6);
* :mod:`repro.pipeline` — pipelining: Fig 5 schedules, index-processor
  mappings, broadcast-to-shift rewriting (§5-§6);
* :mod:`repro.codegen` — SPMD code generation (Figs 6, 8);
* :mod:`repro.kernels` — sequential references and hand-written SPMD
  kernels used to validate everything end to end.

Quick start::

    from repro import compile_and_run, jacobi_program
    result = compile_and_run(jacobi_program(), nprocs=4, env={"m": 32, "maxiter": 10})
"""

from __future__ import annotations

__version__ = "0.1.0"

from repro.errors import ReproError
from repro.lang import (
    gauss_program,
    jacobi_program,
    matmul_program,
    parse_program,
    program_to_text,
    sor_program,
)
from repro.machine import (
    Grid2D,
    Hypercube,
    Linear,
    MachineModel,
    Proc,
    Ring,
    RunResult,
    run_spmd,
)
from repro.distribution import Dist1D, Dist2D, Kind, Scheme
from repro.alignment import build_cag, exact_alignment, greedy_alignment
from repro.costmodel import CommCosts
from repro.dp import algorithm1, solve_program_distribution
from repro.codegen import generate_spmd, load_generated

__all__ = [
    "__version__",
    "ReproError",
    "parse_program",
    "program_to_text",
    "jacobi_program",
    "sor_program",
    "gauss_program",
    "matmul_program",
    "MachineModel",
    "Proc",
    "RunResult",
    "run_spmd",
    "Ring",
    "Linear",
    "Grid2D",
    "Hypercube",
    "Dist1D",
    "Dist2D",
    "Kind",
    "Scheme",
    "build_cag",
    "exact_alignment",
    "greedy_alignment",
    "CommCosts",
    "algorithm1",
    "solve_program_distribution",
    "generate_spmd",
    "load_generated",
    "compile_and_run",
]


def compile_and_run(
    program,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel | None = None,
    inputs: dict | None = None,
    seed: int = 0,
):
    """One-call pipeline: recognize, generate SPMD code, run, verify.

    Builds a random diagonally-dominant system when *inputs* is not given
    (keys depend on the program pattern: ``A``/``B``/``X0``/``omega``/
    ``iterations``).  Returns the :class:`~repro.machine.RunResult`.
    """
    import numpy as np

    from repro.codegen.patterns import (
        GaussPattern,
        IterativeSolvePattern,
        MatmulPattern,
    )
    from repro.kernels.linalg import make_spd_system

    model = model or MachineModel()
    gen = generate_spmd(program)
    fn = load_generated(gen)
    pat = gen.pattern
    if inputs is None:
        m = env.get("m", env.get("n", 16))
        if isinstance(pat, IterativeSolvePattern):
            A, b, _ = make_spd_system(m, seed=seed)
            inputs = {
                pat.A: A,
                pat.B: b,
                "X0": np.zeros(m),
                "iterations": env.get(pat.iterations, env.get("maxiter", 10)),
            }
            if pat.omega:
                inputs[pat.omega] = 1.1
        elif isinstance(pat, GaussPattern):
            A, b, _ = make_spd_system(m, seed=seed)
            inputs = {pat.A: A, pat.B: b}
        elif isinstance(pat, MatmulPattern):
            rng = np.random.default_rng(seed)
            inputs = {pat.left: rng.random((m, m)), pat.right: rng.random((m, m))}
        else:
            raise ReproError(
                f"compile_and_run cannot build default inputs for strategy "
                f"{gen.strategy!r}; pass inputs= explicitly"
            )
    if gen.strategy == "cannon":
        q = int(round(nprocs**0.5))
        return run_spmd(fn, Grid2D(q, q), model, args=(inputs,))
    return run_spmd(fn, Ring(nprocs), model, args=(inputs,))
