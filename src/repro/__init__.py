"""repro — reproduction of Lee & Tsai, ICPP 1993.

*Compiling Efficient Programs for Tightly-Coupled Distributed Memory
Computers* (TR-93-004, Academia Sinica).

The library provides the paper's full compilation pipeline plus the
substrate it needs:

* :mod:`repro.lang` — Fortran-style Do-loop DSL and IR;
* :mod:`repro.machine` — deterministic distributed-memory simulator
  (processors, topologies, message passing, Table 1 collectives);
* :mod:`repro.distribution` — the generalized distribution functions of
  §2.1 (block/cyclic/replicated, increasing/decreasing, rotated 2-D);
* :mod:`repro.alignment` — component affinity graphs + alignment (§3);
* :mod:`repro.costmodel` — Table 1 primitive costs, closed forms, and the
  rule-based loop-nest estimator;
* :mod:`repro.dp` — Algorithm 1, the dynamic program over distribution
  schemes (§4);
* :mod:`repro.dependence` — dependence tests, distance vectors, and the
  per-token analysis of Table 5 (§6);
* :mod:`repro.pipeline` — pipelining: Fig 5 schedules, index-processor
  mappings, broadcast-to-shift rewriting (§5-§6);
* :mod:`repro.codegen` — SPMD code generation (Figs 6, 8);
* :mod:`repro.service` — the compile service: content-addressed plan
  cache, front-end guests, batch + job-queue compilation;
* :mod:`repro.kernels` — sequential references and hand-written SPMD
  kernels used to validate everything end to end.

Quick start (the stable facade, :mod:`repro.api`)::

    from repro import Session, jacobi_program

    with Session() as session:
        res = session.compile(jacobi_program(), nprocs=4,
                              env={"m": 32, "maxiter": 10})
        result = res.run()
        print(res.explain())

or, stateless::

    from repro import compile_program
    plan = compile_program(jacobi_program())
    result = plan.run(4, {"m": 32, "maxiter": 10})

The pre-service top-level entry points (``compile_and_run``,
``solve_program_distribution``, ``generate_spmd``, ``run_spmd``) have
been removed; see the migration table in :mod:`repro.api` and
docs/API.md.
"""

from __future__ import annotations

__version__ = "0.2.0"

from repro.errors import ReproError
from repro.lang import (
    gauss_program,
    jacobi_program,
    matmul_program,
    parse_program,
    program_to_text,
    sor_program,
)
from repro.machine import (
    Grid2D,
    Hypercube,
    Linear,
    MachineModel,
    Proc,
    Ring,
    RunResult,
)
from repro.distribution import Dist1D, Dist2D, Kind, Scheme
from repro.alignment import build_cag, exact_alignment, greedy_alignment
from repro.costmodel import CommCosts
from repro.dp import algorithm1
from repro.codegen import load_generated
from repro.api import (
    CompileRequest,
    CompileResult,
    Plan,
    Session,
    compile_program,
)

__all__ = [
    "__version__",
    "ReproError",
    "parse_program",
    "program_to_text",
    "jacobi_program",
    "sor_program",
    "gauss_program",
    "matmul_program",
    "MachineModel",
    "Proc",
    "RunResult",
    "Ring",
    "Linear",
    "Grid2D",
    "Hypercube",
    "Dist1D",
    "Dist2D",
    "Kind",
    "Scheme",
    "build_cag",
    "exact_alignment",
    "greedy_alignment",
    "CommCosts",
    "algorithm1",
    "load_generated",
    "Plan",
    "Session",
    "CompileRequest",
    "CompileResult",
    "compile_program",
]
