"""Communication-primitive costs on the hypercube (paper Table 1).

+------------------------------+-------------------------+
| primitive                    | cost on hypercube       |
+==============================+=========================+
| Transfer(m)                  | O(m)                    |
| Shift(m)                     | O(m)                    |
| OneToManyMulticast(m, seq)   | O(m * log num(seq))     |
| Reduction(m, seq)            | O(m * log num(seq))     |
| AffineTransform(m, seq)      | O(m * log num(seq))     |
| Scatter(m, seq)              | O(m * num(seq))         |
| Gather(m, seq)               | O(m * num(seq))         |
| ManyToManyMulticast(m, seq)  | O(m * num(seq))         |
+------------------------------+-------------------------+

``m`` is the message size in words, ``num(seq)`` the number of processors
the collective spans.  We realize the O(.) shapes with unit constants and
the machine's per-word time ``tc`` (plus the optional per-message
``alpha``), which is exactly how the paper evaluates Table 2 and §4-§6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.machine.model import MachineModel


def _log2_ceil(n: int) -> int:
    """Number of rounds of a binomial/recursive-doubling algorithm."""
    if n < 1:
        raise CostModelError(f"processor count must be >= 1, got {n}")
    return max(0, math.ceil(math.log2(n)))


@dataclass(frozen=True)
class CommCosts:
    """Analytic primitive costs for a given :class:`MachineModel`."""

    model: MachineModel

    def _msg(self, words: float) -> float:
        return self.model.alpha + words * self.model.tc

    # -- point to point ---------------------------------------------------
    def transfer(self, m: float) -> float:
        """Transfer(m): one message of m words to another processor."""
        return self._msg(m)

    def shift(self, m: float) -> float:
        """Shift(m): circular shift among neighbors — one message each."""
        return self._msg(m)

    # -- logarithmic collectives -------------------------------------------
    def one_to_many(self, m: float, nprocs: int) -> float:
        """OneToManyMulticast(m, seq): binomial broadcast."""
        return _log2_ceil(nprocs) * self._msg(m)

    def reduction(self, m: float, nprocs: int) -> float:
        """Reduction(m, seq): binomial combine (comm cost only)."""
        return _log2_ceil(nprocs) * self._msg(m)

    def affine_transform(self, m: float, nprocs: int) -> float:
        """AffineTransform(m, seq): permutation routing, log-round cost."""
        return _log2_ceil(nprocs) * self._msg(m)

    # -- linear collectives -------------------------------------------------
    def scatter(self, m: float, nprocs: int) -> float:
        """Scatter(m, seq): root sends a distinct m-word message to each."""
        return max(0, nprocs - 1) * self._msg(m)

    def gather(self, m: float, nprocs: int) -> float:
        """Gather(m, seq): root receives an m-word message from each."""
        return max(0, nprocs - 1) * self._msg(m)

    def many_to_many(self, m: float, nprocs: int) -> float:
        """ManyToManyMulticast(m, seq): ring allgather, P-1 steps."""
        return max(0, nprocs - 1) * self._msg(m)

    # -- helpers used by the §3 formulas -------------------------------------
    def log2(self, nprocs: int) -> int:
        return _log2_ceil(nprocs)
