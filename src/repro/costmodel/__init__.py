"""Analytic cost model: Table 1 primitives, loop-nest costs, grid search."""

from repro.costmodel.bands import BANDS, SlackBand, check_ratio, get_band
from repro.costmodel.primitives import CommCosts
from repro.costmodel.formulas import (
    gauss_broadcast_time,
    gauss_pipelined_time,
    jacobi_dp_time,
    jacobi_section3_time,
    sor_naive_time,
    sor_pipelined_time,
)
from repro.costmodel.loopcost import CostTerm, LoopCost, estimate_loop_cost
from repro.costmodel.gridsearch import best_grid, grid_candidates
from repro.costmodel.sparse import (
    amortization_ratio,
    inspector_words,
    sparse_gather_words,
    spmv_sweep_time,
)

__all__ = [
    "BANDS",
    "SlackBand",
    "check_ratio",
    "get_band",
    "CommCosts",
    "jacobi_section3_time",
    "jacobi_dp_time",
    "sor_naive_time",
    "sor_pipelined_time",
    "gauss_broadcast_time",
    "gauss_pipelined_time",
    "CostTerm",
    "LoopCost",
    "estimate_loop_cost",
    "best_grid",
    "grid_candidates",
    "amortization_ratio",
    "inspector_words",
    "sparse_gather_words",
    "spmv_sweep_time",
]
