"""Grid-shape selection (§2.2, step two of Gupta & Banerjee's recipe).

After component alignment fixes *which* grid dimension each array
dimension maps to, the values ``N1, N2`` (with ``N1 * N2 = N``) are chosen
by minimizing the formulated total execution time — exactly how the paper
evaluates Table 2 and concludes ``N1 = N, N2 = 1`` for §4's scheme.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.costmodel.formulas import TimeBreakdown
from repro.errors import CostModelError


def grid_candidates(nprocs: int) -> list[tuple[int, int]]:
    """All factorizations ``N1 * N2 = nprocs`` in decreasing-N1 order."""
    if nprocs < 1:
        raise CostModelError(f"nprocs must be >= 1, got {nprocs}")
    pairs = []
    for n1 in range(nprocs, 0, -1):
        if nprocs % n1 == 0:
            pairs.append((n1, nprocs // n1))
    return pairs


def best_grid(
    nprocs: int,
    time_fn: Callable[[int, int], TimeBreakdown | float],
) -> tuple[tuple[int, int], float, list[tuple[tuple[int, int], float]]]:
    """Minimize ``time_fn(N1, N2)`` over factorizations of *nprocs*.

    Returns ``(best_shape, best_time, all_evaluations)``; ties break toward
    larger ``N1`` (the paper's preferred row-major orientation).
    """
    evaluations: list[tuple[tuple[int, int], float]] = []
    best_shape: tuple[int, int] | None = None
    best_time = float("inf")
    for shape in grid_candidates(nprocs):
        value = time_fn(*shape)
        total = value.total if isinstance(value, TimeBreakdown) else float(value)
        evaluations.append((shape, total))
        if total < best_time:
            best_time = total
            best_shape = shape
    assert best_shape is not None
    return best_shape, best_time, evaluations
