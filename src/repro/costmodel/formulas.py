"""Closed-form execution times from the paper.

Each function returns a :class:`TimeBreakdown` with separate computation
and communication components, so benchmarks can print Table 2-style rows.

Derivations (using the Table 1 primitive costs and writing ``log`` for
``ceil(log2)``):

* :func:`jacobi_section3_time` — §3's single global alignment
  ({A1, V} -> grid dim 1, {A2, B, X} -> grid dim 2) on an ``N1 x N2``
  grid::

      Time = 2 m^2/(N1 N2) tf + Reduction(m/N1, N2)          (line 5)
           + 3 m/N2 tf + N1 * OneToManyMulticast(m/N1, N2)   (line 8)
             (or N1 * Transfer(m/N1) when N2 = 1)
           + OneToManyMulticast(m, N1)                       (loop-carried X)

  which reproduces Table 2:
  ``(1, N)``: comp (2m^2/N + 3m/N) tf, comm 2 m log N tc;
  ``(N, 1)``: comp (2m^2/N + 3m) tf, comm (m + m log N) tc;
  ``(sqrt N, sqrt N)``: comp (2m^2/N + 3m/sqrt N) tf,
  comm (m log N)(1/2 + 1/sqrt N + 1/(2 sqrt N)) tc.

* :func:`jacobi_dp_time` — §4's per-loop schemes with the DP: grid
  ``(N, 1)``; ``Time1 = 2 m^2/N tf``, ``Time2 = 3 m/N tf``,
  ``CTime1 = 0``,
  ``CTime2 = ManyToManyMulticast(m/N, N) + OneToManyMulticast(m, 1)
  = m tc``.

* :func:`sor_naive_time` — §5's reduction-per-step schedule:
  ``(2 m^2/N + 4 m) tf + m (log N + 1) tc``.

* :func:`sor_pipelined_time` — §5's pipeline bound:
  ``(m + N)(2 (m/N) tf + 2 tc)``.

* :func:`gauss_broadcast_time` / :func:`gauss_pipelined_time` — §6.  The
  paper gives no closed form; we derive one from its naive-vs-pipelined
  discussion.  Triangularization does ``sum_k 2 (m-k)^2 / N ~ 2 m^3 / (3N)``
  flops (+ lower-order row work); the naive compiler broadcasts the pivot
  row and pivot B for every k (``sum_k OneToMany(m-k+1, N) ~
  (m^2/2 + 3m/2) log N``) and X(j) during back-substitution
  (``m log N``); the pipelined version replaces every multicast by a
  neighbor Shift, paying instead one send and one receive per datum
  (``2 tc`` per word) plus an O(N) pipeline-fill term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.costmodel.primitives import CommCosts
from repro.errors import CostModelError
from repro.machine.model import MachineModel


@dataclass(frozen=True)
class TimeBreakdown:
    """Computation/communication split of a predicted execution time."""

    comp: float
    comm: float
    terms: tuple[str, ...] = field(default_factory=tuple)

    @property
    def total(self) -> float:
        return self.comp + self.comm

    def __str__(self) -> str:
        return f"comp={self.comp:g} comm={self.comm:g} total={self.total:g}"


def _check(m: int, *procs: int) -> None:
    if m < 1:
        raise CostModelError(f"problem size must be >= 1, got {m}")
    for n in procs:
        if n < 1:
            raise CostModelError(f"processor count must be >= 1, got {n}")


def jacobi_section3_time(m: int, n1: int, n2: int, model: MachineModel) -> TimeBreakdown:
    """Per-iteration time of Jacobi under §3's global alignment on (N1, N2)."""
    _check(m, n1, n2)
    c = CommCosts(model)
    comp = (2.0 * m * m / (n1 * n2) + 3.0 * m / n2) * model.tf
    terms = [f"comp: (2m^2/{n1 * n2} + 3m/{n2}) tf"]
    comm = c.reduction(m / n1, n2)
    terms.append(f"Reduction({m}/{n1}, {n2})")
    if n2 == 1:
        if n1 > 1:
            comm += n1 * c.transfer(m / n1)
            terms.append(f"{n1} x Transfer({m}/{n1})")
    else:
        comm += n1 * c.one_to_many(m / n1, n2)
        terms.append(f"{n1} x OneToManyMulticast({m}/{n1}, {n2})")
    comm += c.one_to_many(m, n1)
    terms.append(f"OneToManyMulticast({m}, {n1}) [loop-carried X]")
    return TimeBreakdown(comp, comm, tuple(terms))


def jacobi_dp_time(m: int, n: int, model: MachineModel) -> TimeBreakdown:
    """Per-iteration time of Jacobi under §4's DP scheme (grid (N, 1)).

    ``(2 m^2/N + 3 m/N) tf + m tc`` — the paper's headline improvement.
    """
    _check(m, n)
    c = CommCosts(model)
    comp = (2.0 * m * m / n + 3.0 * m / n) * model.tf
    comm = c.many_to_many(m / n, n) + c.one_to_many(m, 1)
    return TimeBreakdown(
        comp,
        comm,
        (
            f"comp: (2m^2/{n} + 3m/{n}) tf",
            f"ManyToManyMulticast({m}/{n}, {n}) [loop-carried X]",
        ),
    )


def sor_naive_time(m: int, n: int, model: MachineModel) -> TimeBreakdown:
    """Per-iteration time of the naive SOR schedule (§5, grid (1, N))."""
    _check(m, n)
    c = CommCosts(model)
    comp = (2.0 * m * m / n + 4.0 * m) * model.tf
    comm = m * (c.reduction(1, n) + c.transfer(1))
    return TimeBreakdown(
        comp,
        comm,
        (
            f"comp: (2m^2/{n} + 4m) tf",
            f"{m} x (Reduction(1, {n}) + Transfer(1))",
        ),
    )


def sor_pipelined_time(m: int, n: int, model: MachineModel) -> TimeBreakdown:
    """§5's pipelined SOR bound ``(m + N)(2 (m/N) tf + 2 tc)``."""
    _check(m, n)
    steps = m + n
    comp = steps * (2.0 * m / n) * model.tf
    comm = steps * 2.0 * (model.alpha + model.tc)
    return TimeBreakdown(
        comp,
        comm,
        (f"(m + N) = {steps} steps x (2 (m/N) tf + 2 tc)",),
    )


def _gauss_comp(m: int, n: int, model: MachineModel) -> float:
    """Shared computation term of both Gauss variants.

    Triangularization: for each k, each of the ~(m-k)/N locally owned rows
    does 1 division + 2 ops on B + 2(m-k) ops on the row.  Back
    substitution: ~m^2/N multiply-adds + 2m scalar updates.
    """
    tri = sum((m - k) * (2 * (m - k) + 3) for k in range(1, m + 1)) / n
    back = (m * m / n) + 2.0 * m
    return (tri + back) * model.tf


def gauss_broadcast_time(m: int, n: int, model: MachineModel) -> TimeBreakdown:
    """Naive Gauss elimination: multicast pivot data at every step (§6)."""
    _check(m, n)
    c = CommCosts(model)
    comp = _gauss_comp(m, n, model)
    comm = sum(c.one_to_many(m - k + 2, n) for k in range(1, m + 1))  # pivot row + B(k)
    comm += m * c.one_to_many(1, n)  # X(j) broadcasts in back substitution
    return TimeBreakdown(
        comp,
        comm,
        (
            "sum_k OneToManyMulticast(m-k+2, N) [pivot row + B]",
            f"{m} x OneToManyMulticast(1, {n}) [X in back subst]",
        ),
    )


def gauss_pipelined_time(m: int, n: int, model: MachineModel) -> TimeBreakdown:
    """Pipelined Gauss: every multicast becomes a neighbor Shift (§6).

    Each pivot datum is received once and forwarded once per processor on
    the ring; the critical path pays ~2 endpoint costs per datum plus an
    O(N) pipeline-fill delay per wavefront.
    """
    _check(m, n)
    c = CommCosts(model)
    comp = _gauss_comp(m, n, model)
    comm = sum(2 * c.shift(m - k + 2) for k in range(1, m + 1))
    comm += m * 2 * c.shift(1)
    comm += n * c.shift(2)  # pipeline fill/drain
    return TimeBreakdown(
        comp,
        comm,
        (
            "sum_k 2 x Shift(m-k+2) [pivot row + B forwarded]",
            f"{m} x 2 x Shift(1) [X in back subst]",
            f"{n} x Shift(2) [pipeline fill]",
        ),
    )


def log2_ceil(n: int) -> int:
    """Convenience re-export used by benchmark tables."""
    if n < 1:
        raise CostModelError(f"log2 of {n}")
    return max(0, math.ceil(math.log2(n)))
