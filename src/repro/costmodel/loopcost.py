"""Rule-based cost estimation of a loop nest under a distribution scheme.

This is the compiler-side oracle feeding component-alignment edge weights
(§3) and the dynamic-programming tables ``M_{i,j}`` (§4).  Given a loop
nest, a :class:`~repro.distribution.schemes.Scheme`, a grid shape and the
machine model, it predicts computation and communication time using the
owner-computes rule and the Table 1 primitives.

Rules (derived from the paper's worked examples; see DESIGN.md):

* **computation** — flops of a statement times its execution count,
  divided by the product of grid extents over all grid dimensions that
  *split* the statement's iterations (a grid dimension splits when some
  reference's distributed dimension is subscripted by a loop variable);

* **reduction** — an accumulation statement (LHS appears identically in
  the RHS) whose RHS is subscripted by a loop variable absent from the
  LHS, along a distributed dimension, pays
  ``Reduction(lhs_block, N_g)`` (Jacobi line 5);

* **realignment** — an RHS reference whose distributed dimension is
  driven by a loop variable that drives an *LHS* dimension mapped to a
  different grid dimension pays
  ``N_src x OneToManyMulticast(block, N_dst)`` (Jacobi line 8);

* **offset shift** — same grid dimension but subscripts differing by a
  nonzero constant pays ``Shift(block)`` (stencil patterns);

* **pinned-element multicast** — an RHS element pinned to one position
  along grid dimension ``g`` but read by LHS owners spanning ``g``
  (a loop variable in the LHS's ``g``-subscript that is absent from the
  RHS reference) pays ``OneToManyMulticast(1, N_g)`` per distinct
  element (the naive Gauss broadcasts of §6).

Loops carrying a sequential dependence (e.g. SOR's ``i`` loop) must be
named in *sequential_vars*; their trip count multiplies the invocation
count of reductions/realignments while dividing the per-invocation
message size, reproducing §5's ``m x Reduction(1, N)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.primitives import CommCosts
from repro.distribution.schemes import Scheme
from repro.errors import CostModelError
from repro.lang.ast import ArrayRef, Assign, DoLoop, Stmt, array_refs, walk_exprs
from repro.lang.ast import BinOp, Call, UnaryOp
from repro.machine.model import MachineModel


@dataclass(frozen=True)
class CostTerm:
    """One cost contribution, printable in the paper's notation."""

    kind: str  # "comp" or "comm"
    description: str
    cost: float
    line: int = -1

    def __str__(self) -> str:
        loc = f" (line {self.line})" if self.line >= 0 else ""
        return f"{self.description}{loc} = {self.cost:g}"


@dataclass
class LoopCost:
    """Estimated cost of one loop nest under one scheme."""

    comp: float = 0.0
    comm: float = 0.0
    terms: list[CostTerm] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.comp + self.comm

    def add(self, term: CostTerm) -> None:
        self.terms.append(term)
        if term.kind == "comp":
            self.comp += term.cost
        else:
            self.comm += term.cost


def _count_flops(expr) -> int:
    """Arithmetic operations in an expression tree."""
    flops = 0
    for node in walk_exprs(expr):
        if isinstance(node, (BinOp, Call)):
            flops += 1
        elif isinstance(node, UnaryOp) and node.op == "-":
            flops += 1
    return flops


@dataclass(frozen=True)
class _LoopInfo:
    var: str
    trips: float


def _loop_chain_info(loops: tuple[DoLoop, ...], env: dict[str, int]) -> list[_LoopInfo]:
    """Average trip count per loop, binding outer vars to their midpoints."""
    bind = dict(env)
    infos: list[_LoopInfo] = []
    for loop in loops:
        lo = loop.lb.evaluate(bind)
        hi = loop.ub.evaluate(bind)
        if loop.step > 0:
            trips = max(0, (hi - lo) // loop.step + 1)
        else:
            trips = max(0, (lo - hi) // (-loop.step) + 1)
        infos.append(_LoopInfo(loop.var, float(trips)))
        bind[loop.var] = (lo + hi) // 2  # midpoint for inner triangular bounds
    return infos


def _grid_extent(grid: tuple[int, int], g: int) -> int:
    if g == 1:
        return grid[0]
    if g == 2:
        return grid[1]
    raise CostModelError(f"grid dimension must be 1 or 2, got {g}")


def estimate_loop_cost(
    nest: DoLoop | list[Stmt],
    scheme: Scheme,
    grid: tuple[int, int],
    env: dict[str, int],
    model: MachineModel,
    sequential_vars: frozenset[str] | set[str] = frozenset(),
) -> LoopCost:
    """Estimate the cost of executing *nest* once under *scheme*."""
    costs = CommCosts(model)
    result = LoopCost()
    stmts = nest.body if isinstance(nest, DoLoop) else list(nest)
    outer = (nest,) if isinstance(nest, DoLoop) else ()
    _walk(stmts, outer, scheme, grid, env, model, costs, sequential_vars, result)
    return result


def _walk(
    stmts: list[Stmt],
    loops: tuple[DoLoop, ...],
    scheme: Scheme,
    grid: tuple[int, int],
    env: dict[str, int],
    model: MachineModel,
    costs: CommCosts,
    sequential_vars: frozenset[str] | set[str],
    result: LoopCost,
) -> None:
    for stmt in stmts:
        if isinstance(stmt, DoLoop):
            _walk(
                stmt.body, loops + (stmt,), scheme, grid, env, model, costs,
                sequential_vars, result,
            )
        elif isinstance(stmt, Assign) and isinstance(stmt.lhs, ArrayRef):
            _cost_assign(stmt, loops, scheme, grid, env, model, costs, sequential_vars, result)


def _distinct_elements(ref: ArrayRef, infos: dict[str, float]) -> float:
    """Distinct elements of *ref* touched over the nest (product of trips)."""
    seen_vars: set[str] = set()
    total = 1.0
    for sub in ref.subscripts:
        for var in sub.variables():
            if var in infos and var not in seen_vars:
                seen_vars.add(var)
                total *= infos[var]
    return total


def _cost_assign(
    stmt: Assign,
    loops: tuple[DoLoop, ...],
    scheme: Scheme,
    grid: tuple[int, int],
    env: dict[str, int],
    model: MachineModel,
    costs: CommCosts,
    sequential_vars: frozenset[str] | set[str],
    result: LoopCost,
) -> None:
    lhs = stmt.lhs
    assert isinstance(lhs, ArrayRef)
    infos = {i.var: i.trips for i in _loop_chain_info(loops, env)}
    loop_vars = set(infos)
    executions = 1.0
    for trips in infos.values():
        executions *= trips

    known = set(scheme.arrays())
    refs = [r for r in array_refs(stmt.rhs) if r.name in known]
    if lhs.name not in known:
        return
    lhs_place = scheme.placement(lhs.name)

    # ---- computation ---------------------------------------------------
    # Owner computes: the work of a statement is split across the grid
    # dimensions its LHS owners span.  An accumulation additionally splits
    # across grid dimensions driven by its reduction variables (partial
    # sums computed where the RHS data lives, then combined) — this is how
    # the paper gets 2 m^2/(N1 N2) for Jacobi's line 5.
    flops = _count_flops(stmt.rhs)
    is_accum_stmt = any(
        r.name == lhs.name and r.subscripts == lhs.subscripts for r in refs
    )
    lhs_sub_vars: set[str] = set()
    for sub in lhs.subscripts:
        lhs_sub_vars |= set(sub.variables()) & loop_vars
    split_dims: set[int] = set()
    for d, g in enumerate(lhs_place.dim_map):
        if g is None or _grid_extent(grid, g) <= 1:
            continue
        if lhs.subscripts[d].variables() & loop_vars:
            split_dims.add(g)
    if is_accum_stmt:
        for ref in refs:
            if ref.name == lhs.name:
                continue
            place = scheme.placement(ref.name)
            for d, g in enumerate(place.dim_map):
                if g is None or _grid_extent(grid, g) <= 1:
                    continue
                sub_vars = ref.subscripts[d].variables() & loop_vars
                if sub_vars and not (sub_vars & lhs_sub_vars):
                    split_dims.add(g)  # reduction variable dimension
    split = 1.0
    for g in split_dims:
        split *= _grid_extent(grid, g)
    if flops:
        comp = flops * executions / split * model.tf
        result.add(
            CostTerm(
                "comp",
                f"{flops} flops x {executions:g} iters / {split:g} procs",
                comp,
                stmt.line,
            )
        )

    # ---- LHS-distributed loop variables and their grid dims -------------
    lhs_var_dims: dict[str, int] = {}
    for d, g in enumerate(lhs_place.dim_map):
        if g is None or _grid_extent(grid, g) <= 1:
            continue
        for var in lhs.subscripts[d].variables():
            if var in loop_vars:
                lhs_var_dims[var] = g

    seq_factor = 1.0
    for var in sequential_vars:
        if var in infos:
            seq_factor *= infos[var]

    lhs_distinct = _distinct_elements(lhs, infos)
    lhs_procs = 1.0
    for g in {g for g in lhs_var_dims.values()}:
        lhs_procs *= _grid_extent(grid, g)

    # ---- reduction rule --------------------------------------------------
    if is_accum_stmt:
        red_dims: set[int] = set()
        for ref in refs:
            if ref.name == lhs.name:
                continue
            place = scheme.placement(ref.name)
            for d, g in enumerate(place.dim_map):
                if g is None or _grid_extent(grid, g) <= 1:
                    continue
                for var in ref.subscripts[d].variables():
                    if var in loop_vars and var not in lhs_var_dims and not any(
                        var in s.variables() for s in lhs.subscripts
                    ):
                        red_dims.add(g)
        for g in red_dims:
            n = _grid_extent(grid, g)
            words = max(lhs_distinct / max(lhs_procs, 1.0) / seq_factor, 1.0)
            cost = seq_factor * costs.reduction(words, n)
            result.add(
                CostTerm(
                    "comm",
                    f"{seq_factor:g} x Reduction({words:g}, {n})",
                    cost,
                    stmt.line,
                )
            )

    lhs_undistributed = not lhs_var_dims

    # ---- per-RHS-reference rules ------------------------------------------
    for ref in refs:
        if ref.name == lhs.name and ref.subscripts == lhs.subscripts:
            continue
        place = scheme.placement(ref.name)
        for d, g in enumerate(place.dim_map):
            if g is None:
                continue
            n_src = _grid_extent(grid, g)
            if n_src <= 1:
                continue
            sub = ref.subscripts[d]
            sub_vars = sub.variables() & loop_vars

            # Reduction variables are handled by the reduction rule above:
            # the operand stays where it is and partial sums travel.
            reduction_only = is_accum_stmt and sub_vars and not (sub_vars & lhs_sub_vars)

            # LHS work is replicated (no distributed owner dimension): the
            # distributed operand must be gathered everywhere first.
            if lhs_undistributed and sub_vars and not reduction_only:
                distinct = _distinct_elements(ref, infos)
                words = max(distinct / n_src / seq_factor, 1.0)
                cost = seq_factor * costs.many_to_many(words, n_src)
                result.add(
                    CostTerm(
                        "comm",
                        f"{seq_factor:g} x ManyToManyMulticast({words:g}, {n_src})",
                        cost,
                        stmt.line,
                    )
                )
                continue

            # pinned-element multicast (naive Gauss broadcasts)
            lhs_spans_g = any(
                gg == g and var not in sub_vars
                for var, gg in lhs_var_dims.items()
            )
            if lhs_spans_g:
                distinct = _distinct_elements(ref, infos)
                cost = distinct * costs.one_to_many(1, n_src)
                result.add(
                    CostTerm(
                        "comm",
                        f"{distinct:g} x OneToManyMulticast(1, {n_src})",
                        cost,
                        stmt.line,
                    )
                )
                continue

            # alignment with an LHS dimension driven by the same variable
            for var in sub_vars:
                g_lhs = lhs_var_dims.get(var)
                if g_lhs is None:
                    continue  # reduction variable or LHS-undistributed: local
                if g_lhs == g:
                    # same grid dimension: check subscript offset
                    for dl, gl in enumerate(lhs_place.dim_map):
                        if gl != g:
                            continue
                        diff = sub - lhs.subscripts[dl]
                        if diff.is_constant and diff.const != 0:
                            distinct = _distinct_elements(ref, infos)
                            words = max(distinct / n_src / seq_factor, 1.0)
                            cost = seq_factor * costs.shift(words)
                            result.add(
                                CostTerm(
                                    "comm",
                                    f"{seq_factor:g} x Shift({words:g})",
                                    cost,
                                    stmt.line,
                                )
                            )
                else:
                    # realignment across grid dimensions
                    n_dst = _grid_extent(grid, g_lhs)
                    distinct = _distinct_elements(ref, infos)
                    words = max(distinct / n_src / seq_factor, 1.0)
                    if n_dst > 1:
                        per = costs.one_to_many(words, n_dst)
                        desc = (
                            f"{seq_factor * n_src:g} x "
                            f"OneToManyMulticast({words:g}, {n_dst})"
                        )
                    else:
                        per = costs.transfer(words)
                        desc = f"{seq_factor * n_src:g} x Transfer({words:g})"
                    cost = seq_factor * n_src * per
                    result.add(CostTerm("comm", desc, cost, stmt.line))
