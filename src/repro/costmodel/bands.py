"""Central registry of measured-vs-analytic slack bands (the drift oracle).

The paper's whole argument is that its analytic cost model (Table 1
primitives, the §3 grid formulas, the §4 DP chains, the §5 pipeline
times) predicts machine behavior.  Several parts of the repo reconcile a
*measured* number against an *analytic* prediction and accept a
documented ratio band; before ISSUE 5 those bands lived ad hoc in
``repro.dp.validate`` (redistribution word counts) and
``repro.tools.report`` (overlap makespans).  This module is the single
home: every band has a name, bounds and a rationale, and the bench
harness (:mod:`repro.tools.bench`) asserts each benchmark record against
its registered band so cost-model drift fails loudly *by name*.

Bounds are calibrated from the committed artifacts in
``benchmarks/artifacts/`` and leave margin on both sides; the rationale
strings say where each asymmetry comes from (usually the simulator
charging ``tc`` per word at both endpoints of a transfer, which the
one-sided Table 1 forms do not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CostModelError


@dataclass(frozen=True)
class SlackBand:
    """A named acceptance band for a measured/analytic ratio."""

    name: str
    lower: float
    upper: float
    rationale: str

    def check(self, ratio: float) -> bool:
        return self.lower <= ratio <= self.upper

    def describe(self) -> str:
        return f"{self.name} [{self.lower:g}x .. {self.upper:g}x]"


#: Redistribution word counts: exact literal lowerings of Table 1
#: primitives (migrated from ``repro.dp.validate``).  Lower bound 1.0 —
#: the lowering can never move fewer words than the analytic volume;
#: upper 2.0 — tree collectives pay at most one extra traversal
#: (see docs/REDISTRIBUTION.md; observed 1.000-1.875 in X8).
REDIST_WORDS = SlackBand(
    "redist-words",
    1.0,
    2.0,
    "literal lowerings move >= the analytic volume; tree collectives pay "
    "at most one extra traversal (docs/REDISTRIBUTION.md)",
)

#: Overlapped-kernel makespans vs the blocking twin on the
#: ``overlap=True`` model (migrated from ``repro.tools.report``).
#: The ring Jacobi twins have identical event sequences (ratio exactly
#: 1); the stencil/SOR rewrites reorder compute, landing 0.83-0.96
#: across alpha in {10, 100} (docs/OVERLAP.md).
OVERLAP_MAKESPAN = SlackBand(
    "overlap-makespan",
    0.75,
    1.10,
    "software latency hiding vs the analytic overlap=True prediction; "
    "interior/boundary reordering can beat or trail it (docs/OVERLAP.md)",
)

#: Table 1 primitive makespans on the simulated hypercube vs the
#: one-sided analytic forms.  The engine charges tc at both endpoints
#: (ratio ~2), Reduction adds per-level combine flops (3.0),
#: AffineTransform's analytic form prices the worst-case permutation
#: while the benchmarked rotation is a single shift (0.5).
PRIMITIVE_MAKESPAN = SlackBand(
    "primitive-makespan",
    0.4,
    3.5,
    "two-endpoint tc charging (~2x), reduce combine flops (3x), "
    "single-shift affine rotation (0.5x) — see table1_primitives",
)

#: §3 Jacobi grid-shape totals (Table 2): the simulator resolves the
#: blocked waiting the analytic forms fold into 'communication', so the
#: (1, N) shape lands ~2x the analytic total while the wait-free (N, 1)
#: shape lands ~0.45x.
JACOBI_GRID_MAKESPAN = SlackBand(
    "jacobi-grid-makespan",
    0.3,
    2.5,
    "analytic grid forms ignore blocked waits; observed 0.44-2.0 across "
    "the three Table 2 shapes",
)

#: §4 DP chain for Jacobi: simulated row-block kernel vs the
#: ``jacobi_dp_time`` prediction (X1 asserts 0.5-2.0; observed 1.19-1.53).
JACOBI_DP_MAKESPAN = SlackBand(
    "jacobi-dp-makespan",
    0.5,
    2.0,
    "row-block kernel vs the DP's per-iteration prediction; allgather "
    "costs land on both endpoints (X1)",
)

#: §5 pipelined SOR: simulated per-iteration time vs
#: ``sor_pipelined_time`` (observed 1.07-1.21 across the X2 sweep; the
#: kernel appends a final allgather the analytic form omits).
SOR_PIPELINE_MAKESPAN = SlackBand(
    "sor-pipeline-makespan",
    0.9,
    1.5,
    "pipeline fill/drain plus the appended result allgather (X2)",
)

#: §5 naive SOR: simulated vs ``sor_naive_time`` (observed 1.20-1.60;
#: the log-factor reductions serialize worse than the analytic form).
SOR_NAIVE_MAKESPAN = SlackBand(
    "sor-naive-makespan",
    1.0,
    2.0,
    "per-row log-N reductions serialize; analytic form is a lower "
    "envelope (X2)",
)

#: §6 generated cyclic-pipeline Gauss vs ``gauss_pipelined_time``: the
#: generated program also pays back-substitution and two-endpoint word
#: charges the forward-elimination analytic form omits (observed
#: 1.39-2.06 across the Fig 8 sweep, growing with the ring width).
GAUSS_PIPELINE_MAKESPAN = SlackBand(
    "gauss-pipeline-makespan",
    1.2,
    2.5,
    "generated program adds back-substitution and two-endpoint word "
    "charges over the forward-elimination analytic form (Fig 8)",
)

#: Compile service (X11): cold-batch wall time over warm-batch wall time
#: on the same corpus.  A warm compile is canonicalize + two cache
#: fetches and skips alignment, the DP and codegen entirely, so the
#: floor is a hard 10x; the ceiling is loose because both sides are
#: wall-clock (observed ~20-40x locally).
COMPILE_WARM_SPEEDUP = SlackBand(
    "compile-warm-speedup",
    10.0,
    10000.0,
    "warm compiles skip alignment/DP/codegen; canonicalize + unpickle "
    "must be >= 10x cheaper than a full compile (X11)",
)

#: Compile service (X11): warm-pass cache hit rate over the expected
#: 1.0.  Recompiling an unchanged corpus must hit on every plan *and*
#: every solve lookup — anything below 1.0 means the content address is
#: unstable (canonicalization drift) and the band names it.
COMPILE_HIT_RATE = SlackBand(
    "compile-hit-rate",
    1.0,
    1.0,
    "recompiling an unchanged corpus must hit on every lookup; a miss "
    "means the canonical digest is unstable (X11)",
)

#: Compile service (X12): crash-drill wall time over crash-free wall
#: time on the same corpus through the supervised worker pool.  Lower
#: bound below 1.0 because both sides are wall-clock and the clean run
#: can be the noisier one; the ceiling bounds the cost of detection +
#: respawn backoff + retry for a handful of injected SIGKILLs — if a
#: crash drill blows past 25x, supervision itself regressed (e.g. a
#: respawn storm or an unbounded backoff).
SERVICE_CRASH_OVERHEAD = SlackBand(
    "service-crash-overhead",
    0.5,
    25.0,
    "detect + capped-backoff respawn + retry for injected worker kills; "
    "wall-clock on both sides (X12)",
)

#: Sparse executor (X13): measured ``sparse-gather`` scope words over
#: the schedule's analytic gather volume.  The executor sends exactly
#: the precomputed pack vectors — one message per neighbor pair,
#: ``len(indices)`` words each — so the ratio is 1.0 by construction;
#: any drift means the executor re-derived (or padded) traffic the
#: inspector did not plan, which is precisely the contract violation
#: this band names (docs/SPARSE.md).
SPARSE_REDIST_WORDS = SlackBand(
    "sparse-redist-words",
    1.0,
    1.0,
    "the executor replays precomputed pack vectors verbatim; measured "
    "scope words must equal the schedule's gather volume exactly (X13)",
)

#: Sparse inspector amortization (X13): makespan of the naive
#: re-inspect-every-sweep strawman over the inspect-once + replay
#: executor on the same k-iteration SpMV.  Every sweep the strawman
#: repeats the pattern-walk flops and the P*(P-1)-pair request
#: exchange, so it must be strictly slower; the ceiling is loose
#: because the advantage grows with iteration count and density
#: (observed 1.14-1.48 across k in {1, 4, 8} at X13's shape).
INSPECTOR_AMORTIZATION = SlackBand(
    "inspector-amortization",
    1.1,
    20.0,
    "re-inspecting per sweep repeats the pattern walk and the "
    "all-pairs request exchange that inspect-once amortizes (X13)",
)

#: Wait-attribution coverage (X14, docs/OBSERVABILITY.md): the share of
#: total blocked-wait seconds the diagnostics pass
#: (:func:`repro.obs.diagnose.attribute_waits`) pins on a *named* cause
#: — an injected channel fault, a crashed/deadline-killed peer, or a
#: straggling/blocked sender.  Every wait in a simulated trace has a
#: recorded sender-side history, so on the chaos Jacobi drill coverage
#: must reach at least 0.9; residual unattributed time is limited to
#: boundary intervals where the blamed lane shows no activity at all.
WAIT_ATTRIBUTION = SlackBand(
    "wait-attribution",
    0.9,
    1.0,
    "every simulated wait has a recorded sender-side history, so the "
    "attribution pass must explain >= 90% of idle time by name (X14)",
)

BANDS: dict[str, SlackBand] = {
    band.name: band
    for band in (
        REDIST_WORDS,
        OVERLAP_MAKESPAN,
        PRIMITIVE_MAKESPAN,
        JACOBI_GRID_MAKESPAN,
        JACOBI_DP_MAKESPAN,
        SOR_PIPELINE_MAKESPAN,
        SOR_NAIVE_MAKESPAN,
        GAUSS_PIPELINE_MAKESPAN,
        COMPILE_WARM_SPEEDUP,
        COMPILE_HIT_RATE,
        SERVICE_CRASH_OVERHEAD,
        SPARSE_REDIST_WORDS,
        INSPECTOR_AMORTIZATION,
        WAIT_ATTRIBUTION,
    )
}


def get_band(name: str) -> SlackBand:
    """Look up a registered band; unknown names raise CostModelError."""
    try:
        return BANDS[name]
    except KeyError:
        raise CostModelError(
            f"unknown slack band {name!r}; registered: {', '.join(sorted(BANDS))}"
        ) from None


def check_ratio(name: str, ratio: float) -> bool:
    return get_band(name).check(ratio)
