"""Analytic cost-model entries for the sparse inspector/executor path.

Dense entries (:mod:`repro.costmodel.formulas`) are closed forms in the
problem size; sparse costs are functions of the *schedule* — the
inspector already counted every word the executor will move, so the
analytic predictions here read counts straight off the
:class:`~repro.pipeline.inspector.CommSchedule` rather than estimating
them.  That is what makes the ``sparse-redist-words`` band exact (ratio
1.0): the "model" and the executor share one source of truth, and the
band's job is to detect them drifting apart (docs/SPARSE.md).
"""

from __future__ import annotations

from repro.costmodel.formulas import TimeBreakdown
from repro.errors import CostModelError
from repro.machine.model import MachineModel
from repro.pipeline.inspector import CommSchedule


def sparse_gather_words(schedule: CommSchedule, iterations: int = 1) -> int:
    """Words the executor moves over *iterations* sweeps (exact)."""
    if iterations < 1:
        raise CostModelError(f"iterations must be >= 1, got {iterations}")
    return iterations * schedule.gather_words


def inspector_words(schedule: CommSchedule) -> int:
    """Words the one-shot on-machine inspector exchange moves (exact)."""
    return schedule.inspector_words


def spmv_sweep_time(
    schedule: CommSchedule, nnz: int, model: MachineModel | None = None
) -> TimeBreakdown:
    """Predicted time of one executor SpMV sweep.

    Computation is the owner-computes bound ``2 nnz/P tf`` on the most
    loaded rank; communication charges each of that rank's neighbor
    messages an ``alpha`` post plus two-endpoint ``tc`` per word (the
    simulator charges the wire at both ends, like the dense benches).
    """
    model = model or MachineModel()
    if nnz < 0:
        raise CostModelError(f"nnz must be nonnegative, got {nnz}")
    busiest_comp = max(len(r.local_rows) for r in schedule.ranks)
    busiest = max(
        schedule.ranks,
        key=lambda r: sum(len(idx) for _, idx in r.recv_from)
        + sum(len(idx) for _, idx in r.send_to),
    )
    words = sum(len(idx) for _, idx in busiest.recv_from) + sum(
        len(idx) for _, idx in busiest.send_to
    )
    messages = len(busiest.recv_from) + len(busiest.send_to)
    comm = messages * model.alpha + 2 * words * model.tc
    return TimeBreakdown(
        comp=2 * busiest_comp * model.tf,
        comm=comm,
        terms=(
            f"2*{busiest_comp} tf",
            f"{messages} alpha + 2*{words} tc (busiest rank halo)",
        ),
    )


def amortization_ratio(
    schedule: CommSchedule, nnz: int, iterations: int
) -> float:
    """Predicted naive/amortized word-volume ratio for a k-sweep SpMV.

    The strawman re-runs the inspector exchange before every sweep, so
    its wire volume is ``k * (inspector + gather)`` against the
    amortized ``inspector + k * gather``.  A lower envelope for the
    measured makespan ratio (the strawman also repeats pattern-walk
    flops, which this word count ignores).
    """
    if iterations < 1:
        raise CostModelError(f"iterations must be >= 1, got {iterations}")
    gather = schedule.gather_words
    inspect = schedule.inspector_words
    amortized = inspect + iterations * gather
    if amortized == 0:
        return 1.0
    return (iterations * (inspect + gather)) / amortized
