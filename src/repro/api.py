"""The stable facade over the compile service.

Two journeys cover most uses::

    from repro.api import Session, compile_program

    # stateless: recognize + emit SPMD code, no cache
    plan = compile_program(jacobi_source)
    result = plan.run(4, {"m": 32, "maxiter": 10})

    # stateful: content-addressed cache + any front-end guest
    with Session(cache="memory") as session:
        res = session.compile(jacobi_source, nprocs=8, env={"m": 64, "maxiter": 10})
        print(res.explain())          # Explanation dataclass; str() renders it
        print(session.stats.hit_rate)

* :func:`compile_program` — one program in (any guest surface), one
  :class:`Plan` out;
* :class:`Session` — a veneer over
  :class:`repro.service.CompileService`: the ``cache="off|memory|disk"``
  knob, ``compile``/``compile_batch``, the ``submit``/``wait`` job
  queue, and cache counters under :attr:`Session.stats`;
* :meth:`Plan.run` / :meth:`Plan.solve` / :meth:`Plan.explain` — the
  compiled-artifact surface (machine parameters keyword-only;
  ``solve`` returns :class:`SolveOutcome`, ``explain`` returns
  :class:`Explanation`).

Migration from the pre-service API
----------------------------------
==================================  =========================================
old name                            new name
==================================  =========================================
``repro.api.compile``               :func:`compile_program` (alias warns)
``repro.compile``                   :func:`repro.compile_program`
``repro.compile_and_run``           :func:`repro.api.compile_and_run`
``repro.solve_program_distribution``:meth:`Plan.solve` /
                                    :func:`repro.dp.phases.solve_program_distribution`
``repro.generate_spmd``             :func:`repro.codegen.spmd.generate_spmd`
``repro.run_spmd``                  :func:`repro.machine.engine.run_spmd`
``plan.run(n, env, model)``         ``plan.run(n, env, model=...)`` (kw-only)
``tables, result = plan.solve(...)``unchanged (``SolveOutcome`` iterates)
``plan.explain(...)`` (str)         ``str(plan.explain(...))``
==================================  =========================================

docs/API.md walks through each row.
"""

from __future__ import annotations

import warnings

from repro.lang.ast import Program
from repro.machine.engine import RunResult
from repro.machine.model import MachineModel
from repro.service.cache import CacheStats, PlanCache
from repro.service.compiler import (
    CompileJob,
    CompileRequest,
    CompileResult,
    CompileService,
)
from repro.service.plan import (
    Explanation,
    Plan,
    SegmentChoice,
    SolveOutcome,
    TransitionCost,
)
from repro.service.guests import (
    available_guests,
    loop_nest,
    lower,
    register_guest,
)

__all__ = [
    "Plan",
    "Session",
    "CompileRequest",
    "CompileResult",
    "CompileJob",
    "Explanation",
    "SolveOutcome",
    "SegmentChoice",
    "TransitionCost",
    "CacheStats",
    "compile_program",
    "compile_and_run",
    "loop_nest",
    "lower",
    "register_guest",
    "available_guests",
    "compile",
]


def compile_program(
    source: Program | str | object,
    *,
    guest: str = "dsl",
    strategy: str | None = None,
) -> Plan:
    """Recognize *source* (lowered through *guest*) and generate its
    SPMD code.  Stateless — no cache; use :class:`Session` for that."""
    from repro.service.plan import compile_plan

    return compile_plan(lower(source, guest), strategy=strategy)


def compile(source: Program | str, strategy: str | None = None) -> Plan:
    """Deprecated alias of :func:`compile_program` (it shadowed the
    :func:`python:compile` builtin); will be removed next release."""
    warnings.warn(
        "repro.api.compile is deprecated (it shadows the compile builtin); "
        "use repro.api.compile_program",
        DeprecationWarning,
        stacklevel=2,
    )
    return compile_program(source, strategy=strategy)


class Session:
    """An explicit compile session: machine + cache + service.

    Parameters (all keyword-only):

    machine:
        The :class:`MachineModel` whose ``tf``/``tc``/``alpha``
        parameters are folded into every solve's cache key.
    cache:
        ``"off"``, ``"memory"`` (default), ``"disk"`` — or a
        :class:`PlanCache` instance to share between sessions.
    cache_capacity:
        Memory-tier LRU bound.
    cache_dir:
        Directory for the disk tier (required for ``cache="disk"``).
    workers:
        ``> 0`` runs codegen and Algorithm 1 solves on a supervised
        pool of that many subprocesses (crashes are detected, workers
        respawned, requests retried; on pool exhaustion the session
        degrades to in-process compilation).  ``0`` (default) keeps
        everything in-process.
    deadline_s:
        Service-wide per-request deadline — straggling pool workers
        are killed and :class:`repro.errors.DeadlineExceededError`
        raised; overridable per request via ``deadline_s=`` on
        :meth:`compile`'s request.
    queue_limit:
        Bound on queued-but-unserved :meth:`submit` jobs; excess
        submissions shed load with
        :class:`repro.errors.ServiceOverloadedError`.

    A session is also a context manager; entering starts the job-queue
    workers and exiting drains them (and stops the process pool).
    See docs/API.md §"Operating the service".
    """

    def __init__(
        self,
        *,
        machine: MachineModel | None = None,
        cache: str | PlanCache | None = "memory",
        cache_capacity: int = 256,
        cache_dir=None,
        workers: int = 0,
        deadline_s: float | None = None,
        queue_limit: int | None = None,
    ) -> None:
        self.service = CompileService(
            machine=machine or MachineModel(),
            cache=cache,
            cache_capacity=cache_capacity,
            cache_dir=cache_dir,
            workers=workers,
            deadline_s=deadline_s,
            queue_limit=queue_limit,
        )

    @property
    def machine(self) -> MachineModel:
        return self.service.machine

    @property
    def cache(self) -> PlanCache | None:
        return self.service.cache

    @property
    def stats(self) -> CacheStats:
        """Cache hit/miss/eviction counters for this session."""
        return self.service.stats

    # -- compile surface -------------------------------------------------
    def compile(
        self,
        source: object,
        *,
        guest: str = "dsl",
        strategy: str | None = None,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        execute: bool = False,
        label: str | None = None,
        deadline_s: float | None = None,
    ) -> CompileResult:
        """Serve one :class:`CompileRequest` (or build one from the
        keyword arguments) through the cache."""
        return self.service.compile(
            source, guest=guest, strategy=strategy, nprocs=nprocs,
            env=env, execute=execute, label=label, deadline_s=deadline_s,
        )

    def compile_batch(
        self,
        sources,
        *,
        guest: str = "dsl",
        strategy: str | None = None,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        execute: bool = False,
    ) -> list[CompileResult]:
        """Compile many programs, sharing alignment/DP sub-results
        across programs whose segments coincide."""
        return self.service.compile_batch(
            sources, guest=guest, strategy=strategy, nprocs=nprocs,
            env=env, execute=execute,
        )

    # -- job queue -------------------------------------------------------
    def submit(self, source: object, **kwargs) -> CompileJob:
        return self.service.submit(source, **kwargs)

    def start(self, workers: int = 1) -> "Session":
        self.service.start(workers)
        return self

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "Session":
        self.service.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self.service.__exit__(*exc)


def compile_and_run(
    source: Program | str,
    nprocs: int,
    env: dict[str, int],
    *,
    model: MachineModel | None = None,
    inputs: dict | None = None,
    seed: int = 0,
    backend: str = "engine",
    guest: str = "dsl",
) -> RunResult:
    """One call: :func:`compile_program` then :meth:`Plan.run`."""
    return compile_program(source, guest=guest).run(
        nprocs, env, model=model, inputs=inputs, seed=seed, backend=backend
    )
