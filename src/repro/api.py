"""The stable facade over the compilation pipeline.

Three names cover the common journeys end to end::

    from repro.api import compile

    plan = compile(jacobi_program())
    print(plan.explain())                 # what was recognized + why
    result = plan.run(nprocs=4, env={"m": 32, "maxiter": 10})

* :func:`compile` — recognize the program and emit its SPMD code;
* :meth:`Plan.run` — execute the generated code on the simulator
  (``backend="engine"`` or ``"threaded"``), fabricating well-conditioned
  default inputs when none are given;
* :meth:`Plan.explain` — human-readable account of the strategy, and —
  given ``nprocs``/``env`` — Algorithm 1's chosen distribution chain
  with its redistribution plans.

:meth:`Plan.solve` exposes the §4 dynamic program directly, including
the ``execute=True`` validation mode that lowers every chosen
redistribution to real message traffic (:mod:`repro.dp.validate`).

This module intentionally imports no deprecated shims; the legacy
top-level names (``repro.compile_and_run`` and friends) now delegate
here and warn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.spmd import GeneratedProgram, generate_spmd, load_generated
from repro.errors import ReproError
from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.machine.engine import RunResult, run_spmd
from repro.machine.model import MachineModel
from repro.machine.threaded import run_spmd_threaded
from repro.machine.topology import Grid2D, Ring

__all__ = ["Plan", "compile", "compile_and_run"]

_RUNNERS = {"engine": run_spmd, "threaded": run_spmd_threaded}


def compile(program: Program | str, strategy: str | None = None) -> Plan:
    """Recognize *program* (a :class:`~repro.lang.ast.Program` or DSL
    source text) and generate its SPMD code."""
    if isinstance(program, str):
        program = parse_program(program)
    return Plan(program=program, generated=generate_spmd(program, strategy=strategy))


def _default_inputs(gen: GeneratedProgram, env: dict[str, int], seed: int) -> dict:
    """Fabricate inputs matching the recognized pattern (SPD system for
    solvers, random operands for matmul)."""
    import numpy as np

    from repro.codegen.patterns import (
        GaussPattern,
        IterativeSolvePattern,
        MatmulPattern,
    )
    from repro.kernels.linalg import make_spd_system

    pat = gen.pattern
    m = env.get("m", env.get("n", 16))
    if isinstance(pat, IterativeSolvePattern):
        A, b, _ = make_spd_system(m, seed=seed)
        inputs = {
            pat.A: A,
            pat.B: b,
            "X0": np.zeros(m),
            "iterations": env.get(pat.iterations, env.get("maxiter", 10)),
        }
        if pat.omega:
            inputs[pat.omega] = 1.1
        return inputs
    if isinstance(pat, GaussPattern):
        A, b, _ = make_spd_system(m, seed=seed)
        return {pat.A: A, pat.B: b}
    if isinstance(pat, MatmulPattern):
        rng = np.random.default_rng(seed)
        return {pat.left: rng.random((m, m)), pat.right: rng.random((m, m))}
    raise ReproError(
        f"cannot build default inputs for strategy {gen.strategy!r}; "
        f"pass inputs= explicitly"
    )


@dataclass(frozen=True)
class Plan:
    """A compiled program: the source IR plus its generated SPMD code."""

    program: Program
    generated: GeneratedProgram

    @property
    def strategy(self) -> str:
        return self.generated.strategy

    @property
    def source(self) -> str:
        """The generated SPMD source text."""
        return self.generated.source

    # -- execution -------------------------------------------------------
    def run(
        self,
        nprocs: int,
        env: dict[str, int],
        model: MachineModel | None = None,
        inputs: dict | None = None,
        seed: int = 0,
        backend: str = "engine",
        trace: bool = False,
    ) -> RunResult:
        """Execute the generated program on *nprocs* simulated processors.

        *backend* selects the deterministic event-driven ``"engine"`` or
        the real-thread ``"threaded"`` runtime; both produce the same
        values and traffic.
        """
        if backend not in _RUNNERS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {sorted(_RUNNERS)}"
            )
        model = model or MachineModel()
        fn = load_generated(self.generated)
        if inputs is None:
            inputs = _default_inputs(self.generated, env, seed)
        if self.generated.strategy == "cannon":
            q = int(round(nprocs**0.5))
            topology = Grid2D(q, q)
        else:
            topology = Ring(nprocs)
        return _RUNNERS[backend](fn, topology, model, args=(inputs,), trace=trace)

    # -- analysis --------------------------------------------------------
    def solve(
        self,
        nprocs: int,
        env: dict[str, int],
        model: MachineModel | None = None,
        execute: bool = False,
        backends: tuple[str, ...] = ("engine", "threaded"),
    ):
        """Run Algorithm 1 on the program; with ``execute=True`` also
        lower and run every chosen redistribution, returning the extra
        :class:`~repro.dp.validate.RedistValidation` element."""
        from repro.dp.phases import solve_program_distribution

        return solve_program_distribution(
            self.program, nprocs, env, model or MachineModel(),
            execute=execute, backends=backends,
        )

    def explain(
        self,
        nprocs: int | None = None,
        env: dict[str, int] | None = None,
        model: MachineModel | None = None,
    ) -> str:
        """What the compiler decided, and — with *nprocs*/*env* — what
        Algorithm 1 chooses for it."""
        lines = [
            f"strategy: {self.strategy}",
            f"entry:    {self.generated.entry}",
            f"pattern:  {self.generated.pattern!r}",
        ]
        if nprocs is not None and env is not None:
            tables, result = self.solve(nprocs, env, model)
            lines.append(f"N = {nprocs}, env = {env}")
            lines.append(f"total cost {result.cost:g} "
                         f"(loop-carried {result.loop_carried:g})")
            for (start, length), (scheme, grid) in zip(result.segments, result.schemes):
                seg = f"L{start}" if length == 1 else f"L{start}..L{start + length - 1}"
                lines.append(f"  {seg} on {grid[0]}x{grid[1]}: {scheme.describe()}")
            for label, plan in tables.transition_plans(result):
                lines.append(f"  change {label}: {plan.total:g} "
                             f"({plan.analytic_words:g} words)")
        return "\n".join(lines)


def compile_and_run(
    program: Program | str,
    nprocs: int,
    env: dict[str, int],
    model: MachineModel | None = None,
    inputs: dict | None = None,
    seed: int = 0,
    backend: str = "engine",
) -> RunResult:
    """One call: :func:`compile` then :meth:`Plan.run`."""
    return compile(program).run(
        nprocs, env, model=model, inputs=inputs, seed=seed, backend=backend
    )
