"""Compressed-sparse-row containers for the irregular workload class.

The paper's kernels are dense affine loop nests; the sparse subsystem
(docs/SPARSE.md) opens the indirection-array class, and this module is
its data side: a :class:`CSRPattern` (the *structure* — ``indptr`` /
``indices`` — which is what communication schedules depend on) kept
separate from a :class:`CSRMatrix` (structure + values), so the
inspector (:mod:`repro.pipeline.inspector`) can content-address a
sparsity pattern independently of the numbers stored in it.

Determinism contract: patterns are canonical on construction — indices
are ``int64``, sorted and unique within each row — so two patterns with
the same structure are byte-identical (``digest`` equal) no matter how
they were built, and every consumer (schedule builder, SpMV) walks the
nonzeros in one well-defined order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DistributionError

#: Schema tag folded into every pattern/schedule digest; bumping it
#: orphans previously cached :class:`~repro.pipeline.inspector.CommSchedule`
#: entries, mirroring ``repro.service.normalize.IR_SCHEMA``.
SPARSE_SCHEMA = "repro-sparse/1"


def _as_index(arr, name: str) -> np.ndarray:
    out = np.ascontiguousarray(np.asarray(arr, dtype=np.int64))
    if out.ndim != 1:
        raise DistributionError(f"{name} must be 1-D, got shape {out.shape}")
    return out


@dataclass(frozen=True, eq=False)
class CSRPattern:
    """The sparsity structure of an ``nrows x ncols`` matrix.

    ``indices[indptr[i]:indptr[i+1]]`` are the column indices of row
    ``i``, sorted ascending and unique (enforced here, so downstream
    index arithmetic — and therefore the summation order of every SpMV
    — is canonical).
    """

    nrows: int
    ncols: int
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "indptr", _as_index(self.indptr, "indptr"))
        object.__setattr__(self, "indices", _as_index(self.indices, "indices"))
        if self.nrows < 0 or self.ncols < 0:
            raise DistributionError(
                f"pattern shape must be nonnegative, got {self.nrows}x{self.ncols}"
            )
        if len(self.indptr) != self.nrows + 1:
            raise DistributionError(
                f"indptr has {len(self.indptr)} entries for {self.nrows} rows"
            )
        if self.indptr[0] != 0 or (np.diff(self.indptr) < 0).any():
            raise DistributionError("indptr must start at 0 and be nondecreasing")
        if self.indptr[-1] != len(self.indices):
            raise DistributionError(
                f"indptr ends at {self.indptr[-1]} but there are "
                f"{len(self.indices)} column indices"
            )
        if len(self.indices) and (
            (self.indices < 0).any() or (self.indices >= self.ncols).any()
        ):
            bad = int(
                self.indices[(self.indices < 0) | (self.indices >= self.ncols)][0]
            )
            raise DistributionError(
                f"column index {bad} outside 0..{self.ncols - 1}"
            )
        for i in range(self.nrows):
            row = self.indices[self.indptr[i] : self.indptr[i + 1]]
            if len(row) > 1 and (np.diff(row) <= 0).any():
                raise DistributionError(
                    f"row {i} column indices must be sorted and unique"
                )

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def row_cols(self, i: int) -> np.ndarray:
        """Column indices of row *i* (a read-only view)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    @property
    def digest(self) -> str:
        """Content address of the structure (schema-tagged sha256)."""
        h = hashlib.sha256()
        h.update(f"{SPARSE_SCHEMA}|pattern|{self.nrows}|{self.ncols}|".encode())
        h.update(self.indptr.tobytes())
        h.update(self.indices.tobytes())
        return h.hexdigest()

    def transpose_pattern(self) -> "CSRPattern":
        """The structure of the transpose (CSC view of this pattern)."""
        counts = np.bincount(self.indices, minlength=self.ncols)
        indptr = np.zeros(self.ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(self.indices, kind="stable")
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )
        return CSRPattern(self.ncols, self.nrows, indptr, rows[order])

    @staticmethod
    def from_coo(
        nrows: int, ncols: int, rows, cols
    ) -> "CSRPattern":
        """Canonical pattern from (possibly unsorted, duplicated) COO."""
        rows = _as_index(rows, "rows")
        cols = _as_index(cols, "cols")
        if len(rows) != len(cols):
            raise DistributionError(
                f"COO rows/cols length mismatch ({len(rows)} vs {len(cols)})"
            )
        flat = np.unique(rows * np.int64(ncols) + cols)
        r, c = np.divmod(flat, np.int64(ncols))
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(r, minlength=nrows), out=indptr[1:])
        return CSRPattern(nrows, ncols, indptr, c)


@dataclass(frozen=True, eq=False)
class CSRMatrix:
    """A CSR matrix: a :class:`CSRPattern` plus float64 values."""

    pattern: CSRPattern
    data: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        data = np.ascontiguousarray(np.asarray(self.data, dtype=np.float64))
        object.__setattr__(self, "data", data)
        if data.ndim != 1 or len(data) != self.pattern.nnz:
            raise DistributionError(
                f"data has {data.size} values for {self.pattern.nnz} nonzeros"
            )

    @property
    def nrows(self) -> int:
        return self.pattern.nrows

    @property
    def ncols(self) -> int:
        return self.pattern.ncols

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.nrows, self.ncols))
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.pattern.indptr)
        )
        out[rows, self.pattern.indices] = self.data
        return out


def csr_from_dense(A, tol: float = 0.0) -> CSRMatrix:
    """CSR form of a dense matrix, dropping entries with ``|a| <= tol``."""
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise DistributionError(f"expected a matrix, got shape {A.shape}")
    mask = np.abs(A) > tol
    indptr = np.zeros(A.shape[0] + 1, dtype=np.int64)
    np.cumsum(mask.sum(axis=1), out=indptr[1:])
    rows, cols = np.nonzero(mask)
    pattern = CSRPattern(A.shape[0], A.shape[1], indptr, cols.astype(np.int64))
    return CSRMatrix(pattern, A[rows, cols])


def spmv_reference(csr: CSRMatrix, x) -> np.ndarray:
    """Single-rank SpMV, the bit-exactness oracle for the executor.

    Each row is summed over its nonzeros in CSR (ascending-column)
    order via unbuffered ``np.add.at`` — exactly the order the
    distributed executor uses on its local rows, so a row-partitioned
    parallel SpMV reproduces this result *bit for bit* (rows are never
    split across ranks).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (csr.ncols,):
        raise DistributionError(
            f"operand has shape {x.shape}, matrix needs ({csr.ncols},)"
        )
    y = np.zeros(csr.nrows)
    rows = np.repeat(
        np.arange(csr.nrows, dtype=np.int64), np.diff(csr.pattern.indptr)
    )
    np.add.at(y, rows, csr.data * x[csr.pattern.indices])
    return y


def random_pattern(
    nrows: int, ncols: int, density: float, seed: int = 0
) -> CSRPattern:
    """A seeded random pattern with at least one entry per row."""
    rng = np.random.default_rng(seed)
    mask = rng.random((nrows, ncols)) < density
    empty = ~mask.any(axis=1)
    if empty.any():
        mask[empty, rng.integers(0, ncols, size=int(empty.sum()))] = True
    rows, cols = np.nonzero(mask)
    return CSRPattern.from_coo(nrows, ncols, rows, cols)


def random_spd_csr(n: int, density: float = 0.1, seed: int = 0) -> CSRMatrix:
    """A seeded sparse symmetric positive-definite matrix (for CG).

    Symmetrized random structure with a diagonally dominant diagonal:
    ``A = (M + M^T)/2 + (n + 1) I`` restricted to the drawn pattern,
    which is SPD by Gershgorin (values lie in [-1, 1]).
    """
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    vals = rng.uniform(-1.0, 1.0, size=(n, n))
    dense = np.where(mask, vals, 0.0)
    dense = (dense + dense.T) / 2.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return csr_from_dense(dense)
