"""The sparse/irregular workload subsystem (docs/SPARSE.md).

One facade over the pieces the inspector/executor path comprises:

* CSR containers and the bit-exactness oracle (:mod:`repro.sparse.csr`);
* the row partition with ghost sets
  (:class:`repro.distribution.sparse.SparsePlacement`);
* the inspector/executor pass
  (:mod:`repro.pipeline.inspector`);
* the kernels (:mod:`repro.kernels.spmv`,
  :mod:`repro.kernels.sparse_cg`).

Importing from here gets the whole workload class in one line::

    from repro.sparse import csr_from_dense, SparsePlacement, spmv_parallel

The non-CSR names resolve lazily (PEP 562): the placement, pipeline and
kernel layers all import :mod:`repro.sparse.csr`, so eager re-exports
here would make this package circular with its own consumers.
"""

from repro.sparse.csr import (
    SPARSE_SCHEMA,
    CSRMatrix,
    CSRPattern,
    csr_from_dense,
    random_pattern,
    random_spd_csr,
    spmv_reference,
)

#: Lazily re-exported names -> defining module.
_LAZY = {
    "SparsePlacement": "repro.distribution.sparse",
    "CommSchedule": "repro.pipeline.inspector",
    "RankSchedule": "repro.pipeline.inspector",
    "build_comm_schedule": "repro.pipeline.inspector",
    "cached_comm_schedule": "repro.pipeline.inspector",
    "gather_ghosts": "repro.pipeline.inspector",
    "inspector_exchange": "repro.pipeline.inspector",
    "schedule_digest": "repro.pipeline.inspector",
    "spmv_local": "repro.pipeline.inspector",
    "stamp_sparse": "repro.pipeline.inspector",
    "spmv_parallel": "repro.kernels.spmv",
    "spmv_seq": "repro.kernels.spmv",
    "sparse_cg_parallel": "repro.kernels.sparse_cg",
    "sparse_cg_seq": "repro.kernels.sparse_cg",
}

__all__ = [
    "SPARSE_SCHEMA",
    "CSRMatrix",
    "CSRPattern",
    "csr_from_dense",
    "random_pattern",
    "random_spd_csr",
    "spmv_reference",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
