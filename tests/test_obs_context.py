"""Trace-context propagation: one id from CompileRequest to rank lanes.

The acceptance chain under test: a cold ``CompileRequest`` served
through a supervised worker mints a :class:`TraceContext`; the same
run id appears (a) on the ``CompileResult``, (b) in the spans grafted
back from the worker process, and (c) in ``Metrics.obs`` of the
simulated execution — and the merged Perfetto export carries a
``compile->run`` flow arrow from the compiler lane into the rank lanes.
"""

from __future__ import annotations

import json

import pytest

from repro.lang import jacobi_program
from repro.machine import MachineModel, Ring, correlated_trace_json, run_spmd
from repro.machine.export import COMPILER_TID
from repro.obs import (
    TraceContext,
    current_context,
    mint_context,
    stamp_current,
    tracing_context,
)
from repro.service import CompileService, WorkerSupervisor
from repro.util import spans

MODEL = MachineModel(tf=1, tc=10)
ENV = {"m": 32, "maxiter": 2}


def _two_rank_exchange(p):
    p.compute(40)
    p.send((p.rank + 1) % p.nprocs, list(range(8)))
    yield from p.recv((p.rank - 1) % p.nprocs)


class TestTraceContext:
    def test_mint_is_sequential_and_carries_digest(self):
        a = mint_context(request_digest="deadbeefcafe")
        b = mint_context(request_digest="deadbeefcafe")
        assert a.run_id != b.run_id
        assert a.run_id.endswith("deadbeef"[:8]) or "deadbeef" in a.run_id
        assert a.request_digest == "deadbeefcafe"

    def test_round_trip_and_child(self):
        ctx = mint_context(request_digest="abc123")
        again = TraceContext.from_dict(ctx.as_dict())
        assert again == ctx
        kid = ctx.child("run-9999")
        assert kid.run_id == "run-9999"
        assert kid.parent == ctx.run_id
        assert TraceContext.from_dict(kid.as_dict()) == kid

    def test_tracing_context_installs_and_restores(self):
        assert current_context() is None
        ctx = mint_context()
        with tracing_context(ctx):
            assert current_context() == ctx
            inner = mint_context()
            with tracing_context(inner):
                assert current_context() == inner
            assert current_context() == ctx
        assert current_context() is None

    def test_stamp_current_is_noop_outside_context(self):
        res = run_spmd(_two_rank_exchange, Ring(2), MODEL, trace=True)
        stamp_current(res.metrics)
        # run_spmd already stamped (or not) inside the engine; with no
        # ambient context nothing may appear.
        assert "run_id" not in res.metrics.obs


class TestEngineStamping:
    def test_engine_stamps_metrics_obs(self):
        ctx = mint_context(request_digest="feedface")
        with tracing_context(ctx):
            res = run_spmd(_two_rank_exchange, Ring(2), MODEL, trace=True)
        assert res.metrics.obs["run_id"] == ctx.run_id
        assert res.metrics.obs["request_digest"] == "feedface"

    def test_threaded_twin_stamps_identically(self):
        from repro.machine import run_spmd_threaded

        ctx = mint_context()
        with tracing_context(ctx):
            res = run_spmd_threaded(_two_rank_exchange, Ring(2), MODEL)
        assert res.metrics.obs["run_id"] == ctx.run_id


class TestWorkerCarry:
    def test_trace_echo_round_trips_across_the_pickle_boundary(self):
        ctx = mint_context(request_digest="0123456789ab")
        with WorkerSupervisor(1, MODEL) as pool:
            assert pool.call({"kind": "trace-echo"}) is None
            with tracing_context(ctx):
                echoed = pool.call({"kind": "trace-echo"})
        assert echoed == ctx.as_dict()

    def test_graft_reanchors_and_prefixes(self):
        rec = spans.SpanRecorder()
        rec.graft(
            [
                {"name": "dp/solve", "start": 5.0, "end": 7.0, "depth": 0},
                {"name": "codegen/emit", "start": 7.0, "end": 8.5, "depth": 0},
            ],
            at=100.0,
            prefix="worker0/",
        )
        names = sorted(s.name for s in rec.spans)
        assert names == ["worker0/codegen/emit", "worker0/dp/solve"]
        first = min(rec.spans, key=lambda s: s.start)
        assert first.start == 100.0  # re-anchored to dispatch time
        assert max(s.end for s in rec.spans) == 103.5


class TestCompileServiceCorrelation:
    @pytest.fixture(scope="class")
    def served(self):
        with CompileService(machine=MODEL, workers=1) as svc:
            with spans.recording() as rec:
                result = svc.compile(jacobi_program(), nprocs=4, env=ENV)
            run = result.run(model=MODEL, trace=True)
        return result, run, rec

    def test_cold_compile_mints_context(self, served):
        result, _, _ = served
        ctx = result.trace_context
        assert ctx is not None
        assert ctx.request_digest  # the plan key
        assert ctx.run_id.startswith("run-")

    def test_one_id_links_compile_worker_and_run(self, served):
        result, run, rec = served
        ctx = result.trace_context
        # (b) worker spans came back grafted into the hub recorder
        names = [s.name for s in rec.spans]
        assert any(n.startswith("worker0/") for n in names), names
        # (c) the simulated execution carries the same id
        assert run.metrics.obs["run_id"] == ctx.run_id
        assert run.metrics.obs["request_digest"] == ctx.request_digest

    def test_merged_export_has_flow_arrow_across_boundary(self, served):
        result, run, rec = served
        ctx = result.trace_context
        # json round-trip proves the export is a valid Perfetto document
        doc = json.loads(
            json.dumps(
                correlated_trace_json(run.trace, spans=rec.spans, context=ctx)
            )
        )
        events = doc["traceEvents"]
        tids = {e.get("tid") for e in events if e.get("ph") == "X"}
        assert COMPILER_TID in tids  # compiler lane present
        assert 0 in tids and 3 in tids  # rank lanes present
        flows = [
            e for e in events
            if e.get("ph") in ("s", "f") and e.get("cat") == "obs"
        ]
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["name"] == finishes[0]["name"] == "compile->run"
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["tid"] == COMPILER_TID
        assert finishes[0]["tid"] != COMPILER_TID  # lands on a rank lane
        assert doc["otherData"]["trace_context"]["run_id"] == ctx.run_id

    def test_export_without_context_has_no_flow_arrow(self, served):
        _, run, _ = served
        doc = correlated_trace_json(run.trace)
        assert not [
            e for e in doc["traceEvents"]
            if e.get("ph") in ("s", "f") and e.get("cat") == "obs"
        ]


class TestExportDeduplication:
    def test_metadata_emitted_once_when_merged_twice(self):
        from repro.machine.export import merge_events

        res = run_spmd(_two_rank_exchange, Ring(2), MODEL, trace=True)
        doc_a = correlated_trace_json(res.trace)
        doc_b = correlated_trace_json(res.trace)
        merged = merge_events(doc_a["traceEvents"], doc_b["traceEvents"])
        meta = [e for e in merged if e.get("ph") == "M"]
        keys = [(e["name"], e["pid"], e["tid"], tuple(sorted(e["args"].items())))
                for e in meta]
        assert len(keys) == len(set(keys))

    def test_export_is_deterministic(self):
        res = run_spmd(_two_rank_exchange, Ring(2), MODEL, trace=True)
        rec = spans.SpanRecorder()
        with rec.span("alpha"):
            pass
        with rec.span("beta"):
            pass
        one = json.dumps(correlated_trace_json(res.trace, spans=rec.spans),
                         sort_keys=True)
        two = json.dumps(correlated_trace_json(res.trace, spans=rec.spans),
                         sort_keys=True)
        assert one == two  # byte-identical exports
