"""Grid3D topology and the 3-D matmul kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineError, TopologyError
from repro.kernels.matmul3d import assemble_3d, matmul_3d
from repro.machine import MachineModel, run_spmd
from repro.machine.topology import Grid3D

MODEL = MachineModel(tf=1, tc=10)


class TestGrid3D:
    def test_size_and_coords_roundtrip(self):
        g = Grid3D(2, 3, 4)
        assert g.size == 24
        for r in range(g.size):
            assert g.rank_of(*g.coords(r)) == r

    def test_invalid_extents(self):
        with pytest.raises(TopologyError):
            Grid3D(0, 2, 2)

    def test_rank_of_bounds(self):
        with pytest.raises(TopologyError):
            Grid3D(2, 2, 2).rank_of(0, 0, 2)

    def test_hops_torus(self):
        g = Grid3D(4, 4, 4)
        a = g.rank_of(0, 0, 0)
        b = g.rank_of(3, 3, 3)
        assert g.hops(a, b) == 3  # one wrap hop per axis

    def test_neighbors_count(self):
        g = Grid3D(3, 3, 3)
        assert len(g.neighbors(g.rank_of(1, 1, 1))) == 6

    def test_neighbors_dedup_small_axis(self):
        g = Grid3D(2, 1, 1)
        assert g.neighbors(0) == (1,)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_dim_groups_partition(self, dim):
        g = Grid3D(2, 3, 2)
        seen = []
        for r in range(g.size):
            grp = g.dim_group(r, dim)
            assert r in grp
            seen.append(tuple(sorted(grp)))
        # Every rank appears in exactly one distinct group of its line.
        distinct = set(seen)
        total = sum(len(grp) for grp in distinct)
        assert total == g.size

    def test_dim_group_invalid(self):
        with pytest.raises(TopologyError):
            Grid3D(2, 2, 2).dim_group(0, 4)


class TestMatmul3D:
    @pytest.mark.parametrize("q,n", [(1, 6), (2, 8), (3, 12), (4, 16)])
    def test_matches_numpy(self, q, n):
        rng = np.random.default_rng(q)
        B, C = rng.random((n, n)), rng.random((n, n))
        topo = Grid3D(q, q, q)
        res = run_spmd(matmul_3d, topo, MODEL, args=(B, C, q))
        got = assemble_3d(res.values, topo)
        np.testing.assert_allclose(got, B @ C, atol=1e-10)

    def test_result_only_on_k0_plane(self):
        q, n = 2, 8
        rng = np.random.default_rng(0)
        B = rng.random((n, n))
        topo = Grid3D(q, q, q)
        res = run_spmd(matmul_3d, topo, MODEL, args=(B, B, q))
        for rank, value in enumerate(res.values):
            _p1, _p2, p3 = topo.coords(rank)
            assert (value is not None) == (p3 == 0)

    def test_wrong_topology_rejected(self):
        from repro.machine import Grid2D

        B = np.zeros((8, 8))
        with pytest.raises(MachineError):
            run_spmd(matmul_3d, Grid2D(4, 2), MODEL, args=(B, B, 2))

    def test_indivisible_rejected(self):
        B = np.zeros((9, 9))
        with pytest.raises(MachineError):
            run_spmd(matmul_3d, Grid3D(2, 2, 2), MODEL, args=(B, B, 2))

    def test_fewer_words_than_cannon_at_p64(self):
        from repro.kernels import cannon_matmul
        from repro.machine import Grid2D

        n = 48
        rng = np.random.default_rng(1)
        B, C = rng.random((n, n)), rng.random((n, n))
        r3 = run_spmd(matmul_3d, Grid3D(4, 4, 4), MODEL, args=(B, C, 4))
        r2 = run_spmd(cannon_matmul, Grid2D(8, 8), MODEL, args=(B, C, 8))
        assert r3.message_words < r2.message_words
