"""Property-based engine tests on randomized traffic patterns."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineModel, Ring, run_spmd
from repro.machine.threaded import run_spmd_threaded


def ring_relay(p, payload_sizes, compute_amounts, rounds):
    """Deterministic ring relay with data-dependent payload mutation."""
    import numpy as _np

    n = p.nprocs
    right = (p.rank + 1) % n
    left = (p.rank - 1) % n
    data = _np.full(payload_sizes[p.rank], float(p.rank))
    total = 0.0
    for r in range(rounds):
        p.compute(compute_amounts[(p.rank + r) % len(compute_amounts)])
        if n > 1:
            p.send(right, data, tag=7)
            data = yield from p.recv(left, tag=7)
        total += float(data.sum())
        data = data + 1.0
    return total


@st.composite
def traffic(draw):
    n = draw(st.integers(1, 6))
    sizes = [draw(st.integers(1, 16)) for _ in range(n)]
    computes = [draw(st.integers(0, 50)) for _ in range(max(n, 1))]
    rounds = draw(st.integers(1, 6))
    return n, sizes, computes, rounds


class TestEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(traffic())
    def test_determinism_across_reruns(self, t):
        n, sizes, computes, rounds = t
        model = MachineModel(tf=1, tc=3)
        r1 = run_spmd(ring_relay, Ring(n), model, args=(sizes, computes, rounds))
        r2 = run_spmd(ring_relay, Ring(n), model, args=(sizes, computes, rounds))
        assert r1.values == r2.values
        assert r1.finish_times == r2.finish_times
        assert r1.message_words == r2.message_words

    @settings(max_examples=20, deadline=None)
    @given(traffic())
    def test_trace_lanes_monotone_and_disjoint(self, t):
        n, sizes, computes, rounds = t
        res = run_spmd(
            ring_relay,
            Ring(n),
            MachineModel(tf=1, tc=3),
            args=(sizes, computes, rounds),
            trace=True,
        )
        for lane in res.trace:
            for a, b in zip(lane, lane[1:]):
                assert a.end <= b.start + 1e-9  # events never overlap
            for e in lane:
                assert e.end >= e.start >= 0

    @settings(max_examples=20, deadline=None)
    @given(traffic())
    def test_finish_time_bounds(self, t):
        """Makespan at least each proc's own busy time, and no clock
        exceeds total injected work + total communication."""
        n, sizes, computes, rounds = t
        res = run_spmd(
            ring_relay,
            Ring(n),
            MachineModel(tf=1, tc=3),
            args=(sizes, computes, rounds),
            trace=True,
        )
        from repro.machine.trace import busy_time, comm_time, wait_time

        for rank, lane in enumerate(res.trace):
            # compute + transfer + blocked waiting tiles the whole timeline.
            total = busy_time(lane) + comm_time(lane) + wait_time(lane)
            assert res.finish_times[rank] <= total + 1e-9
            assert res.finish_times[rank] >= busy_time(lane)

    @settings(max_examples=10, deadline=None)
    @given(traffic())
    def test_threaded_backend_parity(self, t):
        n, sizes, computes, rounds = t
        model = MachineModel(tf=1, tc=3)
        det = run_spmd(ring_relay, Ring(n), model, args=(sizes, computes, rounds))
        thr = run_spmd_threaded(ring_relay, Ring(n), model, args=(sizes, computes, rounds))
        assert det.values == thr.values
        assert det.finish_times == thr.finish_times

    @settings(max_examples=20, deadline=None)
    @given(traffic())
    def test_message_conservation(self, t):
        """Every send is received: counts match the program structure."""
        n, sizes, computes, rounds = t
        res = run_spmd(
            ring_relay, Ring(n), MachineModel(tf=1, tc=3), args=(sizes, computes, rounds)
        )
        expected = rounds * n if n > 1 else 0
        assert res.message_count == expected
