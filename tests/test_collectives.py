"""Collective correctness and Table 1 cost shapes on the simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError
from repro.machine import (
    Hypercube,
    MachineModel,
    Ring,
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    run_spmd,
    scatter,
    shift,
)
from repro.machine.collectives import affine_transform


def run_collective(prog, nprocs, model=None, topo=None):
    topo = topo or Ring(nprocs)
    return run_spmd(prog, topo, model or MachineModel(tf=1, tc=1))


class TestBcast:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_value_everywhere(self, nprocs, root):
        root = min(root, nprocs - 1)
        group = tuple(range(nprocs))

        def prog(p):
            data = np.arange(3.0) if p.rank == root else None
            value = yield from bcast(p, data, root=root, group=group)
            return value.tolist()

        res = run_collective(prog, nprocs)
        assert all(v == [0.0, 1.0, 2.0] for v in res.values)

    def test_log_rounds_cost(self):
        """Broadcast of m words to P procs: O(m log P) critical path.

        Each tree level costs one send + one receive occupancy (2 m tc),
        so the makespan is exactly 2 * m * ceil(log2 P) with tc=1.
        """
        m, P = 64, 8
        group = tuple(range(P))

        def prog(p):
            data = np.zeros(m) if p.rank == 0 else None
            yield from bcast(p, data, root=0, group=group)
            return p.clock

        res = run_collective(prog, P, topo=Hypercube(3))
        assert res.makespan == 2 * m * math.ceil(math.log2(P))

    def test_subgroup(self):
        group = (1, 3)

        def prog(p):
            if p.rank in group:
                value = yield from bcast(p, p.rank if p.rank == 3 else None, root=3, group=group)
                return value
            return "outside"

        res = run_collective(prog, 4)
        assert res.values == ["outside", 3, "outside", 3]

    def test_nonmember_error(self):
        def prog(p):
            # Rank 2 calls a collective over a group it is not part of.
            group = (0, 1) if p.rank < 2 else (0, 1)
            if p.rank == 2:
                value = yield from bcast(p, None, root=0, group=group)
            else:
                value = yield from bcast(p, 5 if p.rank == 0 else None, root=0, group=group)
            return value

        with pytest.raises(CommunicationError):
            run_collective(prog, 3)


class TestReduce:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_sum_scalar(self, nprocs):
        group = tuple(range(nprocs))

        def prog(p):
            total = yield from reduce(p, float(p.rank + 1), root=0, group=group)
            return total

        res = run_collective(prog, nprocs)
        assert res.values[0] == nprocs * (nprocs + 1) / 2
        assert all(v is None for v in res.values[1:])

    def test_sum_arrays(self):
        group = (0, 1, 2, 3)

        def prog(p):
            total = yield from reduce(p, np.full(4, float(p.rank)), root=2, group=group)
            return None if total is None else total.tolist()

        res = run_collective(prog, 4)
        assert res.values[2] == [6.0, 6.0, 6.0, 6.0]

    def test_custom_op(self):
        group = (0, 1, 2)

        def prog(p):
            value = yield from reduce(p, p.rank + 5, root=0, group=group, op=max)
            return value

        res = run_collective(prog, 3)
        assert res.values[0] == 7

    def test_reduce_charges_flops(self):
        """Combining partial arrays costs one flop per element."""
        group = (0, 1)

        def prog(p):
            yield from reduce(p, np.zeros(8), root=0, group=group)
            return p.clock

        res = run_collective(prog, 2)
        # root waits for sender injection (8), pays recv occupancy (8),
        # then 8 combine flops.
        assert res.values[0] == 24.0


class TestRootAndMembershipValidation:
    """Regression: bad roots raised a bare ValueError from list.index, and
    single-member early returns skipped membership validation entirely."""

    def test_bcast_root_outside_group(self):
        def prog(p):
            if p.rank in (0, 1):
                value = yield from bcast(p, p.rank, root=2, group=(0, 1))
                return value
            return None

        with pytest.raises(CommunicationError, match="root"):
            run_collective(prog, 3)

    def test_reduce_root_outside_group(self):
        def prog(p):
            if p.rank in (0, 1):
                value = yield from reduce(p, 1.0, root=2, group=(0, 1))
                return value
            return None

        with pytest.raises(CommunicationError, match="root"):
            run_collective(prog, 3)

    def test_gather_single_member_group_rejects_nonmember(self):
        def prog(p):
            if p.rank == 1:
                out = yield from gather(p, 1.0, root=0, group=(0,))
                return out
            return None

        with pytest.raises(CommunicationError):
            run_collective(prog, 2)

    def test_scatter_single_member_group_rejects_nonmember(self):
        def prog(p):
            if p.rank == 1:
                value = yield from scatter(p, [1.0], root=0, group=(0,))
                return value
            return None

        with pytest.raises(CommunicationError):
            run_collective(prog, 2)

    def test_scatter_single_member_root_outside_group(self):
        def prog(p):
            if p.rank == 0:
                value = yield from scatter(p, [1.0], root=1, group=(0,))
                return value
            return None

        with pytest.raises(CommunicationError, match="root"):
            run_collective(prog, 2)

    def test_shift_identity_rejects_nonmember(self):
        def prog(p):
            if p.rank == 2:
                # delta % n == 0: previously returned the data untouched
                # without checking membership at all.
                value = yield from shift(p, p.rank, (0, 1), delta=2)
                return value
            return None

        with pytest.raises(CommunicationError):
            run_collective(prog, 3)


class TestAllreduceGatherScatter:
    def test_allreduce(self):
        group = tuple(range(6))

        def prog(p):
            value = yield from allreduce(p, 1.0, group)
            return value

        res = run_collective(prog, 6)
        assert all(v == 6.0 for v in res.values)

    def test_gather_in_group_order(self):
        group = (2, 0, 1)

        def prog(p):
            out = yield from gather(p, p.rank * 10, root=0, group=group)
            return out

        res = run_collective(prog, 3)
        assert res.values[0] == [20, 0, 10]
        assert res.values[1] is None

    def test_scatter(self):
        group = tuple(range(4))

        def prog(p):
            items = [10, 11, 12, 13] if p.rank == 0 else None
            value = yield from scatter(p, items, root=0, group=group)
            return value

        res = run_collective(prog, 4)
        assert res.values == [10, 11, 12, 13]

    def test_scatter_wrong_count(self):
        def prog(p):
            items = [1] if p.rank == 0 else None
            value = yield from scatter(p, items, root=0, group=(0, 1))
            return value

        with pytest.raises(CommunicationError):
            run_collective(prog, 2)

    def test_gather_linear_cost(self):
        """Gather(m, P) ~ (P-1) * m * tc at the root."""
        m, P = 32, 4
        group = tuple(range(P))

        def prog(p):
            yield from gather(p, np.zeros(m), root=0, group=group)
            return p.clock

        res = run_collective(prog, P)
        # P-1 receive occupancies, plus the initial m-word injection wait.
        assert res.values[0] == (P - 1) * m + m


class TestAllgatherShift:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
    def test_allgather_order(self, nprocs):
        group = tuple(range(nprocs))

        def prog(p):
            blocks = yield from allgather(p, p.rank, group)
            return blocks

        res = run_collective(prog, nprocs)
        assert all(v == list(range(nprocs)) for v in res.values)

    def test_allgather_cost_linear(self):
        m, P = 16, 8
        group = tuple(range(P))

        def prog(p):
            yield from allgather(p, np.zeros(m), group)
            return p.clock

        res = run_collective(prog, P, topo=Hypercube(3))
        # ring allgather: P-1 steps, each send m + recv m on the critical path
        assert res.makespan == (P - 1) * 2 * m

    @pytest.mark.parametrize("delta", [1, -1, 2])
    def test_shift(self, delta):
        group = tuple(range(5))

        def prog(p):
            value = yield from shift(p, p.rank, group, delta=delta)
            return value

        res = run_collective(prog, 5)
        assert res.values == [(r - delta) % 5 for r in range(5)]

    def test_shift_identity(self):
        group = tuple(range(3))

        def prog(p):
            value = yield from shift(p, p.rank, group, delta=3)
            return value

        res = run_collective(prog, 3)
        assert res.values == [0, 1, 2]


class TestAffineTransformBarrier:
    def test_permutation(self):
        group = tuple(range(4))

        def prog(p):
            value = yield from affine_transform(p, p.rank, group, lambda i: (i + 2) % 4)
            return value

        res = run_collective(prog, 4)
        assert res.values == [2, 3, 0, 1]

    def test_non_permutation_rejected(self):
        def prog(p):
            value = yield from affine_transform(p, p.rank, (0, 1), lambda i: 0)
            return value

        with pytest.raises(CommunicationError):
            run_collective(prog, 2)

    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_barrier_synchronizes_clocks(self, nprocs):
        group = tuple(range(nprocs))

        def prog(p):
            p.compute(100 * (p.rank + 1))
            yield from barrier(p, group)
            return p.clock

        res = run_collective(prog, nprocs)
        assert all(v >= 100 * nprocs for v in res.values)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        nprocs=st.integers(1, 9),
        root=st.integers(0, 8),
        payload=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8),
    )
    def test_bcast_any_root(self, nprocs, root, payload):
        root %= nprocs
        group = tuple(range(nprocs))

        def prog(p):
            data = list(payload) if p.rank == root else None
            value = yield from bcast(p, data, root=root, group=group)
            return value

        res = run_collective(prog, nprocs)
        assert all(v == payload for v in res.values)

    @settings(max_examples=25, deadline=None)
    @given(nprocs=st.integers(1, 9), seed=st.integers(0, 100))
    def test_reduce_equals_numpy(self, nprocs, seed):
        rng = np.random.default_rng(seed)
        locals_ = rng.integers(-100, 100, size=(nprocs, 3)).astype(float)
        group = tuple(range(nprocs))

        def prog(p):
            total = yield from reduce(p, locals_[p.rank].copy(), root=0, group=group)
            return total

        res = run_collective(prog, nprocs)
        np.testing.assert_allclose(res.values[0], locals_.sum(axis=0))
